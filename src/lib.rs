//! Umbrella crate: re-exports the workspace for examples and integration
//! tests. See README.md for the tour.
pub use ac_chaos as chaos;
pub use ac_cluster as cluster;
pub use ac_commit as commit;
pub use ac_consensus as consensus;
pub use ac_harness as harness;
pub use ac_net as net;
pub use ac_obs as obs;
pub use ac_runtime as runtime;
pub use ac_sim as sim;
pub use ac_txn as txn;
