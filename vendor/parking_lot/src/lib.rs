//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). Poisoning is absorbed by
//! continuing with the inner value — the workspace only guards plain data.

use std::sync::Mutex as StdMutex;
pub use std::sync::MutexGuard;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|poison| poison.into_inner())
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}
