//! Offline stand-in for `serde` (serialization only).
//!
//! Real serde drives a `Serializer` visitor; this stand-in instead has
//! [`Serialize`] build a self-describing [`Content`] tree that data formats
//! (here: the vendored `serde_json`) render. The `#[derive(Serialize)]`
//! macro from the sibling `serde_derive` crate emits `Content::Map` with one
//! entry per named struct field, in declaration order — the property the
//! workspace's JSON snapshots rely on.

pub use serde_derive::Serialize;

/// A serialized value: the self-describing intermediate tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// `null` / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, slice, array).
    Seq(Vec<Content>),
    /// Named fields in declaration order.
    Map(Vec<(String, Content)>),
}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Build the content tree for `self`.
    fn to_content(&self) -> Content;
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
