//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`prop_assert!`] /
//! [`prop_assert_eq!`], range and tuple strategies, [`strategy::Just`],
//! `prop_map` / `prop_flat_map`, [`collection::vec`] and
//! [`arbitrary::any`]. Differences from real proptest:
//!
//! * **no shrinking** — a failing case reports its generated inputs as-is
//!   (every strategy value here derives `Debug` through the test's own
//!   formatting, and the schedule types are small);
//! * **deterministic seeding** — every test function draws from the same
//!   fixed-seed SplitMix64 stream, so CI failures reproduce locally.

/// Configuration and RNG plumbing for generated test functions.
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 stream used by all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The fixed-seed generator every property test uses.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x5DEE_CE66_D1CE_5EED,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: `generate`
    /// draws one value directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128 - s as i128) as u64 + 1;
                    (s as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose elements come from `element` and whose length
    /// comes from `size` (a `usize`, `a..b` or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy for `Self`.
        type Strategy: Strategy<Value = Self>;
        /// Build the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T` (`any::<bool>()`, ...).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Canonical strategy for `bool`: a fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $s:ident),*) => {$(
            /// Canonical full-range strategy for the integer type.
            #[derive(Clone, Copy, Debug)]
            pub struct $s;
            impl Strategy for $s {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = $s;
                fn arbitrary() -> $s { $s }
            }
        )*};
    }
    impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
                        i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize);
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property-test functions.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a regular test
/// function that runs `body` against `cases` generated inputs. `body` may
/// use [`prop_assert!`] / [`prop_assert_eq!`] (which report and stop the
/// case) or plain `assert!` (which panics immediately).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl $cfg; $($rest)* }
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), ::std::string::String> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(message) = outcome {
                        ::core::panic!("property failed on case {case}: {message}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @impl $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Check a condition inside [`proptest!`]; on failure the case is reported
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: {}", ::core::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(::std::format!(
                "{}: `{:?}` != `{:?}`", ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(::std::format!(
                "assertion failed: both sides equal `{:?}`",
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..=5, y in 0u64..8) {
            prop_assert!((3..=5).contains(&x));
            prop_assert!(y < 8);
        }

        #[test]
        fn flat_map_chains_dependently(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={} n={}", k, n);
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(any::<bool>(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() <= 3);
        }
    }

    #[test]
    fn config_default_runs() {
        proptest! {
            fn inner(b in 0u8..2) {
                prop_assert!(b < 2);
            }
        }
        inner();
    }
}
