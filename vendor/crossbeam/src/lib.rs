//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset the workspace uses — `channel::unbounded` with
//! cloneable senders **and cloneable receivers** (crossbeam channels are
//! multi-producer multi-consumer), blocking `recv`, `try_recv` and
//! `recv_timeout` — plus the batched extensions the live-service hot path
//! is built on: [`channel::Sender::send_batch`],
//! [`channel::Receiver::recv_batch_timeout`] and
//! [`channel::Receiver::try_drain`].
//!
//! The queue is stored as **block-linked segments** (a FIFO of
//! fixed-capacity blocks) behind one mutex: pushing never copies existing
//! elements (no `VecDeque`-style doubling of a huge contiguous buffer),
//! exhausted blocks are recycled instead of reallocated, and a batch of
//! `k` messages costs **one lock acquisition and at most one wakeup**
//! instead of `k` of each. Wakeups are coalesced: a sender only signals
//! the condvar when at least one receiver is actually parked, so a
//! receiver that is busy draining is never pointlessly re-notified.
//!
//! Semantics match crossbeam where the workspace depends on them: FIFO per
//! channel, each message delivered to exactly one receiver, `Disconnected`
//! only after the queue is drained and all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Capacity of one segment block. Bursts beyond this link further
    /// blocks; exhausted blocks are recycled through a one-block spare
    /// slot, so steady-state traffic allocates nothing.
    const SEG_CAP: usize = 64;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message available.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: all senders dropped and the
    /// queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty (senders still connected).
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// The segmented FIFO plus the receiver-parking bookkeeping, all
    /// guarded by one mutex.
    struct Inner<T> {
        /// Front block is popped from, back block is pushed to; blocks in
        /// between are full. Each block is a bounded `VecDeque` so both
        /// ends are O(1) and capacity is retained on recycle.
        blocks: VecDeque<VecDeque<T>>,
        /// Total queued messages across all blocks.
        len: usize,
        /// One recycled empty block, so pop-then-push traffic does not
        /// reallocate.
        spare: Option<VecDeque<T>>,
        /// Number of receivers currently parked on the condvar. Senders
        /// skip the wakeup entirely when this is 0 (the receiver is
        /// running and will drain the queue anyway).
        waiting: usize,
    }

    impl<T> Inner<T> {
        fn new() -> Inner<T> {
            Inner {
                blocks: VecDeque::new(),
                len: 0,
                spare: None,
                waiting: 0,
            }
        }

        fn push(&mut self, value: T) {
            let needs_block = self.blocks.back().is_none_or(|b| b.len() >= SEG_CAP);
            if needs_block {
                let block = self
                    .spare
                    .take()
                    .unwrap_or_else(|| VecDeque::with_capacity(SEG_CAP));
                self.blocks.push_back(block);
            }
            self.blocks
                .back_mut()
                .expect("block present")
                .push_back(value);
            self.len += 1;
        }

        fn pop(&mut self) -> Option<T> {
            loop {
                let front = self.blocks.front_mut()?;
                if let Some(v) = front.pop_front() {
                    self.len -= 1;
                    // Recycle the block once drained (unless it is the
                    // only one, which stays as the active push target).
                    if front.is_empty() && self.blocks.len() > 1 {
                        let block = self.blocks.pop_front().expect("front exists");
                        self.spare.get_or_insert(block);
                    }
                    return Some(v);
                }
                if self.blocks.len() == 1 {
                    return None;
                }
                let block = self.blocks.pop_front().expect("front exists");
                self.spare.get_or_insert(block);
            }
        }

        /// Move up to `max` messages into `buf`; returns how many moved.
        fn drain_into(&mut self, buf: &mut Vec<T>, max: usize) -> usize {
            let take = max.min(self.len);
            buf.reserve(take);
            for _ in 0..take {
                buf.push(self.pop().expect("len accounted"));
            }
            take
        }
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        /// Wake parked receivers after enqueuing `pushed` messages, given
        /// the `waiting` count observed under the lock. The coalescing
        /// rule: no waiter — no syscall; one message — one waiter; a batch
        /// — every waiter (an MPMC worker pool wants them all pulling).
        fn wake(&self, pushed: usize, waiting: usize) {
            if pushed == 0 || waiting == 0 {
                return;
            }
            if pushed == 1 || waiting == 1 {
                self.ready.notify_one();
            } else {
                self.ready.notify_all();
            }
        }
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (crossbeam
    /// channels are multi-consumer); each message is delivered to exactly
    /// one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake any blocked receiver so it observes
                // disconnection.
                let _guard = self.shared.inner.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut inner = self.shared.inner.lock().unwrap();
            inner.push(value);
            let waiting = inner.waiting;
            drop(inner);
            self.shared.wake(1, waiting);
            Ok(())
        }

        /// Enqueue every message of `batch` under **one** lock acquisition
        /// and with at most one condvar signal — the wakeup-coalescing
        /// fast path of the live service: a burst of `k` envelopes costs
        /// one lock + one notify instead of `k` of each.
        ///
        /// Delivery order is the batch's iteration order, contiguous with
        /// respect to this sender (no other sender's messages interleave
        /// inside the batch). Returns the number of messages enqueued;
        /// if every receiver was dropped, the batch's messages are
        /// returned in the error (none were enqueued).
        pub fn send_batch(
            &self,
            batch: impl IntoIterator<Item = T>,
        ) -> Result<usize, SendError<Vec<T>>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(batch.into_iter().collect()));
            }
            let mut inner = self.shared.inner.lock().unwrap();
            let mut pushed = 0;
            for v in batch {
                inner.push(v);
                pushed += 1;
            }
            let waiting = inner.waiting;
            drop(inner);
            self.shared.wake(pushed, waiting);
            Ok(pushed)
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.pop() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                inner.waiting += 1;
                inner = self.shared.ready.wait(inner).unwrap();
                inner.waiting -= 1;
            }
        }

        /// Dequeue a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            if let Some(v) = inner.pop() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Dequeue a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.pop() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.waiting += 1;
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
                inner.waiting -= 1;
            }
        }

        /// Dequeue up to `max` messages into `buf` (appended), blocking
        /// until **at least one** is available or `timeout` elapses. The
        /// whole batch costs one lock acquisition; per-sender FIFO order
        /// is preserved. Returns how many messages were moved.
        pub fn recv_batch_timeout(
            &self,
            buf: &mut Vec<T>,
            max: usize,
            timeout: Duration,
        ) -> Result<usize, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.len > 0 {
                    return Ok(inner.drain_into(buf, max));
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                inner.waiting += 1;
                let (guard, _res) = self
                    .shared
                    .ready
                    .wait_timeout(inner, deadline - now)
                    .unwrap();
                inner = guard;
                inner.waiting -= 1;
            }
        }

        /// Like [`Receiver::recv_batch_timeout`] but with no deadline:
        /// parks until a message arrives or every sender is dropped. This
        /// is what an idle service node blocks on — zero wakeups until
        /// there is real work.
        pub fn recv_batch(&self, buf: &mut Vec<T>, max: usize) -> Result<usize, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap();
            loop {
                if inner.len > 0 {
                    return Ok(inner.drain_into(buf, max));
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                inner.waiting += 1;
                inner = self.shared.ready.wait(inner).unwrap();
                inner.waiting -= 1;
            }
        }

        /// Non-blocking drain: move up to `max` already-queued messages
        /// into `buf` and return how many moved (0 if the queue is empty).
        pub fn try_drain(&self, buf: &mut Vec<T>, max: usize) -> usize {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.drain_into(buf, max)
        }

        /// Number of messages currently queued (snapshot; racy by nature).
        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap().len
        }

        /// Whether the queue is currently empty (snapshot; racy by nature).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn fifo_across_many_segments() {
            // 10 * SEG_CAP messages span many linked blocks; order and
            // count must survive block recycling.
            let (tx, rx) = unbounded();
            let n = 10 * SEG_CAP;
            for i in 0..n {
                tx.send(i).unwrap();
            }
            for i in 0..n {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_after_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_batch_is_one_contiguous_fifo_run() {
            let (tx, rx) = unbounded();
            tx.send(0).unwrap();
            assert_eq!(tx.send_batch(1..=200).unwrap(), 200);
            let mut buf = Vec::new();
            // Drain in two batch calls to cross the segment boundary.
            assert_eq!(
                rx.recv_batch_timeout(&mut buf, 128, Duration::ZERO),
                Ok(128)
            );
            assert_eq!(
                rx.recv_batch_timeout(&mut buf, usize::MAX, Duration::ZERO),
                Ok(73)
            );
            assert_eq!(buf, (0..=200).collect::<Vec<_>>());
        }

        #[test]
        fn recv_batch_timeout_blocks_then_drains() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                tx.send_batch([1, 2, 3]).unwrap();
            });
            let mut buf = Vec::new();
            let got = rx
                .recv_batch_timeout(&mut buf, 16, Duration::from_secs(2))
                .unwrap();
            assert!(got >= 1, "must wake on the batch");
            h.join().unwrap();
            let mut total = got;
            total += rx.try_drain(&mut buf, 16);
            assert_eq!(total, 3);
            assert_eq!(buf, vec![1, 2, 3]);
        }

        #[test]
        fn recv_batch_timeout_times_out_empty() {
            let (_tx, rx) = unbounded::<u8>();
            let mut buf = Vec::new();
            assert_eq!(
                rx.recv_batch_timeout(&mut buf, 8, Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(buf.is_empty());
        }

        #[test]
        fn send_batch_fails_wholesale_without_receivers() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            let err = tx.send_batch([1, 2, 3]).unwrap_err();
            assert_eq!(err.0, vec![1, 2, 3]);
        }

        #[test]
        fn try_drain_is_nonblocking() {
            let (tx, rx) = unbounded();
            let mut buf = Vec::new();
            assert_eq!(rx.try_drain(&mut buf, 8), 0);
            tx.send_batch(0..5).unwrap();
            assert_eq!(rx.try_drain(&mut buf, 3), 3);
            assert_eq!(rx.try_drain(&mut buf, 8), 2);
            assert_eq!(buf, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn cloned_receivers_split_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let b = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all = a.join().unwrap();
            all.extend(b.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn batch_wakeup_reaches_every_parked_worker() {
            // 4 workers parked on the same MPMC channel; one send_batch
            // must get all items processed (notify_all coalescing path).
            let (tx, rx) = unbounded::<u32>();
            let done = Arc::new(AtomicUsize::new(0));
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    let done = Arc::clone(&done);
                    std::thread::spawn(move || {
                        while rx.recv().is_ok() {
                            done.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            drop(rx);
            std::thread::sleep(Duration::from_millis(10)); // let them park
            tx.send_batch(0..64).unwrap();
            drop(tx);
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(done.load(Ordering::SeqCst), 64);
        }

        #[test]
        fn blocking_recv_sees_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn blocking_recv_batch_sees_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || {
                let mut buf = Vec::new();
                rx.recv_batch(&mut buf, 8)
            });
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_only_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            assert_eq!(tx.send(1), Ok(()));
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            loop {
                match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(v) => got.push(v),
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => panic!("sender stalled"),
                }
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn mixed_send_and_batch_preserve_per_sender_fifo() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let a = std::thread::spawn(move || {
                for chunk in (0..500u32).collect::<Vec<_>>().chunks(7) {
                    tx.send_batch(chunk.iter().copied()).unwrap();
                }
            });
            let b = std::thread::spawn(move || {
                for i in 1000..1500u32 {
                    tx2.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                match rx.recv_batch_timeout(&mut buf, 32, Duration::from_millis(200)) {
                    Ok(_) => got.extend(buf.iter().copied()),
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => panic!("senders stalled"),
                }
            }
            a.join().unwrap();
            b.join().unwrap();
            let low: Vec<u32> = got.iter().copied().filter(|&x| x < 1000).collect();
            let high: Vec<u32> = got.iter().copied().filter(|&x| x >= 1000).collect();
            assert_eq!(low, (0..500).collect::<Vec<_>>());
            assert_eq!(high, (1000..1500).collect::<Vec<_>>());
        }
    }
}
