//! Offline stand-in for `crossbeam`.
//!
//! Provides the subset the workspace uses — `channel::unbounded` with
//! cloneable senders **and cloneable receivers** (crossbeam channels are
//! multi-producer multi-consumer), blocking `recv`, `try_recv` and
//! `recv_timeout` — implemented over `Mutex<VecDeque>` + `Condvar`.
//! Semantics match crossbeam where the workspace depends on them: FIFO per
//! channel, each message delivered to exactly one receiver, `Disconnected`
//! only after the queue is drained and all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The wait elapsed with no message available.
        Timeout,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`]: all senders dropped and the
    /// queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty (senders still connected).
        Empty,
        /// All senders dropped and the queue is empty.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable (crossbeam
    /// channels are multi-consumer); each message is delivered to exactly
    /// one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake any blocked receiver so it observes
                // disconnection.
                let _guard = self.shared.queue.lock().unwrap();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap();
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).unwrap();
            }
        }

        /// Dequeue a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Dequeue a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self.shared.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn disconnect_after_drain() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(7).unwrap();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_receivers_split_the_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let a = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            });
            let b = std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx2.recv() {
                    got.push(v);
                }
                got
            });
            let mut all = a.join().unwrap();
            all.extend(b.join().unwrap());
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn blocking_recv_sees_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_only_after_all_receivers_drop() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            drop(rx);
            assert_eq!(tx.send(1), Ok(()));
            drop(rx2);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            loop {
                match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(v) => got.push(v),
                    Err(RecvTimeoutError::Disconnected) => break,
                    Err(RecvTimeoutError::Timeout) => panic!("sender stalled"),
                }
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
