//! Offline stand-in for `serde_json`.
//!
//! Implements the surface the workspace uses: [`to_string_pretty`] over the
//! vendored serde's `Content` tree, [`from_str`] into a [`Value`], and
//! `value["key"][0]` indexing with `PartialEq<&str>` for assertions.
//! Objects preserve insertion order (like serde_json's `preserve_order`
//! feature), so round-tripped reports keep their field layout.

use std::fmt;
use std::ops::Index;

use serde::{Content, Serialize};

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, preserving insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string slice if this is a `Value::String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean if this is a `Value::Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements if this is a `Value::Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Object member by key (`None` if absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), 0, &mut out);
    Ok(out)
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content_compact(&value.to_content(), &mut out);
    Ok(out)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity token; null is the least-bad encoding
        // (real serde_json errors instead, but reports must never panic).
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_content(c: &Content, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::F64(f) => write_number(*f, out),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                write_content(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(&pad);
                escape_into(k, out);
                out.push_str(": ");
                write_content(v, indent + 1, out);
                out.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
            }
            out.push_str(&close_pad);
            out.push('}');
        }
    }
}

fn write_content_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::F64(f) => write_number(*f, out),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_content_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Parse JSON text into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("short \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // workspace's ASCII reports; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"id": "x", "rows": [[1, 2.5, true], []], "none": null}"#).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["rows"][0][0], 1u64);
        assert_eq!(v["rows"][0][1].as_f64(), Some(2.5));
        assert_eq!(v["rows"][0][2], true);
        assert_eq!(v["rows"][1], Value::Array(vec![]));
        assert_eq!(v["none"], Value::Null);
        assert_eq!(v["absent"], Value::Null);
    }

    #[test]
    fn escapes_round_trip() {
        let c = Content::Str("a\"b\\c\nd".to_string());
        let mut s = String::new();
        super::write_content(&c, 0, &mut s);
        let v = from_str(&s).unwrap();
        assert_eq!(v, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_print_parses_back() {
        let report = Content::Map(vec![
            ("id".to_string(), Content::Str("x".to_string())),
            (
                "tables".to_string(),
                Content::Seq(vec![Content::Map(vec![(
                    "rows".to_string(),
                    Content::Seq(vec![Content::Seq(vec![Content::Str("v".to_string())])]),
                )])]),
            ),
            ("matched".to_string(), Content::U64(3)),
        ]);
        struct Raw(Content);
        impl serde::Serialize for Raw {
            fn to_content(&self) -> Content {
                self.0.clone()
            }
        }
        let s = to_string_pretty(&Raw(report)).unwrap();
        let v = from_str(&s).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["tables"][0]["rows"][0][0], "v");
        assert_eq!(v["matched"], 3u64);
    }
}
