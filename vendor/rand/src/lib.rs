//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *exact* API surface it consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over integer and
//! float ranges. The generator is SplitMix64 — statistically solid for
//! simulation workloads and deterministic per seed, which is all the
//! simulator requires (every experiment must be reproducible).
//!
//! Not a cryptographic RNG; do not use it for anything security-relevant.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from entropy-style seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by the workspace.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (a `Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// A range that knows how to sample a value of `T` from an [`Rng`].
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + x) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let x = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + x) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 high bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // Rounding can land exactly on `end` for wide ranges; keep the
        // half-open contract.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x: u64 = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let y: i64 = r.gen_range(-100..100);
            assert!((-100..100).contains(&y));
            let f: f64 = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let u: usize = r.gen_range(0..5usize);
            assert!(u < 5);
        }
    }
}
