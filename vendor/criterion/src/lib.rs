//! Offline stand-in for `criterion`.
//!
//! Implements the configuration-builder + `benchmark_group`/`bench_function`
//! surface the `ac-bench` targets use. Instead of criterion's statistical
//! machinery it runs a short warm-up, then `sample_size` timed batches, and
//! prints the mean and min per-iteration wall time — enough to track
//! regressions by eye while staying dependency-free.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver: collects configuration, runs groups, prints results.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(900),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// CLI-argument hook; accepted and ignored by this stand-in.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let stats = run_one(self, &mut f);
        println!("  {id}: {stats}");
        self
    }

    /// Print the closing summary (layout parity with criterion).
    pub fn final_summary(&self) {
        println!("\nbench run complete");
    }
}

/// A named set of related benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Time `f` under this group's configuration.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let stats = run_one(self.criterion, &mut f);
        println!("  {}/{id}: {stats}", self.name);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    warm_up: Duration,
    measure: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording per-iteration wall time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: also calibrates how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        let sample_budget = self.measure.as_nanos() / self.target_samples.max(1) as u128;
        self.iters_per_sample = ((sample_budget / per_iter.max(1)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }
}

struct Stats {
    mean: Duration,
    min: Duration,
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mean {:?}/iter (min {:?}/iter)", self.mean, self.min)
    }
}

fn run_one(c: &Criterion, f: &mut impl FnMut(&mut Bencher)) -> Stats {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        warm_up: c.warm_up_time,
        measure: c.measurement_time,
        target_samples: c.sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        return Stats {
            mean: Duration::ZERO,
            min: Duration::ZERO,
        };
    }
    let per_iter = |d: Duration| d / u32::try_from(b.iters_per_sample).unwrap_or(u32::MAX).max(1);
    let total: Duration = b.samples.iter().sum();
    Stats {
        mean: per_iter(total / b.samples.len() as u32),
        min: per_iter(b.samples.iter().min().copied().unwrap_or_default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
            g.finish();
        }
        c.final_summary();
        assert!(ran > 0);
    }
}
