//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields without
//! `syn`/`quote` (unavailable offline): the struct name and field names are
//! pulled straight out of the token stream and the impl is emitted as
//! formatted source. Enums, tuple structs and generic structs are not
//! supported — the workspace doesn't derive on any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` as a `Content::Map` of the named fields, in
/// declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    let mut name = None;
    let mut body = None;
    let mut iter = tokens.iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("derive(Serialize): expected struct name, got {other:?}"),
                }
                // Scan forward to the brace-delimited field block (skipping
                // nothing in practice: the workspace derives only on plain,
                // non-generic structs).
                for rest in iter.by_ref() {
                    if let TokenTree::Group(g) = rest {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
            _ => {}
        }
    }

    let name = name.expect("derive(Serialize): no `struct` keyword found (enums unsupported)");
    let body =
        body.expect("derive(Serialize): no named-field block found (tuple structs unsupported)");

    let fields = named_fields(body);
    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),"))
        .collect();

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl failed to parse")
}

/// Extract field names from the contents of a struct's `{ ... }` block:
/// skip attributes and visibility, take the identifier before each `:`,
/// then skip to the next top-level comma (tracking `<...>` depth so commas
/// inside generic arguments don't split a field).
fn named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    'fields: while let Some(tt) = iter.next() {
        match tt {
            // Attribute: `#` followed by a bracketed group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Optional `pub(...)` restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            TokenTree::Ident(field) => {
                fields.push(field.to_string());
                let mut angle_depth: i64 = 0;
                for tt in iter.by_ref() {
                    if let TokenTree::Punct(p) = &tt {
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' => angle_depth -= 1,
                            ',' if angle_depth == 0 => continue 'fields,
                            _ => {}
                        }
                    }
                }
                break; // last field, no trailing comma
            }
            other => panic!("derive(Serialize): unexpected token {other:?} in field list"),
        }
    }
    fields
}
