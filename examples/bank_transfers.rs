//! Bank transfers across shards: the motivating workload of §1.
//!
//! ```sh
//! cargo run --example bank_transfers
//! ```
//!
//! A 6-node cluster executes 300 two-shard debit/credit transactions
//! through different commit protocols. Money conservation is checked after
//! every run, and the per-protocol commit latency (in message delays, the
//! paper's currency) and message budget are compared.

use ac_commit::protocols::ProtocolKind;
use ac_txn::{Cluster, Workload, WorkloadConfig};

fn main() {
    let (n, f) = (6, 2);
    let txn_count = 300;
    let cfg = WorkloadConfig {
        shards: n,
        keys_per_shard: 64,
        workload: Workload::Transfer { amount: 25 },
        seed: 2017,
    };

    println!(
        "{:<18} {:>6} {:>8} {:>10} {:>12} {:>8}",
        "protocol", "commit", "abort", "avg delays", "avg messages", "balance"
    );
    for kind in [
        ProtocolKind::TwoPc,
        ProtocolKind::ThreePc,
        ProtocolKind::Inbac,
        ProtocolKind::PaxosCommit,
        ProtocolKind::FasterPaxosCommit,
        ProtocolKind::Nbac1,
    ] {
        let mut cluster = Cluster::new(n, f, kind);
        let txns = cfg.generator().take_txns(txn_count);
        // Pipelined batches of 12 model concurrent clients; conflicting
        // transfers abort and are counted.
        let stats = cluster.execute_batched(&txns, 12);
        // Transfers are zero-sum: committed or aborted, the books balance.
        assert_eq!(cluster.total_value(), 0, "{}: money leaked!", kind.name());
        println!(
            "{:<18} {:>6} {:>8} {:>10.2} {:>12.2} {:>8}",
            kind.name(),
            stats.committed,
            stats.aborted,
            stats.avg_delays(),
            stats.avg_messages(),
            cluster.total_value(),
        );
    }
    println!(
        "\nINBAC pays 2fn = {} messages per transaction for non-blocking commits at 2 delays;\n\
         2PC is 2 messages cheaper but blocks forever if its coordinator dies.",
        2 * f * n
    );
}
