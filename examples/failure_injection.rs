//! Failure injection: why "indulgent" matters.
//!
//! ```sh
//! cargo run --example failure_injection
//! ```
//!
//! Three experiments on a 4-node system, all with unanimous yes-votes:
//!
//! 1. **coordinator crash** — 2PC blocks forever; 3PC and INBAC decide;
//! 2. **network partition** — 3PC splits its brain (the classic
//!    disagreement); INBAC stays consistent and live;
//! 3. **pre-GST chaos** — random delay storms; INBAC solves NBAC in every
//!    run (Definition 3: every network-failure execution solves NBAC).

use ac_commit::protocols::ProtocolKind;
use ac_commit::runner::Chaos;
use ac_commit::{check, Scenario};
use ac_net::{Crash, DelayRule};
use ac_sim::{Time, U};

fn show(outcome: &ac_net::Outcome, label: &str) {
    let decisions: Vec<String> = outcome
        .decisions
        .iter()
        .enumerate()
        .map(|(p, d)| match d {
            Some((_, 1)) => format!("P{}:COMMIT", p + 1),
            Some((_, _)) => format!("P{}:ABORT", p + 1),
            None if outcome.crashed[p] => format!("P{}:crashed", p + 1),
            None => format!("P{}:BLOCKED", p + 1),
        })
        .collect();
    println!("  {label:<18} {}", decisions.join("  "));
}

fn main() {
    let n = 4;

    println!("1) coordinator/last-process crashes right before its broadcast:");
    let crash = Scenario::nice(n, 1).crash(n - 1, Crash::at(Time::units(1)));
    show(&crash.run::<ac_commit::protocols::TwoPc>(), "2PC");
    show(&crash.run::<ac_commit::protocols::ThreePc>(), "3PC");
    show(&crash.run::<ac_commit::protocols::Inbac>(), "INBAC");
    println!("  -> 2PC is blocking (its cell (AV,AV) has no T); 3PC and INBAC are not.\n");

    println!("2) partition during the pre-commit window (network failure):");
    let mut split = Scenario::nice(n, 1);
    let big = 40 * U;
    for a in [0usize, 3] {
        for b in [1usize, 2] {
            split = split
                .rule(DelayRule::link(a, b, Time::units(2), Time::units(30), big))
                .rule(DelayRule::link(b, a, Time::units(2), Time::units(30), big));
        }
    }
    split = split
        .rule(DelayRule::link(3, 1, Time::units(1), Time::units(2), big))
        .rule(DelayRule::link(3, 2, Time::units(1), Time::units(2), big));
    let split = split.horizon(150);
    let out3 = split.run::<ac_commit::protocols::ThreePc>();
    show(&out3, "3PC");
    let outi = split.run::<ac_commit::protocols::Inbac>();
    show(&outi, "INBAC");
    println!(
        "  -> 3PC decides {:?}: split brain! INBAC decides {:?}: agreement despite the partition.\n",
        out3.decided_values(),
        outi.decided_values()
    );
    assert_eq!(out3.decided_values().len(), 2, "3PC should disagree here");
    assert_eq!(outi.decided_values().len(), 1, "INBAC must agree");

    println!("3) 40 random pre-GST delay storms (chaos), INBAC, n=4 f=1:");
    let mut worst_delay = 0;
    for seed in 0..40 {
        let sc = Scenario::nice(n, 1)
            .chaos(Chaos {
                gst_units: 8,
                max_units: 5,
                seed,
            })
            .horizon(1500);
        let out = sc.run::<ac_commit::protocols::Inbac>();
        let report = check(&out, &sc.votes, ProtocolKind::Inbac.cell());
        assert!(report.ok(), "seed {seed}: {:?}", report.violations);
        assert!(
            out.decisions.iter().all(|d| d.is_some()),
            "seed {seed} blocked"
        );
        worst_delay = worst_delay.max(out.metrics().delays.unwrap_or(0));
    }
    println!("  all 40 runs solved NBAC; worst decision latency: {worst_delay} delay units");
    println!("  (indulgence: safety never depends on timing, liveness returns after GST)");
}
