//! Helios-style cross-datacenter conflict detection (§1: "each datacenter D
//! votes to abort every transaction tx that causes a conflict at D").
//!
//! ```sh
//! cargo run --example helios_conflicts
//! ```
//!
//! Four datacenters run a skewed write workload; hotter skew means more
//! write-write conflicts, more abort votes, and (with INBAC's §5.2 fast
//! path) *faster* aborts: a failure-free abort terminates after one message
//! delay instead of two.

use ac_commit::protocols::ProtocolKind;
use ac_txn::{Cluster, Workload, WorkloadConfig};

fn run(theta: f64, kind: ProtocolKind) -> (f64, f64) {
    let (n, f) = (4, 1);
    let cfg = WorkloadConfig {
        shards: n,
        keys_per_shard: 16,
        workload: Workload::Skewed { span: 2, theta },
        seed: 99,
    };
    let mut cluster = Cluster::new(n, f, kind);
    let txns = cfg.generator().take_txns(200);
    // Pipelined batches of 10: transactions inside a batch race for locks,
    // so hot keys produce abort votes.
    let stats = cluster.execute_batched(&txns, 10);
    (stats.commit_ratio(), stats.avg_delays())
}

fn main() {
    println!("datacenters vote abort on conflict; commit protocol settles each transaction\n");
    println!(
        "{:>6}  {:>22}  {:>22}",
        "skew", "INBAC (commit%, delay)", "INBAC+fast-abort"
    );
    for theta in [0.0, 0.5, 0.8, 0.95] {
        let (cr_a, d_a) = run(theta, ProtocolKind::Inbac);
        let (cr_b, d_b) = run(theta, ProtocolKind::InbacFastAbort);
        assert!(
            (cr_a - cr_b).abs() < f64::EPSILON,
            "same votes, same outcomes"
        );
        println!(
            "{:>6.2}  {:>13.1}% {:>7.2}  {:>13.1}% {:>7.2}",
            theta,
            cr_a * 100.0,
            d_a,
            cr_b * 100.0,
            d_b
        );
    }
    println!(
        "\nWith heavier skew more transactions abort; the fast-abort path (paper §5.2)\n\
         turns those aborts into 1-delay decisions, lowering the average latency —\n\
         exactly the Helios adaptation the paper suggests in §6.3."
    );
}
