//! A live 4-shard bank serving 8 concurrent clients over INBAC.
//!
//! ```sh
//! cargo run --release --example live_cluster
//! ```
//!
//! Unlike `bank_transfers` (which meters single transactions in the
//! discrete-event simulator), this drives the `ac-cluster` **live
//! service**: 4 long-lived node threads each own a shard and multiplex
//! many concurrent INBAC instances over real channels, while 8 closed-loop
//! client threads submit two-shard debit/credit transactions. Wall-clock
//! throughput, the latency histogram and the post-run safety audit are
//! printed at the end.

use std::time::Duration;

use ac_cluster::{run_service, ServiceConfig};
use ac_commit::protocols::ProtocolKind;
use ac_txn::Workload;

fn main() {
    let cfg = ServiceConfig::new(4, 1, ProtocolKind::Inbac)
        .clients(8)
        .txns_per_client(25)
        .workload(Workload::Transfer { amount: 25 })
        .unit(Duration::from_millis(5))
        .keys_per_shard(32)
        .seed(2017);

    println!(
        "live cluster: n={} f={} protocol={} clients={} ({} txns each, closed loop)\n",
        cfg.n,
        cfg.f,
        cfg.kind.name(),
        cfg.clients,
        cfg.txns_per_client
    );
    let out = run_service(&cfg);

    println!(
        "served {} txns in {:.0} ms: {} committed, {} aborted ({} stalled)",
        out.txns,
        out.elapsed.as_secs_f64() * 1e3,
        out.committed,
        out.aborted,
        out.stalled
    );
    println!(
        "throughput: {:.0} committed txns/s ({} protocol messages on the wire)",
        out.throughput_tps(),
        out.wire_messages
    );
    println!("latency: {}", out.latency.summary_millis());
    println!(
        "safety audit: {}",
        if out.is_safe() {
            "clean".to_string()
        } else {
            format!("VIOLATIONS: {:?}", out.violations)
        }
    );
    println!(
        "conservation: total balance across shards = {} (must be 0)",
        out.total_value()
    );

    // The serializability smoke test from the integration suite, live.
    let rebuilt = out.replay();
    let serializable =
        out.shards.iter().zip(&rebuilt).all(|(live, replayed)| {
            (0..cfg.keys_per_shard).all(|k| live.read(k) == replayed.read(k))
        });
    println!(
        "sequential replay of each node's commit log reproduces its shard: {}",
        if serializable { "yes" } else { "NO" }
    );
    assert!(out.is_safe() && out.total_value() == 0 && serializable);
}
