//! Trace INBAC message-by-message (Figure 1 made visible).
//!
//! ```sh
//! cargo run --example trace_inbac [nice|abort|help|chaos]
//! ```
//!
//! Prints the full timestamped event trace of one INBAC execution: votes to
//! backups at time 0, bundled acknowledgements at U, decisions (or
//! consensus proposals / HELP rounds) at 2U.

use ac_commit::protocols::Inbac;
use ac_commit::runner::Chaos;
use ac_commit::Scenario;
use ac_net::DelayRule;
use ac_sim::{Time, U};

fn scenario(which: &str) -> Scenario {
    let n = 4;
    match which {
        "abort" => Scenario::nice(n, 2).vote_no(2).traced(),
        "help" => Scenario::nice(n, 1).traced().rule(DelayRule::link(
            0,
            3,
            Time::units(1),
            Time::units(2),
            6 * U,
        )),
        "chaos" => Scenario::nice(n, 2)
            .traced()
            .chaos(Chaos {
                gst_units: 5,
                max_units: 4,
                seed: 3,
            })
            .horizon(1200),
        _ => Scenario::nice(n, 2).traced(),
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "nice".into());
    let sc = scenario(&which);
    println!(
        "INBAC, n={} f={} votes={:?} — scenario `{which}`\n",
        sc.n, sc.f, sc.votes
    );
    let out = sc.run::<Inbac>();
    for entry in &out.trace {
        println!("{entry}");
    }
    let m = out.metrics();
    println!(
        "\ndecisions: {:?}   messages: {} (total {})   delays: {:?}",
        out.decided_values(),
        m.messages,
        m.messages_total,
        m.delays
    );
}
