//! Print the paper's Table 1 — the complexity taxonomy of atomic commit —
//! together with the instantiated bounds and trade-off classification.
//!
//! ```sh
//! cargo run --example taxonomy [n] [f]
//! ```

use ac_harness::experiments;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let f: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    assert!(n >= 2 && f >= 1 && f < n, "need n >= 2 and 1 <= f <= n-1");

    let report = experiments::table1(n, f);
    println!("{}", report.render());
    if report.all_matched() {
        println!("every matching protocol met its lower bound.");
    } else {
        println!("MISMATCH — see rows above.");
        std::process::exit(1);
    }
}
