//! Quickstart: commit one distributed transaction with INBAC.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Five database nodes vote on a transaction; INBAC (Guerraoui & Wang,
//! PODS 2017) decides in two message delays and `2fn` messages, tolerating
//! up to `f` crashes *and* network failures (indulgence).

use ac_commit::protocols::{Inbac, ProtocolKind};
use ac_commit::{check, Scenario};

fn main() {
    let (n, f) = (5, 2);

    // The nice execution: everyone votes 1 (willing to commit).
    let scenario = Scenario::nice(n, f);
    let outcome = scenario.run::<Inbac>();

    println!("votes      : {:?}", scenario.votes);
    for (p, d) in outcome.decisions.iter().enumerate() {
        let (t, v) = d.expect("INBAC terminates");
        println!(
            "P{} decided : {} at {}",
            p + 1,
            if v == 1 { "COMMIT" } else { "ABORT" },
            t
        );
    }
    let m = outcome.metrics();
    println!(
        "complexity : {} message delays, {} messages (paper: 2 delays, 2fn = {})",
        m.delays.unwrap(),
        m.messages,
        2 * f * n
    );

    // The same run, checked against the NBAC properties.
    let report = check(&outcome, &scenario.votes, ProtocolKind::Inbac.cell());
    println!(
        "NBAC check : {}",
        if report.ok() { "ok" } else { "violated!" }
    );

    // One dissenting vote aborts the transaction — validity in action.
    let abort = Scenario::nice(n, f).vote_no(2).run::<Inbac>();
    println!(
        "with P3 voting no -> everyone decides {:?}",
        abort.decided_values()
    );
    assert_eq!(abort.decided_values(), vec![0]);
}
