//! The same INBAC automaton on real OS threads — no simulator.
//!
//! ```sh
//! cargo run --example threads_demo
//! ```
//!
//! `ac-runtime` wires the protocol automata to crossbeam channels with
//! wall-clock timers (one delay unit `U` = 20ms here). The decisions match
//! the simulator's, and the wire counts are the same `2fn` because channel
//! latency is far below `U` — a failure-free synchronous execution.
//! Also demonstrates the taxonomy-as-API: pick protocols by the guarantees
//! you need.

use std::time::Duration;

use ac_commit::protocols::{Inbac, ProtocolKind};
use ac_commit::taxonomy::{Cell, PropSet};
use ac_commit::CommitProtocol;
use ac_runtime::{run_threads, RtConfig};

fn main() {
    let (n, f) = (5usize, 2usize);

    println!("running INBAC on {n} OS threads (U = 20ms)...");
    let cfg = RtConfig {
        unit: Duration::from_millis(20),
        deadline: Duration::from_secs(10),
    };
    let out = run_threads(n, move |me| Inbac::new(me, n, f, true), cfg);
    for (p, d) in out.decisions.iter().enumerate() {
        println!(
            "  P{} -> {}",
            p + 1,
            match d {
                Some(1) => "COMMIT",
                Some(_) => "ABORT",
                None => "undecided",
            }
        );
    }
    println!(
        "  {} wire messages (paper: 2fn = {}), wall time {:?}\n",
        out.messages,
        2 * f * n,
        out.elapsed
    );
    assert_eq!(out.decided_values(), vec![1]);
    assert_eq!(out.messages, 2 * f * n);

    // Which protocol should you run? Ask the taxonomy.
    println!("protocols recommended per desired guarantee set (n={n}, f={f}, cheapest first):");
    for (label, cell) in [
        ("full indulgent NBAC (AVT, AVT)", Cell::INDULGENT),
        ("safety only (AV, AV)", Cell::new(PropSet::AV, PropSet::AV)),
        (
            "agreement+termination (AT, AT)",
            Cell::new(PropSet::AT, PropSet::AT),
        ),
    ] {
        let recs = ProtocolKind::recommend(cell, n, f);
        let names: Vec<&str> = recs.iter().map(|k| k.name()).collect();
        println!("  {label:<34} {}", names.join(" > "));
    }
}
