//! Complexity metering — the paper's two measures (§2.4).
//!
//! * **messages**: the number of inter-process messages *exchanged*
//!   (i.e. arrived) before or at the last decision. This is exactly the
//!   quantity bounded by Theorems 2 and 5: e.g. 1NBAC's nice execution sends
//!   a `[D,·]` round that is still in flight when every process has already
//!   decided, and the paper counts `n²−n`, not `2(n²−n)`. Self-addressed
//!   messages are free (footnote 10) and never enter the records.
//! * **message delays**: with every delivery taking exactly `U` and
//!   instantaneous local steps, the elapsed time to the last decision
//!   divided by `U` (Lamport's measure). Only meaningful for executions run
//!   under [`FixedDelay::unit`](crate::FixedDelay::unit); for other models
//!   the elapsed time is still reported.

use ac_sim::{ProcessId, Time, U};

/// Wire record of one inter-process message.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MsgRecord {
    /// Wire sequence number, in send order over the whole execution.
    pub seq: u64,
    /// Sending process.
    pub from: ProcessId,
    /// Destination process.
    pub to: ProcessId,
    /// Send timestamp.
    pub sent: Time,
    /// Arrival timestamp (`sent` + the delay the model assigned).
    pub arrival: Time,
}

impl MsgRecord {
    /// Transmission delay in ticks.
    pub fn delay(&self) -> u64 {
        self.arrival - self.sent
    }
}

/// Classification of an execution per §2.2.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExecutionClass {
    /// No crash, all delays ≤ U.
    FailureFree,
    /// Some crash, all delays ≤ U (synchronous system execution).
    CrashFailure,
    /// Some message delay > U (eventually-synchronous system execution).
    NetworkFailure,
}

impl ExecutionClass {
    /// Classify an execution from its crash flag and wire records: any
    /// delay > `U` makes it a network failure, else any crash makes it a
    /// crash failure, else it is failure-free.
    pub fn classify(any_crash: bool, records: &[MsgRecord]) -> ExecutionClass {
        if records.iter().any(|r| r.delay() > U) {
            ExecutionClass::NetworkFailure
        } else if any_crash {
            ExecutionClass::CrashFailure
        } else {
            ExecutionClass::FailureFree
        }
    }
}

/// Complexity measures extracted from one execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Metrics {
    /// Messages arrived before or at the last decision (the paper's count).
    pub messages: usize,
    /// All messages put on the wire until quiescence.
    pub messages_total: usize,
    /// Time of the last decision, if every started process decided.
    pub last_decision: Option<Time>,
    /// `last_decision / U`, rounded up — the message-delay count when run
    /// under exact unit delays.
    pub delays: Option<u64>,
    /// Execution classification.
    pub class: ExecutionClass,
}

impl Metrics {
    /// Compute metrics. `decisions[p]` is `Some((t, v))` if `p` decided.
    /// `crashed[p]` tells which processes crashed.
    pub fn compute(
        records: &[MsgRecord],
        decisions: &[Option<(Time, u64)>],
        crashed: &[bool],
    ) -> Metrics {
        let class = ExecutionClass::classify(crashed.iter().any(|&c| c), records);
        // All *live* processes must have decided for the delay metric to be
        // the execution's completion time.
        let all_live_decided = decisions
            .iter()
            .zip(crashed)
            .all(|(d, &c)| c || d.is_some());
        let last_decision = if all_live_decided {
            decisions.iter().flatten().map(|&(t, _)| t).max()
        } else {
            None
        };
        let messages = match last_decision {
            Some(t) => records.iter().filter(|r| r.arrival <= t).count(),
            None => records.len(),
        };
        Metrics {
            messages,
            messages_total: records.len(),
            last_decision,
            delays: last_decision.map(Time::ceil_units),
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, sent: u64, arrival: u64) -> MsgRecord {
        MsgRecord {
            seq,
            from: 0,
            to: 1,
            sent: Time(sent),
            arrival: Time(arrival),
        }
    }

    #[test]
    fn classify_three_ways() {
        assert_eq!(
            ExecutionClass::classify(false, &[rec(0, 0, U)]),
            ExecutionClass::FailureFree
        );
        assert_eq!(
            ExecutionClass::classify(true, &[rec(0, 0, U)]),
            ExecutionClass::CrashFailure
        );
        // A delayed message makes it a network-failure execution even
        // without crashes.
        assert_eq!(
            ExecutionClass::classify(false, &[rec(0, 0, U + 1)]),
            ExecutionClass::NetworkFailure
        );
        // ... and even with crashes, network failure dominates.
        assert_eq!(
            ExecutionClass::classify(true, &[rec(0, 0, 2 * U)]),
            ExecutionClass::NetworkFailure
        );
    }

    #[test]
    fn messages_in_flight_after_last_decision_do_not_count() {
        // Decisions at U; one message arrived at U, one arrives at 2U.
        let records = [rec(0, 0, U), rec(1, U, 2 * U)];
        let decisions = [Some((Time(U), 1)), Some((Time(U), 1))];
        let m = Metrics::compute(&records, &decisions, &[false, false]);
        assert_eq!(m.messages, 1);
        assert_eq!(m.messages_total, 2);
        assert_eq!(m.delays, Some(1));
        assert_eq!(m.class, ExecutionClass::FailureFree);
    }

    #[test]
    fn undecided_live_process_voids_delay_metric() {
        let records = [rec(0, 0, U)];
        let decisions = [Some((Time(U), 1)), None];
        let m = Metrics::compute(&records, &decisions, &[false, false]);
        assert_eq!(m.last_decision, None);
        assert_eq!(m.delays, None);
        // Without a completion point, all messages count.
        assert_eq!(m.messages, 1);
    }

    #[test]
    fn crashed_processes_are_exempt_from_completion() {
        let records: [MsgRecord; 0] = [];
        let decisions = [Some((Time(2 * U), 0)), None];
        let m = Metrics::compute(&records, &decisions, &[false, true]);
        assert_eq!(m.last_decision, Some(Time(2 * U)));
        assert_eq!(m.delays, Some(2));
        assert_eq!(m.class, ExecutionClass::CrashFailure);
    }
}
