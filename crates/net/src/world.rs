//! The discrete-event world: runs `n` protocol automata over a delay model
//! and a fault plan, and records everything needed for property checking
//! and complexity metering.

use ac_sim::{Action, Automaton, Ctx, Event, EventQueue, ProcessId, Time, TraceEntry, TraceKind};

use crate::delay::DelayModel;
use crate::fault::FaultPlan;
use crate::metrics::{Metrics, MsgRecord};

/// Static configuration of a run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Hard cap on virtual time; events past it are not processed. Must be
    /// generous enough for "eventually" (termination) to play out — the
    /// harness derives it from the delay model's bound.
    pub horizon: Time,
    /// Record a human-readable trace.
    pub trace: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            horizon: Time::units(10_000),
            trace: false,
        }
    }
}

/// Result of a run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// `decisions[p] = Some((t, v))` if process `p` decided `v` at `t`.
    pub decisions: Vec<Option<(Time, u64)>>,
    /// All inter-process messages (self-messages excluded).
    pub records: Vec<MsgRecord>,
    /// Which processes crashed during the run.
    pub crashed: Vec<bool>,
    /// Whether the event queue drained before the horizon.
    pub quiescent: bool,
    /// Time of the last processed event.
    pub end_time: Time,
    /// Trace (empty unless enabled).
    pub trace: Vec<TraceEntry>,
}

impl Outcome {
    /// Compute the paper's complexity measures for this execution.
    pub fn metrics(&self) -> Metrics {
        Metrics::compute(&self.records, &self.decisions, &self.crashed)
    }

    /// Decision value of process `p`, if any.
    pub fn decision_of(&self, p: ProcessId) -> Option<u64> {
        self.decisions[p].map(|(_, v)| v)
    }

    /// All decision values taken (with duplicates collapsed).
    pub fn decided_values(&self) -> Vec<u64> {
        let mut vals: Vec<u64> = self.decisions.iter().flatten().map(|&(_, v)| v).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

/// The simulator.
pub struct World<A: Automaton> {
    procs: Vec<A>,
    queue: EventQueue<A::Msg>,
    delay: Box<dyn DelayModel>,
    faults: FaultPlan,
    config: WorldConfig,
    crashed: Vec<bool>,
    /// Remaining send budget for partially-crashing processes at their crash
    /// timestamp (`None` until first touched).
    partial_budget: Vec<Option<usize>>,
    decisions: Vec<Option<(Time, u64)>>,
    records: Vec<MsgRecord>,
    wire_seq: u64,
    trace: Vec<TraceEntry>,
}

impl<A: Automaton> World<A> {
    /// Build a world over `procs` (one automaton per process, already
    /// initialized with their votes/roles).
    pub fn new(
        procs: Vec<A>,
        delay: Box<dyn DelayModel>,
        faults: FaultPlan,
        config: WorldConfig,
    ) -> Self {
        let n = procs.len();
        assert!(n >= 1);
        assert_eq!(faults.n(), n, "fault plan sized for a different n");
        World {
            procs,
            queue: EventQueue::new(),
            delay,
            faults,
            config,
            crashed: vec![false; n],
            partial_budget: vec![None; n],
            decisions: vec![None; n],
            records: Vec::new(),
            wire_seq: 0,
            trace: Vec::new(),
        }
    }

    fn n(&self) -> usize {
        self.procs.len()
    }

    /// Run to quiescence or the horizon; consume the world.
    pub fn run(mut self) -> Outcome {
        let n = self.n();
        // Dead-on-arrival crashes are queue events so they order correctly
        // against same-time stimuli; partial crashes are enforced inline.
        for p in 0..n {
            if let Some(c) = self.faults.crash_of(p) {
                if c.sends_at_crash_time == 0 {
                    self.queue.push(c.at, p, Event::Crash);
                }
            }
        }
        for p in 0..n {
            self.queue.push(Time::ZERO, p, Event::Start);
        }

        let mut end_time = Time::ZERO;
        let mut quiescent = true;
        while let Some(ev) = self.queue.pop() {
            let t = ev.key.at;
            if t > self.config.horizon {
                quiescent = false;
                break;
            }
            end_time = t;
            let p = ev.target;
            match ev.event {
                Event::Crash => {
                    if !self.crashed[p] {
                        self.crashed[p] = true;
                        self.push_trace(t, TraceKind::Crash { at: p });
                    }
                }
                other => {
                    if self.crashed[p] {
                        continue;
                    }
                    if let Some(c) = self.faults.crash_of(p) {
                        if t > c.at {
                            self.crashed[p] = true;
                            self.push_trace(t, TraceKind::Crash { at: p });
                            continue;
                        }
                        if t == c.at
                            && c.sends_at_crash_time > 0
                            && self.partial_budget[p].is_none()
                        {
                            self.partial_budget[p] = Some(c.sends_at_crash_time);
                        }
                    }
                    self.dispatch(p, t, other);
                }
            }
        }
        quiescent &= self.queue.is_empty();

        Outcome {
            decisions: self.decisions,
            records: self.records,
            crashed: self.crashed,
            quiescent,
            end_time,
            trace: self.trace,
        }
    }

    fn dispatch(&mut self, p: ProcessId, t: Time, event: Event<A::Msg>) {
        let mut ctx = Ctx::new(t, p, self.n(), self.config.trace);
        match event {
            Event::Start => self.procs[p].on_start(&mut ctx),
            Event::Deliver {
                from,
                msg,
                wire_seq,
            } => {
                if self.config.trace {
                    self.trace.push(TraceEntry {
                        time: t,
                        kind: TraceKind::Deliver {
                            from,
                            to: p,
                            desc: format!("{msg:?}"),
                        },
                    });
                }
                let _ = wire_seq;
                self.procs[p].on_message(from, msg, &mut ctx);
            }
            Event::Timer { tag } => {
                if self.config.trace {
                    self.trace.push(TraceEntry {
                        time: t,
                        kind: TraceKind::Timer { at: p, tag },
                    });
                }
                self.procs[p].on_timer(tag, &mut ctx);
            }
            Event::Crash => unreachable!("crash handled by caller"),
        }

        for line in ctx.take_traces() {
            self.trace.push(TraceEntry {
                time: t,
                kind: TraceKind::Note { at: p, text: line },
            });
        }
        for action in ctx.take_actions() {
            self.apply(p, t, action);
        }
    }

    fn apply(&mut self, p: ProcessId, t: Time, action: Action<A::Msg>) {
        // A partially-crashing process loses everything after its send
        // budget at the crash timestamp is exhausted (it died mid-step).
        if let Some(0) = self.partial_budget[p] {
            if !self.crashed[p] {
                self.crashed[p] = true;
                self.push_trace(t, TraceKind::Crash { at: p });
            }
            return;
        }
        match action {
            Action::Send { to, msg } => {
                if let Some(budget) = self.partial_budget[p].as_mut() {
                    *budget -= 1;
                }
                if self.config.trace {
                    self.trace.push(TraceEntry {
                        time: t,
                        kind: TraceKind::Send {
                            from: p,
                            to,
                            desc: format!("{msg:?}"),
                        },
                    });
                }
                if to == p {
                    // Free self-message: immediate arrival, not metered.
                    self.queue.push(
                        t,
                        to,
                        Event::Deliver {
                            from: p,
                            msg,
                            wire_seq: None,
                        },
                    );
                } else {
                    let d = self.delay.delay(p, to, t, self.wire_seq).max(1);
                    let arrival = t + d;
                    let seq = self.wire_seq;
                    self.wire_seq += 1;
                    self.records.push(MsgRecord {
                        seq,
                        from: p,
                        to,
                        sent: t,
                        arrival,
                    });
                    self.queue.push(
                        arrival,
                        to,
                        Event::Deliver {
                            from: p,
                            msg,
                            wire_seq: Some(seq),
                        },
                    );
                }
            }
            Action::SetTimer { at, tag } => {
                let at = at.max(t);
                self.queue.push(at, p, Event::Timer { tag });
            }
            Action::Decide(v) => {
                assert!(
                    self.decisions[p].is_none(),
                    "integrity violation: P{} decided twice",
                    p + 1
                );
                self.decisions[p] = Some((t, v));
                self.push_trace(t, TraceKind::Decide { at: p, value: v });
            }
        }
    }

    fn push_trace(&mut self, t: Time, kind: TraceKind) {
        if self.config.trace {
            self.trace.push(TraceEntry { time: t, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::FixedDelay;
    use crate::fault::{Crash, FaultPlan};
    use ac_sim::U;

    /// Toy automaton: P0 broadcasts "ping" on start; everyone decides 1 on
    /// first delivery; P0 decides on a timer at 2U.
    struct Ping {
        me: ProcessId,
    }
    impl Automaton for Ping {
        type Msg = &'static str;
        fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
            if self.me == 0 {
                ctx.broadcast_others("ping");
                ctx.set_timer(Time::units(2), 7);
            }
        }
        fn on_message(&mut self, _from: ProcessId, _msg: Self::Msg, ctx: &mut Ctx<Self::Msg>) {
            ctx.decide(1);
        }
        fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<Self::Msg>) {
            assert_eq!(tag, 7);
            ctx.decide(1);
        }
    }

    fn ping_world(n: usize, faults: FaultPlan) -> World<Ping> {
        let procs = (0..n).map(|me| Ping { me }).collect();
        World::new(
            procs,
            Box::new(FixedDelay::unit()),
            faults,
            WorldConfig::default(),
        )
    }

    #[test]
    fn worlds_and_plans_are_send() {
        // The parallel explorer ships whole worlds to worker threads; this
        // must stay true as the types evolve.
        fn assert_send<T: Send>() {}
        assert_send::<Crash>();
        assert_send::<FaultPlan>();
        assert_send::<WorldConfig>();
        assert_send::<Outcome>();
        assert_send::<World<Ping>>();
        assert_send::<Box<dyn crate::DelayModel>>();
    }

    #[test]
    fn nice_run_decides_everyone_and_meters() {
        let out = ping_world(3, FaultPlan::none(3)).run();
        assert!(out.quiescent);
        assert_eq!(out.decided_values(), vec![1]);
        let m = out.metrics();
        assert_eq!(m.messages_total, 2);
        // Receivers decide at U; P0 decides at 2U on its timer.
        assert_eq!(out.decisions[1].unwrap().0, Time(U));
        assert_eq!(out.decisions[0].unwrap().0, Time(2 * U));
        assert_eq!(m.delays, Some(2));
    }

    #[test]
    fn initial_crash_prevents_all_sends() {
        let faults = FaultPlan::none(3).with_crash(0, Crash::initially());
        let out = ping_world(3, faults).run();
        assert_eq!(out.records.len(), 0);
        assert!(out.decisions.iter().all(|d| d.is_none()));
        assert!(out.crashed[0]);
    }

    #[test]
    fn partial_crash_truncates_broadcast() {
        // P0 crashes at time 0 after 1 of its 2 sends.
        let faults = FaultPlan::none(3).with_crash(0, Crash::partial(Time::ZERO, 1));
        let out = ping_world(3, faults).run();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].to, 1); // deterministic broadcast order
        assert!(out.crashed[0]);
        // P1 decided, P2 never got the ping.
        assert!(out.decisions[1].is_some());
        assert!(out.decisions[2].is_none());
    }

    #[test]
    fn crashed_process_ignores_later_events() {
        // P1 crashes at U, exactly when the ping arrives: crash event has
        // priority, so it never processes the ping.
        let faults = FaultPlan::none(3).with_crash(1, Crash::at(Time(U)));
        let out = ping_world(3, faults).run();
        assert!(out.decisions[1].is_none());
        assert!(out.decisions[2].is_some());
    }

    #[test]
    #[should_panic(expected = "decided twice")]
    fn double_decide_panics() {
        struct Bad;
        impl Automaton for Bad {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.decide(0);
                ctx.decide(1);
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Ctx<()>) {}
            fn on_timer(&mut self, _: u32, _: &mut Ctx<()>) {}
        }
        let w = World::new(
            vec![Bad],
            Box::new(FixedDelay::unit()),
            FaultPlan::none(1),
            WorldConfig::default(),
        );
        let _ = w.run();
    }

    #[test]
    fn horizon_truncates_runs() {
        struct Loopy;
        impl Automaton for Loopy {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<()>) {
                ctx.set_timer(Time::units(1), 0);
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut Ctx<()>) {}
            fn on_timer(&mut self, _: u32, ctx: &mut Ctx<()>) {
                ctx.set_timer(ctx.now() + U, 0);
            }
        }
        let w = World::new(
            vec![Loopy],
            Box::new(FixedDelay::unit()),
            FaultPlan::none(1),
            WorldConfig {
                horizon: Time::units(10),
                trace: false,
            },
        );
        let out = w.run();
        assert!(!out.quiescent);
        assert!(out.end_time <= Time::units(10));
    }

    #[test]
    fn self_messages_are_free_and_immediate() {
        struct SelfSend;
        impl Automaton for SelfSend {
            type Msg = u8;
            fn on_start(&mut self, ctx: &mut Ctx<u8>) {
                let me = ctx.me();
                ctx.send(me, 42);
            }
            fn on_message(&mut self, from: ProcessId, msg: u8, ctx: &mut Ctx<u8>) {
                assert_eq!(from, ctx.me());
                assert_eq!(msg, 42);
                assert_eq!(ctx.now(), Time::ZERO); // immediate
                ctx.decide(1);
            }
            fn on_timer(&mut self, _: u32, _: &mut Ctx<u8>) {}
        }
        let w = World::new(
            vec![SelfSend],
            Box::new(FixedDelay::unit()),
            FaultPlan::none(1),
            WorldConfig::default(),
        );
        let out = w.run();
        assert_eq!(out.records.len(), 0);
        assert_eq!(out.decisions[0], Some((Time::ZERO, 1)));
    }
}
