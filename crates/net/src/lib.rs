//! # ac-net — the simulated distributed database network
//!
//! Implements the two system models of the paper (§2.2):
//!
//! * a **crash-failure system** (synchronous): every message transmission
//!   delay is at most the known bound `U`; processes may crash;
//! * a **network-failure system** (eventually synchronous): message delays
//!   may exceed `U` (arbitrarily, but finitely) until some global
//!   stabilization time, after which they are bounded by `U` again.
//!
//! Channels never lose, duplicate, corrupt or invent messages; every message
//! sent is eventually received (§2.1), *unless* the destination has crashed
//! (a crashed process performs no further steps, so delivery to it is moot).
//!
//! [`World`] is the discrete-event interpreter tying `ac-sim` automata to a
//! [`DelayModel`] and a [`FaultPlan`], recording decisions, per-message
//! wire records and optional traces, from which [`Metrics`] computes the
//! paper's two complexity measures.

#![deny(missing_docs)]

pub mod delay;
pub mod fault;
pub mod metrics;
pub mod world;

pub use delay::{DelayModel, DelayRule, FixedDelay, GstDelay, JitterDelay, RuleDelay};
pub use fault::{Crash, FaultPlan};
pub use metrics::{ExecutionClass, Metrics, MsgRecord};
pub use world::{Outcome, World, WorldConfig};
