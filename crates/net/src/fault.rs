//! Crash-failure injection.
//!
//! The paper's crash model: at most `f` of the `n` processes crash; after a
//! process crashes it sends no further message (§2.1). Lower-bound proofs
//! additionally crash processes *in the middle of a broadcast* ("crashes
//! while sending `[B,1]`", Appendix E.4), which [`Crash::partial`] models: the
//! process still executes its handlers at the crash timestamp, but only its
//! first `k` sends at that timestamp reach the network.

use ac_sim::{ProcessId, Time};

/// A scheduled crash of one process.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Crash {
    /// When the crash takes effect.
    pub at: Time,
    /// Number of sends admitted at timestamp `at` before the process dies.
    /// `0` means the process performs no step at `at` (it is dead for all
    /// events at `at` and later). `k > 0` means it handles events at `at`
    /// but only its first `k` sends at `at` are put on the wire ("crashed
    /// while broadcasting"); it performs no step after `at` either way.
    pub sends_at_crash_time: usize,
}

impl Crash {
    /// Crash dead at `at`: no step, no send at or after `at`.
    pub fn at(at: Time) -> Self {
        Crash {
            at,
            sends_at_crash_time: 0,
        }
    }

    /// Crash at time 0 before sending anything — the "P crashes before
    /// sending any message" construction used throughout the proofs.
    pub fn initially() -> Self {
        Crash::at(Time::ZERO)
    }

    /// Crash at `at` after `k` of the sends performed at `at` made it out.
    pub fn partial(at: Time, k: usize) -> Self {
        Crash {
            at,
            sends_at_crash_time: k,
        }
    }
}

/// Crash schedule for a whole execution.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    crashes: Vec<Option<Crash>>,
}

impl FaultPlan {
    /// No failures.
    pub fn none(n: usize) -> Self {
        FaultPlan {
            crashes: vec![None; n],
        }
    }

    /// Add a crash for process `p` (builder style).
    pub fn with_crash(mut self, p: ProcessId, c: Crash) -> Self {
        assert!(p < self.crashes.len(), "process id out of range");
        self.crashes[p] = Some(c);
        self
    }

    /// The crash scheduled for process `p`, if any.
    pub fn crash_of(&self, p: ProcessId) -> Option<Crash> {
        self.crashes.get(p).copied().flatten()
    }

    /// Number of processes that crash.
    pub fn crash_count(&self) -> usize {
        self.crashes.iter().filter(|c| c.is_some()).count()
    }

    /// Whether any process crashes.
    pub fn any(&self) -> bool {
        self.crash_count() > 0
    }

    /// Number of processes this plan is sized for.
    pub fn n(&self) -> usize {
        self.crashes.len()
    }

    /// Ids of crashing processes.
    pub fn crashed_ids(&self) -> Vec<ProcessId> {
        (0..self.crashes.len())
            .filter(|&p| self.crashes[p].is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_queries() {
        let plan = FaultPlan::none(4)
            .with_crash(1, Crash::initially())
            .with_crash(3, Crash::partial(Time::units(2), 1));
        assert_eq!(plan.crash_count(), 2);
        assert!(plan.any());
        assert_eq!(plan.crashed_ids(), vec![1, 3]);
        assert_eq!(plan.crash_of(0), None);
        assert_eq!(plan.crash_of(1), Some(Crash::at(Time::ZERO)));
        assert_eq!(plan.crash_of(3).unwrap().sends_at_crash_time, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_crash_panics() {
        let _ = FaultPlan::none(2).with_crash(5, Crash::initially());
    }
}
