//! Message delay models.
//!
//! A [`DelayModel`] decides the transmission delay of each message. A model
//! producing only delays `≤ U` yields crash-failure (synchronous) or
//! failure-free executions; any delay `> U` makes the execution a
//! network-failure execution (paper §2.2). All models are deterministic
//! given their seed, so every experiment is reproducible.

use ac_sim::{ProcessId, Time, U};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Decides per-message transmission delays (in ticks).
///
/// `Send` is a supertrait so that a boxed model — and therefore a whole
/// [`crate::World`] — can be shipped to a worker thread; the parallel
/// explorer in `ac-commit` fans independent runs out over threads.
pub trait DelayModel: Send {
    /// Delay of the message with wire sequence number `seq`, sent by `from`
    /// to `to` at `sent`.
    fn delay(&mut self, from: ProcessId, to: ProcessId, sent: Time, seq: u64) -> u64;

    /// An upper bound on all delays this model will ever produce, used to
    /// size run horizons. `None` means unbounded (caller must cap the run).
    fn bound(&self) -> Option<u64> {
        None
    }
}

/// Every message takes exactly `delay` ticks. `FixedDelay::unit()` is the
/// nice-execution model: exactly one delay unit `U` per message, which makes
/// elapsed-time/U equal Lamport's message-delay count.
#[derive(Clone, Debug)]
pub struct FixedDelay(pub u64);

impl FixedDelay {
    /// Exactly one delay unit `U` per message — the nice-execution model.
    pub fn unit() -> Self {
        FixedDelay(U)
    }
}

impl DelayModel for FixedDelay {
    fn delay(&mut self, _f: ProcessId, _t: ProcessId, _s: Time, _q: u64) -> u64 {
        self.0
    }
    fn bound(&self) -> Option<u64> {
        Some(self.0)
    }
}

/// Uniformly random delays in `[min, max]` ticks (inclusive), seeded.
/// With `max ≤ U` this is still a synchronous (crash-failure) execution.
#[derive(Clone, Debug)]
pub struct JitterDelay {
    /// Minimum delay in ticks (≥ 1: a message cannot arrive instantly).
    pub min: u64,
    /// Maximum delay in ticks (inclusive).
    pub max: u64,
    rng: StdRng,
}

impl JitterDelay {
    /// Delays uniform in `[min, max]` ticks, drawn from a stream seeded
    /// with `seed`.
    pub fn new(min: u64, max: u64, seed: u64) -> Self {
        assert!(min >= 1, "a message cannot arrive at its send instant");
        assert!(min <= max);
        JitterDelay {
            min,
            max,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Jitter within the synchronous bound: delays in `[U/2, U]`.
    pub fn synchronous(seed: u64) -> Self {
        Self::new(U / 2, U, seed)
    }
}

impl DelayModel for JitterDelay {
    fn delay(&mut self, _f: ProcessId, _t: ProcessId, _s: Time, _q: u64) -> u64 {
        self.rng.gen_range(self.min..=self.max)
    }
    fn bound(&self) -> Option<u64> {
        Some(self.max)
    }
}

/// Eventually synchronous delays: before the global stabilization time
/// `gst`, delays are uniformly random in `[U, chaos_max]` (so timeouts based
/// on `U` are routinely violated); at/after `gst`, delays are exactly `U`.
/// This is the executable form of the paper's network-failure system.
#[derive(Clone, Debug)]
pub struct GstDelay {
    /// Global stabilization time: sends at or after it take exactly `U`.
    pub gst: Time,
    /// Maximum pre-GST delay in ticks (inclusive, ≥ `U`).
    pub chaos_max: u64,
    rng: StdRng,
}

impl GstDelay {
    /// Pre-GST delays uniform in `[U, chaos_max]`, seeded with `seed`;
    /// exactly `U` from `gst` on.
    pub fn new(gst: Time, chaos_max: u64, seed: u64) -> Self {
        assert!(chaos_max >= U);
        GstDelay {
            gst,
            chaos_max,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl DelayModel for GstDelay {
    fn delay(&mut self, _f: ProcessId, _t: ProcessId, sent: Time, _q: u64) -> u64 {
        if sent >= self.gst {
            U
        } else {
            // The message may still land after GST; delays are finite so
            // every message is eventually received.
            self.rng.gen_range(U..=self.chaos_max)
        }
    }
    fn bound(&self) -> Option<u64> {
        Some(self.chaos_max)
    }
}

/// A targeted delay override, used to build the adversarial schedules of the
/// paper's lower-bound proofs (e.g. "every message from P to a process in
/// Ω\Φ arrives later than max(t1, t3)").
///
/// ```
/// use ac_net::DelayRule;
/// use ac_sim::{Time, U};
///
/// // Messages on the link P1 -> P3 sent before time 1U take 6 delay units.
/// let rule = DelayRule::link(0, 2, Time::ZERO, Time::units(1), 6 * U);
/// assert!(rule.matches(0, 2, Time::ZERO));
/// assert!(!rule.matches(0, 2, Time::units(1))); // window expired
/// assert!(!rule.matches(1, 2, Time::ZERO)); // different sender
/// ```
#[derive(Clone, Debug)]
pub struct DelayRule {
    /// Match messages from this sender (`None` = any).
    pub from: Option<ProcessId>,
    /// Match messages to this destination (`None` = any).
    pub to: Option<ProcessId>,
    /// Match messages sent in `[window_start, window_end)`.
    pub window: (Time, Time),
    /// Delay (ticks) applied to matching messages.
    pub delay: u64,
}

impl DelayRule {
    /// Whether this rule applies to a message `from -> to` sent at `sent`.
    pub fn matches(&self, from: ProcessId, to: ProcessId, sent: Time) -> bool {
        self.from.is_none_or(|p| p == from)
            && self.to.is_none_or(|p| p == to)
            && sent >= self.window.0
            && sent < self.window.1
    }

    /// Rule: all messages from `from`, whenever sent, take `delay` ticks.
    pub fn from_process(from: ProcessId, delay: u64) -> Self {
        DelayRule {
            from: Some(from),
            to: None,
            window: (Time::ZERO, Time(u64::MAX)),
            delay,
        }
    }

    /// Rule: the link `from -> to` takes `delay` ticks for messages sent in
    /// `[start, end)`.
    pub fn link(from: ProcessId, to: ProcessId, start: Time, end: Time, delay: u64) -> Self {
        DelayRule {
            from: Some(from),
            to: Some(to),
            window: (start, end),
            delay,
        }
    }
}

/// First-match rule list with a fallback model.
pub struct RuleDelay<D: DelayModel> {
    /// Targeted overrides, checked in order; the first match wins.
    pub rules: Vec<DelayRule>,
    /// Model deciding the delay of messages no rule matches.
    pub fallback: D,
}

impl<D: DelayModel> RuleDelay<D> {
    /// Rules over an arbitrary fallback model.
    pub fn new(rules: Vec<DelayRule>, fallback: D) -> Self {
        RuleDelay { rules, fallback }
    }
}

impl RuleDelay<FixedDelay> {
    /// Rules over the unit-delay baseline — the usual way to build a
    /// targeted network-failure execution.
    pub fn over_unit(rules: Vec<DelayRule>) -> Self {
        RuleDelay {
            rules,
            fallback: FixedDelay::unit(),
        }
    }
}

impl<D: DelayModel> DelayModel for RuleDelay<D> {
    fn delay(&mut self, from: ProcessId, to: ProcessId, sent: Time, seq: u64) -> u64 {
        for r in &self.rules {
            if r.matches(from, to, sent) {
                return r.delay;
            }
        }
        self.fallback.delay(from, to, sent, seq)
    }
    fn bound(&self) -> Option<u64> {
        let rule_max = self.rules.iter().map(|r| r.delay).max();
        match (rule_max, self.fallback.bound()) {
            (Some(r), Some(b)) => Some(r.max(b)),
            (None, b) => b,
            (Some(_), None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_constant() {
        let mut d = FixedDelay::unit();
        assert_eq!(d.delay(0, 1, Time::ZERO, 0), U);
        assert_eq!(d.bound(), Some(U));
    }

    #[test]
    fn jitter_respects_bounds_and_is_deterministic() {
        let mut a = JitterDelay::synchronous(42);
        let mut b = JitterDelay::synchronous(42);
        for i in 0..100 {
            let da = a.delay(0, 1, Time::ZERO, i);
            assert_eq!(da, b.delay(0, 1, Time::ZERO, i));
            assert!((U / 2..=U).contains(&da));
        }
    }

    #[test]
    fn gst_is_chaotic_before_and_unit_after() {
        let mut d = GstDelay::new(Time::units(5), 4 * U, 7);
        let before = d.delay(0, 1, Time::units(1), 0);
        assert!((U..=4 * U).contains(&before));
        assert_eq!(d.delay(0, 1, Time::units(5), 1), U);
        assert_eq!(d.delay(0, 1, Time::units(9), 2), U);
    }

    #[test]
    fn rules_match_first_then_fallback() {
        let mut d = RuleDelay::over_unit(vec![
            DelayRule::link(0, 2, Time::ZERO, Time::units(1), 7 * U),
            DelayRule::from_process(1, 3 * U),
        ]);
        assert_eq!(d.delay(0, 2, Time::ZERO, 0), 7 * U); // first rule
        assert_eq!(d.delay(1, 2, Time::units(4), 1), 3 * U); // second rule
        assert_eq!(d.delay(0, 2, Time::units(2), 2), U); // window expired
        assert_eq!(d.delay(2, 0, Time::ZERO, 3), U); // fallback
        assert_eq!(d.bound(), Some(7 * U));
    }
}
