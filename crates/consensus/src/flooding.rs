//! FloodSet consensus — the synchronous-system counterpart of Paxos.
//!
//! The paper's two system models demand different consensus substrates:
//! indulgent protocols (INBAC & co.) need a module that terminates in a
//! *network-failure* system and therefore tolerate only a minority of
//! crashes (Paxos, [`crate::paxos`]). Synchronous NBAC instead lives in a
//! crash-failure system, where the classic FloodSet algorithm (Lynch,
//! ch. 6) decides in `f+1` rounds while tolerating up to `f = n−1` crashes.
//!
//! Both implement uniform consensus under their respective model, making
//! the trade-off of the paper's Table 1 concrete at the substrate level:
//! FloodSet's agreement silently breaks if a message outlives its round
//! (demonstrated in the tests), which is exactly why the indulgent
//! protocols must pay for Paxos.
//!
//! Protocol: every process broadcasts the set of proposals it has seen at
//! each of `f+1` synchronous rounds (one message delay per round); after
//! round `f+1` everyone decides the minimum of its set. With at most `f`
//! crashes some round is crash-free, after which all sets are equal.

use ac_sim::{Ctx, ProcessId, Time, U};

/// Timer tags used by the flooding instance (below `CONS_TAG_BASE`, so it
/// can coexist with a Paxos instance if a host ever runs both).
const FLOOD_TAG_BASE: u32 = 1 << 12;

/// A flooding message: the sender's current set of seen proposals, as a
/// sorted vector.
pub type FloodMsg = Vec<u64>;

/// One process of FloodSet consensus.
#[derive(Clone, Debug)]
pub struct FloodSet {
    f: usize,
    seen: Vec<u64>,
    round: u64,
    started: Option<Time>,
    decided: Option<u64>,
}

impl FloodSet {
    /// A FloodSet instance for one process of `n` tolerating `f` crashes.
    pub fn new(_me: ProcessId, _n: usize, f: usize) -> Self {
        FloodSet {
            f,
            seen: Vec::new(),
            round: 0,
            started: None,
            decided: None,
        }
    }

    /// Whether `tag` belongs to this sub-automaton's round timers (hosts
    /// route such timers to [`FloodSet::on_timer`]).
    #[inline]
    pub fn owns_tag(&self, tag: u32) -> bool {
        (FLOOD_TAG_BASE..FLOOD_TAG_BASE + self.f as u32 + 2).contains(&tag)
    }

    /// The decided value, once the final round has completed.
    #[inline]
    pub fn decision(&self) -> Option<u64> {
        self.decided
    }

    fn insert(&mut self, v: u64) {
        if let Err(i) = self.seen.binary_search(&v) {
            self.seen.insert(i, v);
        }
    }

    /// Propose `v`; rounds are scheduled at `U`-multiples from now.
    pub fn propose<M: Clone + std::fmt::Debug>(
        &mut self,
        v: u64,
        ctx: &mut Ctx<M>,
        wrap: fn(FloodMsg) -> M,
    ) {
        if self.started.is_some() {
            return;
        }
        self.started = Some(ctx.now());
        self.insert(v);
        ctx.broadcast_others(wrap(self.seen.clone()));
        self.round = 1;
        ctx.set_timer(ctx.now() + U, FLOOD_TAG_BASE + 1);
    }

    /// Merge a flood message.
    pub fn on_message(&mut self, set: FloodMsg) {
        for v in set {
            self.insert(v);
        }
    }

    /// Round boundary. Returns `Some(decision)` after round `f+1`.
    pub fn on_timer<M: Clone + std::fmt::Debug>(
        &mut self,
        tag: u32,
        ctx: &mut Ctx<M>,
        wrap: fn(FloodMsg) -> M,
    ) -> Option<u64> {
        debug_assert!(self.owns_tag(tag));
        if self.decided.is_some() || (tag - FLOOD_TAG_BASE) as u64 != self.round {
            return None;
        }
        if self.round <= self.f as u64 {
            ctx.broadcast_others(wrap(self.seen.clone()));
            self.round += 1;
            ctx.set_timer(ctx.now() + U, FLOOD_TAG_BASE + self.round as u32);
            None
        } else {
            let d = *self
                .seen
                .first()
                .expect("own proposal is always in the set");
            self.decided = Some(d);
            Some(d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_sim::Automaton;

    /// Standalone automaton wrapping one FloodSet instance (also used by
    /// the crate's integration tests).
    #[derive(Debug)]
    pub struct FloodProc {
        pub inner: FloodSet,
        pub proposal: u64,
    }

    impl Automaton for FloodProc {
        type Msg = FloodMsg;

        fn on_start(&mut self, ctx: &mut Ctx<FloodMsg>) {
            let v = self.proposal;
            self.inner.propose(v, ctx, |m| m);
        }
        fn on_message(&mut self, _from: ProcessId, msg: FloodMsg, _ctx: &mut Ctx<FloodMsg>) {
            self.inner.on_message(msg);
        }
        fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<FloodMsg>) {
            if let Some(d) = self.inner.on_timer(tag, ctx, |m| m) {
                ctx.decide(d);
            }
        }
    }

    use ac_net::{Crash, DelayRule, FaultPlan, FixedDelay, RuleDelay, World, WorldConfig};

    fn run(
        proposals: &[u64],
        f: usize,
        faults: FaultPlan,
        rules: Vec<DelayRule>,
    ) -> ac_net::Outcome {
        let n = proposals.len();
        let procs: Vec<FloodProc> = (0..n)
            .map(|me| FloodProc {
                inner: FloodSet::new(me, n, f),
                proposal: proposals[me],
            })
            .collect();
        let delay: Box<dyn ac_net::DelayModel> = if rules.is_empty() {
            Box::new(FixedDelay::unit())
        } else {
            Box::new(RuleDelay::over_unit(rules))
        };
        World::new(procs, delay, faults, WorldConfig::default()).run()
    }

    #[test]
    fn failure_free_unanimity() {
        let out = run(&[7, 7, 7], 2, FaultPlan::none(3), vec![]);
        assert_eq!(out.decided_values(), vec![7]);
        // f+1 = 3 rounds of n(n-1) messages.
        assert_eq!(out.metrics().messages_total, 3 * 6);
    }

    #[test]
    fn decides_minimum_of_proposals() {
        let out = run(&[5, 2, 9, 4], 1, FaultPlan::none(4), vec![]);
        assert_eq!(out.decided_values(), vec![2]);
    }

    #[test]
    fn tolerates_n_minus_1_crashes() {
        // This is what Paxos cannot do — and why synchronous NBAC enjoys
        // n−1 resilience.
        let n = 4;
        let faults = FaultPlan::none(n)
            .with_crash(0, Crash::partial(Time::ZERO, 1))
            .with_crash(1, Crash::at(Time::units(1)))
            .with_crash(2, Crash::at(Time::units(2)));
        let out = run(&[1, 2, 3, 4], n - 1, faults, vec![]);
        // The sole survivor decides; uniform agreement is vacuous here but
        // the decision must be some proposal (validity).
        let d = out.decision_of(3).expect("survivor decides");
        assert!((1..=4).contains(&d));
    }

    #[test]
    fn mid_round_crash_chains_preserve_agreement() {
        // The classic hard case: each round, one process crashes while
        // relaying fresh information to exactly one other process. With
        // f+1 rounds there are more rounds than crashes, so some round is
        // clean.
        let n = 4;
        let faults = FaultPlan::none(n)
            .with_crash(0, Crash::partial(Time::ZERO, 1))
            .with_crash(1, Crash::partial(Time::units(1), 1));
        let out = run(&[1, 9, 9, 9], 2, faults, vec![]);
        let vals = out.decided_values();
        assert_eq!(vals.len(), 1, "disagreement: {vals:?}");
    }

    #[test]
    fn network_failure_breaks_floodset_agreement() {
        // A message delayed past its round boundary splits the decision —
        // flooding is NOT indulgent, which is exactly why INBAC needs
        // Paxos underneath (Definition 5 demands NF termination).
        let n = 3;
        // P1 proposes the minimum but its floods to P3 are delayed beyond
        // all f+1 = 2 rounds; P2's relays to P3 likewise.
        let rules = vec![
            DelayRule::from_process(0, 10 * U),
            DelayRule::link(1, 2, Time::ZERO, Time::units(10), 10 * U),
        ];
        let out = run(&[1, 5, 5], 1, FaultPlan::none(n), rules);
        let vals = out.decided_values();
        assert_eq!(vals, vec![1, 5], "expected split decision, got {vals:?}");
    }
}
