//! # ac-consensus — indulgent uniform consensus
//!
//! The paper's protocols 1NBAC, 0NBAC, INBAC and (2n−2+f)NBAC use a
//! consensus module as a black box (Definition 5): *termination* (every
//! correct process eventually decides), *agreement* (no two processes decide
//! differently — uniform, i.e. including processes that later crash) and
//! *validity* (every decision was proposed). The module must terminate in a
//! **network-failure system** (eventually synchronous), which by FLP rules
//! out deterministic asynchronous solutions and motivates an indulgent
//! algorithm: safe always, live once the system stabilizes and a majority of
//! processes is correct — the same assumption the paper makes in Appendix B.
//!
//! We implement single-decree Paxos with a rotating coordinator:
//!
//! * ballot `b` (numbered from 1) is owned by process `(b−1) mod n`;
//! * a proposer that owns the current ballot runs the classic two phases
//!   (`Prepare`/`Promise`, `Accept`/`Accepted`) over all `n` processes and
//!   broadcasts `Decide` on a majority of accepts;
//! * every process arms a per-ballot timeout that grows linearly; on
//!   expiry it advances to the next ballot — after GST the first correct
//!   proposer-owned ballot decides;
//! * decided processes answer any `Prepare`/`Accept` with `Decide`, so
//!   stragglers catch up without retransmission machinery.
//!
//! The paper stresses that INBAC's correctness "does not rely on a
//! particular algorithm"; this crate is behind the [`ConsensusHost`]
//! seam precisely so another implementation can be dropped in.

#![deny(missing_docs)]

pub mod flooding;
pub mod paxos;

pub use flooding::{FloodMsg, FloodSet};
pub use paxos::{ConsensusHost, CtxHost, Paxos, PaxosMsg, CONS_TAG_BASE};
