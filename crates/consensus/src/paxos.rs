//! Single-decree Paxos with a rotating coordinator.

use ac_sim::{Ctx, ProcessId, Time, Wire, WireError, U};

/// Timer tags at or above this value belong to the consensus sub-automaton;
/// embedding protocols must keep their own tags below it.
pub const CONS_TAG_BASE: u32 = 1 << 16;

/// Base ballot timeout. Two phases plus the decide broadcast need at most
/// five one-way delays post-GST; 8U leaves slack for handler interleaving.
const ROUND_TICKS: u64 = 8 * U;
/// Linear growth of the per-ballot timeout, so that pre-GST chaos of any
/// finite magnitude is eventually outlived.
const ROUND_GROWTH: u64 = 4 * U;

/// Messages of the consensus module. Embedding protocols wrap these in a
/// variant of their own message enum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PaxosMsg {
    /// Phase 1a: the ballot `bal` coordinator asks acceptors to promise.
    Prepare {
        /// Ballot number.
        bal: u64,
    },
    /// Phase 1b: an acceptor promises ballot `bal`, reporting its
    /// highest accepted `(ballot, value)` pair, if any.
    Promise {
        /// The promised ballot.
        bal: u64,
        /// Highest `(ballot, value)` this acceptor has accepted.
        accepted: Option<(u64, u64)>,
    },
    /// Phase 2a: the coordinator asks acceptors to accept `val` at `bal`.
    Accept {
        /// Ballot number.
        bal: u64,
        /// Proposed value.
        val: u64,
    },
    /// Phase 2b: an acceptor reports it accepted `val` at `bal`.
    Accepted {
        /// Ballot number.
        bal: u64,
        /// Accepted value.
        val: u64,
    },
    /// Decision broadcast: `val` is chosen.
    Decide {
        /// The decided value.
        val: u64,
    },
}

impl Wire for PaxosMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PaxosMsg::Prepare { bal } => {
                buf.push(0);
                bal.encode(buf);
            }
            PaxosMsg::Promise { bal, accepted } => {
                buf.push(1);
                bal.encode(buf);
                accepted.encode(buf);
            }
            PaxosMsg::Accept { bal, val } => {
                buf.push(2);
                bal.encode(buf);
                val.encode(buf);
            }
            PaxosMsg::Accepted { bal, val } => {
                buf.push(3);
                bal.encode(buf);
                val.encode(buf);
            }
            PaxosMsg::Decide { val } => {
                buf.push(4);
                val.encode(buf);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(PaxosMsg::Prepare {
                bal: u64::decode(buf)?,
            }),
            1 => Ok(PaxosMsg::Promise {
                bal: u64::decode(buf)?,
                accepted: Option::decode(buf)?,
            }),
            2 => Ok(PaxosMsg::Accept {
                bal: u64::decode(buf)?,
                val: u64::decode(buf)?,
            }),
            3 => Ok(PaxosMsg::Accepted {
                bal: u64::decode(buf)?,
                val: u64::decode(buf)?,
            }),
            4 => Ok(PaxosMsg::Decide {
                val: u64::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("PaxosMsg tag")),
        }
    }
}

/// The effect interface the consensus module needs from its host.
///
/// Implemented by [`CtxHost`] for simulated/threaded automata; a production
/// system would implement it over its RPC layer.
pub trait ConsensusHost {
    /// Send a consensus message to process `to`.
    fn send(&mut self, to: ProcessId, m: PaxosMsg);
    /// Arm a timer for the consensus module at absolute time `at`.
    fn set_timer(&mut self, at: Time, tag: u32);
    /// Current virtual time.
    fn now(&self) -> Time;
}

/// Adapter implementing [`ConsensusHost`] over a protocol's [`Ctx`], wrapping
/// consensus messages into the protocol's own message type via `wrap`.
pub struct CtxHost<'a, M> {
    /// The hosting automaton's execution context.
    pub ctx: &'a mut Ctx<M>,
    /// Wraps a consensus message into the host's message alphabet.
    pub wrap: fn(PaxosMsg) -> M,
}

impl<M: Clone + std::fmt::Debug> ConsensusHost for CtxHost<'_, M> {
    fn send(&mut self, to: ProcessId, m: PaxosMsg) {
        let msg = (self.wrap)(m);
        self.ctx.send(to, msg);
    }
    fn set_timer(&mut self, at: Time, tag: u32) {
        self.ctx.set_timer(at, tag);
    }
    fn now(&self) -> Time {
        self.ctx.now()
    }
}

/// Proposer-side phase within the current ballot.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Phase {
    Idle,
    Preparing {
        promises: Vec<ProcessId>,
        best: Option<(u64, u64)>,
    },
    Accepting {
        accepts: Vec<ProcessId>,
        val: u64,
    },
}

/// One instance of single-decree Paxos, embedded in a host automaton.
///
/// The host must route every wrapped [`PaxosMsg`] to [`Paxos::on_message`]
/// and every timer with a tag `>= tag_base` to [`Paxos::on_timer`]. Both
/// return `Some(v)` exactly once — when this process first learns the
/// decision.
#[derive(Clone, Debug)]
pub struct Paxos {
    me: ProcessId,
    n: usize,
    tag_base: u32,
    // Acceptor state.
    promised: u64,
    accepted: Option<(u64, u64)>,
    // Proposer state.
    proposal: Option<u64>,
    round: u64,
    phase: Phase,
    decided: Option<u64>,
    announced: bool,
}

impl Paxos {
    /// A Paxos instance for process `me` of `n`, with the default
    /// [`CONS_TAG_BASE`] timer-tag namespace.
    pub fn new(me: ProcessId, n: usize) -> Self {
        Self::with_tag_base(me, n, CONS_TAG_BASE)
    }

    /// Like [`Paxos::new`] with an explicit timer-tag namespace start (for
    /// hosts embedding several consensus instances).
    pub fn with_tag_base(me: ProcessId, n: usize, tag_base: u32) -> Self {
        assert!(n >= 1);
        Paxos {
            me,
            n,
            tag_base,
            promised: 0,
            accepted: None,
            proposal: None,
            round: 0,
            phase: Phase::Idle,
            decided: None,
            announced: false,
        }
    }

    #[inline]
    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    #[inline]
    fn owner(&self, round: u64) -> ProcessId {
        (round % self.n as u64) as usize
    }

    #[inline]
    fn ballot(&self, round: u64) -> u64 {
        round + 1
    }

    /// Whether `tag` belongs to this consensus instance.
    #[inline]
    pub fn owns_tag(&self, tag: u32) -> bool {
        tag >= self.tag_base
    }

    /// The decision, if this process has learnt it.
    #[inline]
    pub fn decision(&self) -> Option<u64> {
        self.decided
    }

    /// Whether `propose` has been called.
    #[inline]
    pub fn proposed(&self) -> bool {
        self.proposal.is_some()
    }

    /// Propose `v`. Idempotent: later calls are ignored.
    pub fn propose(&mut self, v: u64, host: &mut impl ConsensusHost) {
        if self.proposal.is_some() || self.decided.is_some() {
            return;
        }
        self.proposal = Some(v);
        if self.owner(self.round) == self.me {
            self.start_prepare(host);
        }
        self.arm(host);
    }

    fn arm(&mut self, host: &mut impl ConsensusHost) {
        let deadline = host.now() + ROUND_TICKS + self.round * ROUND_GROWTH;
        debug_assert!(self.round < (u32::MAX - self.tag_base) as u64);
        host.set_timer(deadline, self.tag_base + self.round as u32);
    }

    fn start_prepare(&mut self, host: &mut impl ConsensusHost) {
        let bal = self.ballot(self.round);
        self.phase = Phase::Preparing {
            promises: Vec::new(),
            best: None,
        };
        for q in 0..self.n {
            host.send(q, PaxosMsg::Prepare { bal });
        }
    }

    /// Handle a consensus message. Returns `Some(v)` when this process first
    /// learns the decision `v`.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        m: PaxosMsg,
        host: &mut impl ConsensusHost,
    ) -> Option<u64> {
        match m {
            PaxosMsg::Prepare { bal } => {
                if let Some(val) = self.decided {
                    host.send(from, PaxosMsg::Decide { val });
                } else if bal > self.promised {
                    self.promised = bal;
                    host.send(
                        from,
                        PaxosMsg::Promise {
                            bal,
                            accepted: self.accepted,
                        },
                    );
                }
                None
            }
            PaxosMsg::Promise { bal, accepted } => {
                if self.decided.is_some() || bal != self.ballot(self.round) {
                    return None;
                }
                let majority = self.majority();
                if let Phase::Preparing { promises, best } = &mut self.phase {
                    if promises.contains(&from) {
                        return None;
                    }
                    promises.push(from);
                    if let Some((abal, aval)) = accepted {
                        if best.is_none_or(|(b, _)| abal > b) {
                            *best = Some((abal, aval));
                        }
                    }
                    if promises.len() >= majority {
                        let val = best
                            .map(|(_, v)| v)
                            .or(self.proposal)
                            .expect("proposer without a value started a ballot");
                        self.phase = Phase::Accepting {
                            accepts: Vec::new(),
                            val,
                        };
                        for q in 0..self.n {
                            host.send(q, PaxosMsg::Accept { bal, val });
                        }
                    }
                }
                None
            }
            PaxosMsg::Accept { bal, val } => {
                if let Some(dv) = self.decided {
                    host.send(from, PaxosMsg::Decide { val: dv });
                    return None;
                }
                if bal >= self.promised {
                    self.promised = bal;
                    self.accepted = Some((bal, val));
                    host.send(from, PaxosMsg::Accepted { bal, val });
                }
                None
            }
            PaxosMsg::Accepted { bal, val } => {
                if self.decided.is_some() || bal != self.ballot(self.round) {
                    return None;
                }
                if let Phase::Accepting {
                    accepts,
                    val: myval,
                } = &mut self.phase
                {
                    debug_assert_eq!(*myval, val);
                    if accepts.contains(&from) {
                        return None;
                    }
                    accepts.push(from);
                    if accepts.len() >= self.majority() {
                        // Value chosen: announce and decide locally.
                        for q in 0..self.n {
                            if q != self.me {
                                host.send(q, PaxosMsg::Decide { val });
                            }
                        }
                        return self.learn(val);
                    }
                }
                None
            }
            PaxosMsg::Decide { val } => self.learn(val),
        }
    }

    fn learn(&mut self, val: u64) -> Option<u64> {
        if self.decided.is_none() {
            self.decided = Some(val);
        }
        debug_assert_eq!(
            self.decided,
            Some(val),
            "paxos agreement violated internally"
        );
        if self.announced {
            None
        } else {
            self.announced = true;
            Some(val)
        }
    }

    /// Handle a timer with a tag owned by this instance. Returns a decision
    /// like [`Paxos::on_message`] (always `None` today, kept symmetric).
    pub fn on_timer(&mut self, tag: u32, host: &mut impl ConsensusHost) -> Option<u64> {
        debug_assert!(self.owns_tag(tag));
        let fired_round = (tag - self.tag_base) as u64;
        if self.decided.is_some() || fired_round != self.round || self.proposal.is_none() {
            return None;
        }
        // Current ballot made no progress: move on.
        self.round += 1;
        self.phase = Phase::Idle;
        if self.owner(self.round) == self.me {
            self.start_prepare(host);
        }
        self.arm(host);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct VecHost {
        now: Time,
        sent: Vec<(ProcessId, PaxosMsg)>,
        timers: Vec<(Time, u32)>,
    }
    impl VecHost {
        fn new() -> Self {
            VecHost {
                now: Time::ZERO,
                sent: Vec::new(),
                timers: Vec::new(),
            }
        }
    }
    impl ConsensusHost for VecHost {
        fn send(&mut self, to: ProcessId, m: PaxosMsg) {
            self.sent.push((to, m));
        }
        fn set_timer(&mut self, at: Time, tag: u32) {
            self.timers.push((at, tag));
        }
        fn now(&self) -> Time {
            self.now
        }
    }

    #[test]
    fn round_zero_owner_prepares_on_propose() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(0, 3);
        p.propose(1, &mut h);
        let prepares = h
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::Prepare { bal: 1 }))
            .count();
        assert_eq!(prepares, 3);
        assert_eq!(h.timers.len(), 1);
    }

    #[test]
    fn non_owner_only_arms_timer() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(1, 3);
        p.propose(0, &mut h);
        assert!(h.sent.is_empty());
        assert_eq!(h.timers.len(), 1);
    }

    #[test]
    fn full_round_trip_decides_proposer_value() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(0, 3);
        p.propose(7, &mut h);
        // Majority promises (self + P2).
        assert!(p
            .on_message(
                0,
                PaxosMsg::Promise {
                    bal: 1,
                    accepted: None
                },
                &mut h
            )
            .is_none());
        assert!(p
            .on_message(
                1,
                PaxosMsg::Promise {
                    bal: 1,
                    accepted: None
                },
                &mut h
            )
            .is_none());
        assert!(h
            .sent
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accept { bal: 1, val: 7 })));
        // Majority accepts -> decision.
        assert!(p
            .on_message(0, PaxosMsg::Accepted { bal: 1, val: 7 }, &mut h)
            .is_none());
        let dec = p.on_message(1, PaxosMsg::Accepted { bal: 1, val: 7 }, &mut h);
        assert_eq!(dec, Some(7));
        assert_eq!(p.decision(), Some(7));
        // Decision is announced to the others.
        let decides = h
            .sent
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::Decide { val: 7 }))
            .count();
        assert_eq!(decides, 2);
    }

    #[test]
    fn promise_carries_prior_accepts_and_wins() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(0, 3);
        p.propose(0, &mut h);
        // P2 reports it accepted value 1 at an earlier ballot: proposer must
        // adopt 1, not its own 0 (Paxos safety).
        p.on_message(
            1,
            PaxosMsg::Promise {
                bal: 1,
                accepted: None,
            },
            &mut h,
        );
        p.on_message(
            2,
            PaxosMsg::Promise {
                bal: 1,
                accepted: Some((0, 1)),
            },
            &mut h,
        );
        assert!(h
            .sent
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accept { bal: 1, val: 1 })));
    }

    #[test]
    fn acceptor_rejects_stale_ballots() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(2, 3);
        p.on_message(0, PaxosMsg::Prepare { bal: 5 }, &mut h);
        assert!(matches!(
            h.sent.last(),
            Some((0, PaxosMsg::Promise { bal: 5, .. }))
        ));
        let before = h.sent.len();
        // An older prepare gets no promise.
        p.on_message(1, PaxosMsg::Prepare { bal: 3 }, &mut h);
        assert_eq!(h.sent.len(), before);
        // An older accept is ignored too.
        p.on_message(1, PaxosMsg::Accept { bal: 3, val: 0 }, &mut h);
        assert_eq!(h.sent.len(), before);
    }

    #[test]
    fn timeout_rotates_coordinator() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(1, 3);
        p.propose(1, &mut h);
        assert!(h.sent.is_empty());
        // Round 0 (owner P1=id 0) times out; round 1 is ours (id 1).
        let tag = h.timers[0].1;
        p.on_timer(tag, &mut h);
        assert!(h
            .sent
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Prepare { bal: 2 })));
        assert_eq!(h.timers.len(), 2);
    }

    #[test]
    fn decided_acceptor_short_circuits() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(2, 3);
        assert_eq!(
            p.on_message(0, PaxosMsg::Decide { val: 1 }, &mut h),
            Some(1)
        );
        // Second learn returns None (announce-once semantics).
        assert_eq!(p.on_message(1, PaxosMsg::Decide { val: 1 }, &mut h), None);
        p.on_message(1, PaxosMsg::Prepare { bal: 9 }, &mut h);
        assert!(matches!(
            h.sent.last(),
            Some((1, PaxosMsg::Decide { val: 1 }))
        ));
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut h = VecHost::new();
        let mut p = Paxos::new(0, 3);
        p.propose(1, &mut h);
        let tag0 = h.timers[0].1;
        p.on_timer(tag0, &mut h); // round -> 1
        let sends_before = h.sent.len();
        p.on_timer(tag0, &mut h); // stale: round already advanced
        assert_eq!(h.sent.len(), sends_before);
    }
}
