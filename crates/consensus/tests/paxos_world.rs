//! Simulation-level tests of the Paxos module: full executions in
//! `ac_net::World` under crashes, chaos and adversarial delays.

use ac_consensus::{ConsensusHost, CtxHost, Paxos, PaxosMsg};
use ac_net::{Crash, DelayRule, FaultPlan, FixedDelay, GstDelay, RuleDelay, World, WorldConfig};
use ac_sim::{Automaton, Ctx, ProcessId, Time, U};

/// Minimal automaton hosting one Paxos instance.
#[derive(Debug)]
struct PaxosProc {
    inner: Paxos,
    proposal: Option<u64>,
}

impl PaxosProc {
    fn new(me: ProcessId, n: usize, proposal: Option<u64>) -> Self {
        PaxosProc {
            inner: Paxos::new(me, n),
            proposal,
        }
    }
}

impl Automaton for PaxosProc {
    type Msg = PaxosMsg;

    fn on_start(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        if let Some(v) = self.proposal {
            let mut host = CtxHost { ctx, wrap: |m| m };
            self.inner.propose(v, &mut host);
        }
    }
    fn on_message(&mut self, from: ProcessId, msg: PaxosMsg, ctx: &mut Ctx<PaxosMsg>) {
        let mut host = CtxHost { ctx, wrap: |m| m };
        if let Some(d) = self.inner.on_message(from, msg, &mut host) {
            ctx.decide(d);
        }
    }
    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<PaxosMsg>) {
        let mut host = CtxHost { ctx, wrap: |m| m };
        if let Some(d) = self.inner.on_timer(tag, &mut host) {
            ctx.decide(d);
        }
    }
}

fn world(
    proposals: Vec<Option<u64>>,
    faults: FaultPlan,
    delay: Box<dyn ac_net::DelayModel>,
) -> ac_net::Outcome {
    let n = proposals.len();
    let procs: Vec<PaxosProc> = proposals
        .into_iter()
        .enumerate()
        .map(|(me, p)| PaxosProc::new(me, n, p))
        .collect();
    World::new(
        procs,
        delay,
        faults,
        WorldConfig {
            horizon: Time::units(3000),
            trace: false,
        },
    )
    .run()
}

#[test]
fn unanimous_fast_decision() {
    let out = world(
        vec![Some(1); 5],
        FaultPlan::none(5),
        Box::new(FixedDelay::unit()),
    );
    assert_eq!(out.decided_values(), vec![1]);
    assert!(out.decisions.iter().all(|d| d.is_some()));
    // Round-0 coordinator drives two phases + decide: everyone is done
    // within a handful of delays.
    let last = out
        .decisions
        .iter()
        .flatten()
        .map(|&(t, _)| t)
        .max()
        .unwrap();
    assert!(last <= Time::units(6), "slow decision: {last}");
}

#[test]
fn mixed_proposals_decide_a_proposed_value() {
    for votes in [[0, 1, 0], [1, 0, 1], [0, 0, 1]] {
        let out = world(
            votes.iter().map(|&v| Some(v as u64)).collect(),
            FaultPlan::none(3),
            Box::new(FixedDelay::unit()),
        );
        let vals = out.decided_values();
        assert_eq!(vals.len(), 1, "agreement: {vals:?}");
        assert!(
            votes.contains(&(vals[0] as i32)),
            "validity: {vals:?} from {votes:?}"
        );
    }
}

#[test]
fn minority_crashes_do_not_block() {
    // 2 of 5 crash (one is the round-0 coordinator).
    let faults = FaultPlan::none(5)
        .with_crash(0, Crash::at(Time::units(2)))
        .with_crash(3, Crash::initially());
    let out = world(vec![Some(1); 5], faults, Box::new(FixedDelay::unit()));
    for p in [1usize, 2, 4] {
        assert!(out.decisions[p].is_some(), "P{} undecided", p + 1);
    }
    assert_eq!(out.decided_values().len(), 1);
}

#[test]
fn coordinator_crash_mid_announce_keeps_uniform_agreement() {
    // The coordinator reaches majority accepts, announces Decide to one
    // process, then dies. The lucky process decides immediately; a later
    // ballot must choose the same value.
    let faults = FaultPlan::none(5).with_crash(0, Crash::partial(Time::units(4), 1));
    let out = world(vec![Some(7); 5], faults, Box::new(FixedDelay::unit()));
    assert_eq!(out.decided_values(), vec![7]);
    for p in 1..5 {
        assert!(out.decisions[p].is_some(), "P{} undecided", p + 1);
    }
}

#[test]
fn passive_acceptors_enable_lone_proposer() {
    // Only P4 proposes; the others never call propose but still serve as
    // acceptors. Rounds rotate until P4's ballot comes up.
    let out = world(
        vec![None, None, None, Some(9)],
        FaultPlan::none(4),
        Box::new(FixedDelay::unit()),
    );
    assert_eq!(out.decision_of(3), Some(9));
    // Non-proposers learn the decision through the announce.
    for p in 0..3 {
        assert_eq!(out.decision_of(p), Some(9), "P{}", p + 1);
    }
}

#[test]
fn pre_gst_chaos_never_splits_decisions() {
    for seed in 0..25 {
        let out = world(
            vec![Some(seed % 2); 5],
            FaultPlan::none(5),
            Box::new(GstDelay::new(Time::units(20), 6 * U, seed)),
        );
        let vals = out.decided_values();
        assert!(vals.len() <= 1, "seed {seed}: split {vals:?}");
        assert!(
            out.decisions.iter().all(|d| d.is_some()),
            "seed {seed}: not live after GST: {:?}",
            out.decisions
        );
    }
}

#[test]
fn dueling_coordinators_converge() {
    // Delay the round-0 coordinator's accepts so that round 1 preempts it;
    // ballots race but agreement holds and everyone decides.
    let rules = vec![DelayRule::link(0, 1, Time::ZERO, Time::units(40), 9 * U)];
    let out = world(
        vec![Some(0), Some(1), Some(1), Some(1), Some(1)],
        FaultPlan::none(5),
        Box::new(RuleDelay::over_unit(rules)),
    );
    let vals = out.decided_values();
    assert_eq!(vals.len(), 1, "split: {vals:?}");
    assert!(out.decisions.iter().all(|d| d.is_some()));
}

#[test]
fn proposals_after_decision_are_ignored() {
    // P1..P4 decide quickly; P5 proposes very late (simulated by it only
    // joining consensus when it receives the decide — the announce makes
    // this a no-op). Everyone converges on the same value.
    let out = world(
        vec![Some(1), Some(1), Some(1), Some(1), None],
        FaultPlan::none(5),
        Box::new(FixedDelay::unit()),
    );
    assert_eq!(out.decided_values(), vec![1]);
}

/// ConsensusHost is object-safe enough for a buffered mock: double-check
/// the public trait contract compiles for custom hosts outside the crate.
#[test]
fn custom_host_implementations_compile() {
    struct NullHost(Time);
    impl ConsensusHost for NullHost {
        fn send(&mut self, _to: ProcessId, _m: PaxosMsg) {}
        fn set_timer(&mut self, _at: Time, _tag: u32) {}
        fn now(&self) -> Time {
            self.0
        }
    }
    let mut p = Paxos::new(0, 3);
    let mut h = NullHost(Time::ZERO);
    p.propose(1, &mut h);
    assert!(p.proposed());
    assert_eq!(p.decision(), None);
}
