//! The multi-process sweep behind `repro proc`: spawn real `ac-node` /
//! `ac-client` processes over loopback TCP, collect every node's
//! observability export through the cross-process tracing path (echo
//! round trips for clock alignment, `ObsPull`/`ObsDump` control frames,
//! a binary [`ClusterDump`] per run), and fold the results into the
//! schema-v5 bench baseline as `"proc"`-transport attribution entries
//! plus an open-loop saturation curve.
//!
//! The point of this sweep is *fidelity*, not scale: the same protocols
//! the in-process attribution sweep measures, but with each node's
//! flight recorder living in its own process behind its own monotonic
//! clock — so the collected attribution only telescopes if the export
//! encoding, the clock-offset estimation and the cross-process merge all
//! hold up. The acceptance gate compares where the time went against the
//! in-process channel run of the same seed and configuration: both must
//! agree on the dominant stage.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ac_cluster::{ClusterSpec, LatencyHistogram};
use ac_commit::protocols::ProtocolKind;
use ac_obs::{max_uncertainty_nanos, ClusterDump, Stage};
use ac_txn::Workload;

use crate::experiments::{
    detect_knee, SATURATION_BASE_RATE, SATURATION_MAX_OUTSTANDING, SERVICE_GRID, SERVICE_UNIT,
};
use crate::report::{
    attribution_stage_names, AttributionEntry, AttributionStageEntry, BenchBaseline,
    SaturationBaseline, SaturationCurve, SaturationKnee, SaturationStep, SlowTxn, TimelineStep,
};
use crate::{Report, Table};

/// Slowest-transaction timelines kept per attribution (mirrors the
/// in-process sweep's retention).
const SLOWEST_KEPT: usize = 5;

/// Hard deadline for one spawned cluster run (same figure the
/// `proc_smoke` integration test uses).
const RUN_DEADLINE: Duration = Duration::from_secs(120);

/// Options of the `repro proc` sweep.
#[derive(Clone, Debug)]
pub struct ProcOptions {
    /// Shrink the sweep for CI smoke jobs.
    pub quick: bool,
    /// Directory the spec and dump files are written to.
    pub dump_dir: PathBuf,
    /// When set, node 0 of every spawned cluster serves Prometheus text
    /// on this port and the harness scrapes it mid-run (the scrape is a
    /// gated check).
    pub metrics_port: Option<u16>,
}

/// Locate a sibling binary of the running `repro` executable (cargo
/// puts every workspace binary in the same target directory).
fn bin_path(name: &str) -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "repro binary has no parent directory".to_string())?;
    let path = dir.join(name);
    if path.is_file() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found next to repro ({}); build the cluster binaries first \
             (`cargo build --release -p ac-cluster`)",
            name,
            path.display()
        ))
    }
}

/// Reserve `k` distinct loopback ports by binding ephemeral listeners,
/// then releasing them. The window between release and the node's own
/// bind is small and CI-safe (same approach as the proc smoke test).
fn free_ports(k: usize) -> Result<Vec<u16>, String> {
    let listeners: Vec<TcpListener> = (0..k)
        .map(|_| TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind: {e}")))
        .collect::<Result<_, _>>()?;
    listeners
        .iter()
        .map(|l| {
            l.local_addr()
                .map(|a| a.port())
                .map_err(|e| format!("cannot read port: {e}"))
        })
        .collect()
}

/// The cluster spec of one proc attribution cell: the *same* shape,
/// seed and load as the in-process attribution sweep, so the dominant
/// stage is comparable run-for-run.
fn attribution_spec(kind: ProtocolKind, quick: bool, ports: &[u16]) -> ClusterSpec {
    let (n, f) = SERVICE_GRID;
    assert_eq!(ports.len(), n);
    ClusterSpec {
        kind,
        f,
        unit: SERVICE_UNIT,
        keys_per_shard: 32,
        clients: 2,
        txns_per_client: if quick { 8 } else { 15 },
        workload: Workload::Uniform { span: 2 },
        seed: 11,
        arrival_rate: None,
        max_outstanding: None,
        nodes: ports
            .iter()
            .map(|&p| SocketAddr::from(([127, 0, 0, 1], p)))
            .collect(),
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect()
}

struct RunArtifacts {
    dump: ClusterDump,
    /// The mid-run Prometheus scrape body, when one succeeded.
    scrape: Option<String>,
}

/// Spawn the spec'd cluster as real processes, wait for it to finish,
/// and read back the client's `--obs-out` dump. When `metrics_port` is
/// set, node 0 gets `--metrics` and a scraper thread polls the endpoint
/// while the run is live.
fn run_cluster(spec: &ClusterSpec, tag: &str, opts: &ProcOptions) -> Result<RunArtifacts, String> {
    let node_bin = bin_path("ac-node")?;
    let client_bin = bin_path("ac-client")?;
    std::fs::create_dir_all(&opts.dump_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.dump_dir.display()))?;
    let spec_path = opts.dump_dir.join(format!("proc-{tag}.spec"));
    let dump_path = opts.dump_dir.join(format!("proc-{tag}.dump"));
    std::fs::write(&spec_path, spec.render())
        .map_err(|e| format!("cannot write {}: {e}", spec_path.display()))?;

    let mut nodes: Vec<Child> = Vec::new();
    let spawn_err = |what: &str, e: std::io::Error| format!("cannot spawn {what}: {e}");
    for id in 0..spec.n() {
        let mut cmd = Command::new(&node_bin);
        cmd.arg("--spec")
            .arg(&spec_path)
            .arg("--id")
            .arg(id.to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if id == 0 {
            if let Some(port) = opts.metrics_port {
                cmd.arg("--metrics").arg(port.to_string());
            }
        }
        nodes.push(cmd.spawn().map_err(|e| spawn_err("ac-node", e))?);
    }
    let client = Command::new(&client_bin)
        .arg("--spec")
        .arg(&spec_path)
        .arg("--obs-out")
        .arg(&dump_path)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .map_err(|e| spawn_err("ac-client", e))?;

    // Scrape node 0's metrics endpoint while the run is in flight.
    let scraper = opts.metrics_port.map(|port| {
        let addr = spec.metrics_addr(0, port);
        std::thread::spawn(move || scrape_prometheus(addr, Duration::from_secs(10)))
    });

    let mut procs: Vec<(&str, Child)> = vec![("ac-client", client)];
    for (i, n) in nodes.into_iter().enumerate() {
        procs.push(if i == 0 {
            ("ac-node 0", n)
        } else {
            ("ac-node", n)
        });
    }
    let deadline = Instant::now() + RUN_DEADLINE;
    let mut failures = Vec::new();
    for (what, mut child) in procs {
        loop {
            match child.try_wait() {
                Ok(Some(status)) => {
                    if !status.success() {
                        failures.push(format!("{what} exited with {status}"));
                    }
                    break;
                }
                Ok(None) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Ok(None) => {
                    let _ = child.kill();
                    let _ = child.wait();
                    failures.push(format!("{what} missed the {RUN_DEADLINE:?} deadline"));
                    break;
                }
                Err(e) => {
                    failures.push(format!("cannot wait for {what}: {e}"));
                    break;
                }
            }
        }
    }
    let scrape = scraper.and_then(|h| h.join().ok()).flatten();
    if !failures.is_empty() {
        return Err(failures.join("; "));
    }
    let bytes = std::fs::read(&dump_path)
        .map_err(|e| format!("cannot read {}: {e}", dump_path.display()))?;
    let dump = ClusterDump::from_bytes(&bytes)
        .map_err(|e| format!("{} is not a valid cluster dump: {e:?}", dump_path.display()))?;
    Ok(RunArtifacts { dump, scrape })
}

/// Poll a Prometheus endpoint until a non-empty exposition arrives or
/// the deadline passes. Plain HTTP/1.0 over a raw socket — the endpoint
/// answers any request with the full exposition.
fn scrape_prometheus(addr: SocketAddr, deadline: Duration) -> Option<String> {
    let until = Instant::now() + deadline;
    while Instant::now() < until {
        if let Ok(mut s) = TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            if s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").is_ok() {
                let mut text = String::new();
                if s.read_to_string(&mut text).is_ok() {
                    if let Some((_, body)) = text.split_once("\r\n\r\n") {
                        if body.contains("ac_") {
                            return Some(body.to_string());
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    None
}

/// Percentile scaffold over the dump's client-side transaction record.
fn sojourn_hist(dump: &ClusterDump) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for t in &dump.txns {
        h.record(t.decided_nanos.saturating_sub(t.submitted_nanos));
    }
    h
}

/// Meter-derived WAL force count: prepare forces plus decide journal
/// appends across every node export (the dump carries no WAL subsystem
/// counters of its own).
fn wal_forces_of(dump: &ClusterDump) -> usize {
    dump.exports
        .iter()
        .flat_map(|e| {
            [Stage::WalForce as usize, Stage::WalJournal as usize]
                .into_iter()
                .filter_map(|i| e.meters.get(i).map(|&(count, _)| count as usize))
        })
        .sum()
}

/// Node-to-node frames sent across every node export — the wire-message
/// figure of a real-socket run (client control traffic is counted by the
/// client's transport, not here).
fn wire_frames_of(dump: &ClusterDump) -> u64 {
    dump.exports.iter().map(|e| e.net.frames_out()).sum()
}

/// Goodput over the trimmed steady-state window of the dump's decided
/// transactions: first/last 10 % of the observed span excluded, like the
/// in-process saturation sweep.
fn trimmed_goodput_tps(dump: &ClusterDump) -> f64 {
    let first = dump.txns.iter().map(|t| t.submitted_nanos).min();
    let last = dump.txns.iter().map(|t| t.decided_nanos).max();
    let (Some(first), Some(last)) = (first, last) else {
        return 0.0;
    };
    let span = last.saturating_sub(first);
    if span == 0 {
        return 0.0;
    }
    let lo = first + span / 10;
    let hi = last - span / 10;
    let committed_in_window = dump
        .txns
        .iter()
        .filter(|t| t.committed && t.decided_nanos >= lo && t.decided_nanos <= hi)
        .count();
    committed_in_window as f64 / ((hi - lo) as f64 / 1e9)
}

fn stage_entries(a: &ac_obs::Attribution) -> Vec<AttributionStageEntry> {
    attribution_stage_names()
        .iter()
        .enumerate()
        .map(|(i, s)| AttributionStageEntry {
            stage: s.to_string(),
            p50_micros: a.stages[i].p50() as f64 / 1e3,
            p99_micros: a.stages[i].p99() as f64 / 1e3,
            share_pct: a.share_pct(i),
        })
        .collect()
}

fn dominant_stage(stages: &[AttributionStageEntry]) -> String {
    stages
        .iter()
        .max_by(|x, y| x.share_pct.total_cmp(&y.share_pct))
        .map(|s| s.stage.clone())
        .unwrap_or_default()
}

/// **Proc baseline** — the multi-process sweep (`repro proc`): every
/// Table-5 protocol served by real `ac-node`/`ac-client` processes over
/// loopback TCP, attribution computed from the collected per-process
/// exports (clock-aligned), plus an open-loop 2PC saturation curve.
/// Emitted on top of everything [`crate::experiments::load_baseline`]
/// carries, as a schema-v5 baseline whose attribution section has
/// `"proc"` entries riding along the required channel × tcp grid.
pub fn proc_baseline(
    quick: bool,
    jobs: usize,
    opts: &ProcOptions,
) -> Result<(Report, BenchBaseline), String> {
    // Fail fast with a buildable message before burning time on the
    // in-process sections.
    bin_path("ac-node")?;
    bin_path("ac-client")?;

    let (mut r, mut baseline) = crate::experiments::load_baseline(quick, jobs);
    r.id = "proc".into();
    let (n, f) = SERVICE_GRID;

    let mut at = Table::new(
        format!(
            "Multi-process latency attribution at n={n}, f={f}, unit={}ms \
             (per-process exports, clock-aligned; vs in-process channel run)",
            SERVICE_UNIT.as_millis()
        ),
        &[
            "protocol",
            "cover%",
            "channel%",
            "lock%",
            "wal%",
            "protocol%",
            "transport%",
            "Σ%",
            "e2e p50 ms",
            "clock ±µs",
            "dominant",
            "ok",
        ],
    );
    let mut scrape: Option<String> = None;
    let mut proc_entries = Vec::new();
    for kind in ProtocolKind::table5() {
        let ports = free_ports(n)?;
        let spec = attribution_spec(kind, quick, &ports);
        let tag = sanitize(kind.name());
        // Scrape once — keep trying on later clusters until one lands.
        let mut run_opts = opts.clone();
        if scrape.is_some() {
            run_opts.metrics_port = None;
        }
        let art = run_cluster(&spec, &tag, &run_opts)?;
        scrape = scrape.or(art.scrape);
        let dump = art.dump;
        let a = dump.attribution(SLOWEST_KEPT);
        let align_us = max_uncertainty_nanos(&dump.alignments) as f64 / 1e3;
        let stages = stage_entries(&a);
        let dominant = dominant_stage(&stages);
        // The cross-run agreement gate: the in-process channel entry of
        // the same protocol/seed/config must blame the same stage. The
        // `channel` stage (client submit -> node dispatch) is the one
        // seam the transport swap itself replaces — over real sockets
        // it carries a fixed per-txn cost that in-process channels
        // don't, so for the timer-free sub-millisecond protocols it can
        // legitimately outgrow everything else in the proc run while
        // the decomposition stays exact. When the overall dominants
        // differ, agreement therefore falls back to the dominant stage
        // *with `channel` set aside*: where does the time go once the
        // transaction has reached the cluster. The timer-driven
        // protocols dominate `protocol` outright in both runs, so the
        // fallback never weakens the headline claim.
        let channel_entry_stages = baseline
            .attribution
            .as_ref()
            .and_then(|attr| {
                attr.entries
                    .iter()
                    .find(|e| e.protocol == kind.name() && e.transport == "channel")
            })
            .map(|e| e.stages.clone())
            .unwrap_or_default();
        let channel_dominant = dominant_stage(&channel_entry_stages);
        let sans_dispatch = |entries: &[AttributionStageEntry]| {
            let kept: Vec<AttributionStageEntry> = entries
                .iter()
                .filter(|s| s.stage != "channel")
                .cloned()
                .collect();
            dominant_stage(&kept)
        };
        let dominant_agrees = dominant == channel_dominant
            || sans_dispatch(&stages) == sans_dispatch(&channel_entry_stages);
        let ok = dump.exports.len() == n
            && dump.alignments.len() == n
            && dump.stats.stalled == 0
            && a.covered > 0
            && (a.share_sum_pct() - 100.0).abs() <= 5.0
            && dominant_agrees;
        let verdict = r.compare(ok).to_string();
        let mut row = vec![kind.name().to_string(), format!("{:.0}%", a.coverage_pct())];
        row.extend((0..5).map(|i| format!("{:.1}", a.share_pct(i))));
        row.push(format!("{:.1}", a.share_sum_pct()));
        row.push(format!("{:.2}", a.e2e.p50() as f64 / 1e6));
        row.push(format!("{align_us:.0}"));
        row.push(dominant.clone());
        row.push(verdict);
        at.row(row);
        proc_entries.push(AttributionEntry {
            protocol: kind.name().into(),
            transport: "proc".into(),
            txns: a.total,
            coverage_pct: a.coverage_pct(),
            share_sum_pct: a.share_sum_pct(),
            e2e_p50_micros: a.e2e.p50() as f64 / 1e3,
            e2e_p999_micros: a.e2e.p999() as f64 / 1e3,
            dropped_events: a.dropped_events,
            alignment_max_uncertainty_micros: Some(align_us),
            stages,
            slowest: a
                .slowest
                .iter()
                .map(|tl| SlowTxn {
                    txn: tl.txn,
                    e2e_micros: tl.e2e_nanos() as f64 / 1e3,
                    steps: tl
                        .steps()
                        .into_iter()
                        .map(|(at_nanos, actor, label)| TimelineStep {
                            at_micros: at_nanos as f64 / 1e3,
                            actor,
                            label,
                        })
                        .collect(),
                })
                .collect(),
        });
    }
    r.table(at);
    r.note(
        "each row is a real 4-process cluster: every node's flight \
         recorder lives behind its own monotonic clock, exports travel as \
         ObsDump control frames, and the collector re-stamps them through \
         the per-node min-RTT clock alignment before merging. `clock ±µs` \
         is the worst per-node alignment uncertainty; stage telescoping \
         survives the merge exactly because alignment shifts whole \
         exports, never individual events. `ok` additionally requires the \
         in-process channel run of the same seed/config to agree on the \
         dominant stage — outright, or with the `channel` stage set \
         aside (client dispatch is the seam the transport swap itself \
         replaces, so for the timer-free fast-path protocols it \
         legitimately dominates over real sockets; the runs must still \
         agree on where the time goes once the transaction reaches the \
         cluster).",
    );
    if let Some(attr) = baseline.attribution.as_mut() {
        attr.entries.extend(proc_entries);
    }

    // The open-loop face: a 2PC saturation curve over real processes
    // (arrival_rate/max_outstanding ride in the spec file).
    let mults: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let clients = 8usize;
    let duration = Duration::from_millis(if quick { 400 } else { 1000 });
    let mut st = Table::new(
        format!(
            "Multi-process open-loop saturation (2PC, n={n}, f={f}, \
             unit={}ms, window={})",
            SERVICE_UNIT.as_millis(),
            SATURATION_MAX_OUTSTANDING
        ),
        &[
            "x",
            "offered t/s",
            "goodput t/s",
            "shed",
            "commit",
            "p50 ms",
            "p99 ms",
            "frames/txn",
            "ok",
        ],
    );
    let mut steps = Vec::new();
    let mut knee_inputs: Vec<(f64, f64)> = Vec::new();
    let mut attributions = Vec::new();
    for (i, &mult) in mults.iter().enumerate() {
        let rate = SATURATION_BASE_RATE * mult as f64;
        let ports = free_ports(n)?;
        let mut spec = attribution_spec(ProtocolKind::TwoPc, quick, &ports);
        spec.clients = clients;
        spec.seed = 31;
        spec.keys_per_shard = 64;
        spec.txns_per_client = ((rate * duration.as_secs_f64()).ceil() as usize).max(4);
        spec.arrival_rate = Some(rate);
        spec.max_outstanding = Some(SATURATION_MAX_OUTSTANDING);
        let mut run_opts = opts.clone();
        if scrape.is_some() {
            run_opts.metrics_port = None;
        }
        let art = run_cluster(&spec, &format!("sat-x{mult}"), &run_opts)?;
        scrape = scrape.or(art.scrape);
        let dump = art.dump;
        let a = dump.attribution(SLOWEST_KEPT);
        let hist = sojourn_hist(&dump);
        let goodput = trimmed_goodput_tps(&dump);
        let txns = (dump.stats.committed + dump.stats.aborted) as usize;
        let wal_forces = wal_forces_of(&dump);
        let us = |v: u64| v as f64 / 1e3;
        let ok = dump.stats.stalled == 0 && a.covered > 0;
        let verdict = r.compare(ok).to_string();
        st.row(vec![
            format!("x{mult}"),
            format!("{:.0}", rate * clients as f64),
            format!("{goodput:.0}"),
            dump.stats.shed.to_string(),
            dump.stats.committed.to_string(),
            format!("{:.2}", hist.p50() as f64 / 1e6),
            format!("{:.2}", hist.p99() as f64 / 1e6),
            format!("{:.1}", wire_frames_of(&dump) as f64 / txns.max(1) as f64),
            verdict,
        ]);
        steps.push(SaturationStep {
            step: i,
            arrival_rate_per_client: rate,
            offered_tps: rate * clients as f64,
            offered: dump.stats.offered as usize,
            shed: dump.stats.shed as usize,
            committed: dump.stats.committed as usize,
            aborted: dump.stats.aborted as usize,
            stalled: dump.stats.stalled as usize,
            goodput_tps: goodput,
            p50_sojourn_micros: us(hist.p50()),
            p99_sojourn_micros: us(hist.p99()),
            p999_sojourn_micros: us(hist.p999()),
            wal_forces,
            forces_per_txn: wal_forces as f64 / txns.max(1) as f64,
            wire_per_txn: wire_frames_of(&dump) as f64 / txns.max(1) as f64,
            safety_violations: 0,
        });
        knee_inputs.push((goodput, us(hist.p99())));
        attributions.push(a);
    }
    let (ki, detected) = detect_knee(&knee_inputs);
    let a = &attributions[ki];
    let stage_shares = stage_entries(a);
    let knee_ok = a.covered > 0 && (a.share_sum_pct() - 100.0).abs() <= 5.0;
    let verdict = r.compare(knee_ok).to_string();
    r.note(format!(
        "saturation knee at x{} ({}): offered {:.0} t/s, goodput {:.0} t/s, \
         dominant stage {} [{}]",
        mults[ki],
        if detected { "detected" } else { "last step" },
        steps[ki].offered_tps,
        steps[ki].goodput_tps,
        dominant_stage(&stage_shares),
        verdict,
    ));
    let knee = SaturationKnee {
        step: ki,
        detected,
        offered_tps: steps[ki].offered_tps,
        goodput_tps: knee_inputs[ki].0,
        p99_sojourn_micros: knee_inputs[ki].1,
        stage_shares,
        share_sum_pct: a.share_sum_pct(),
    };
    r.table(st);
    r.note(
        "open-loop over real processes: the spec file carries \
         arrival_rate/max_outstanding, the clients shed at a full window, \
         and every figure here is recomputed from the collected dump — \
         sojourn percentiles from the client-side transaction record, \
         goodput over the trimmed steady-state window, frames/txn from \
         the per-peer transport counters in each node's export.",
    );
    baseline.schema_version = 5;
    baseline.saturation = Some(SaturationBaseline {
        f,
        unit_micros: SERVICE_UNIT.as_micros() as u64,
        curves: vec![SaturationCurve {
            protocol: ProtocolKind::TwoPc.name().into(),
            transport: "proc".into(),
            n,
            clients,
            max_outstanding: SATURATION_MAX_OUTSTANDING,
            steps,
            knee,
        }],
    });

    // The mid-run scrape is part of the acceptance surface: a live
    // multi-process cluster must expose both stage meters and transport
    // counters while serving.
    if opts.metrics_port.is_some() {
        let (got_stage, got_net) = scrape
            .as_ref()
            .map(|b| {
                (
                    b.contains("ac_stage_count"),
                    b.contains("ac_net_bytes_out_total"),
                )
            })
            .unwrap_or((false, false));
        let verdict = r.compare(got_stage && got_net).to_string();
        r.note(format!(
            "mid-run Prometheus scrape of node 0: stage meters {}, transport \
             counters {} [{verdict}]",
            if got_stage { "present" } else { "MISSING" },
            if got_net { "present" } else { "MISSING" },
        ));
        if let Some(body) = &scrape {
            let sample: Vec<&str> = body
                .lines()
                .filter(|l| l.starts_with("ac_"))
                .take(12)
                .collect();
            r.note(format!("scrape sample:\n{}", sample.join("\n")));
        }
    }
    Ok((r, baseline))
}
