//! # ac-harness — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Experiment | Paper artifact | Entry point |
//! |---|---|---|
//! | `table1` | Table 1 — 27-cell complexity taxonomy + matching protocols | [`experiments::table1`] |
//! | `table2` | Table 2 — delay-optimal protocols | [`experiments::table2`] |
//! | `table3` | Table 3 — message-optimal protocols | [`experiments::table3`] |
//! | `table4` | Table 4 — indulgent AC vs synchronous NBAC | [`experiments::table4`] |
//! | `table5` | Table 5 — INBAC vs 2PC vs PaxosCommit (sweep) | [`experiments::table5`] |
//! | `fig1`   | Figure 1 — INBAC state transitions at 2U | [`experiments::fig1`] |
//! | `ablations` | §5.2 fast abort, consensus engagement, ack bundling | [`experiments::ablations`] |
//! | `exhaustive` | (cross-cutting) parallel small-model soundness sweep | [`experiments::exhaustive`] |
//! | `bench` | (cross-cutting) machine-readable bench baseline | [`experiments::bench_baseline`] |
//!
//! Each experiment returns a [`report::Report`] that renders as aligned
//! text (what `repro` prints and EXPERIMENTS.md records) and serializes to
//! JSON for downstream tooling. Explorer-backed experiments take a `jobs`
//! worker-thread count (the `repro` binary's `--jobs` flag); `bench`
//! additionally emits the [`report::BenchBaseline`] snapshot written to
//! `BENCH_baseline.json` and validated by `repro bench-check` in CI.

#![deny(missing_docs)]

pub mod experiments;
pub mod perf;
pub mod procrun;
pub mod report;

pub use report::{Report, Table};
