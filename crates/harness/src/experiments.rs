//! The experiments: one function per paper table/figure, plus the
//! cross-cutting entries that are not a single paper artifact:
//! [`exhaustive`] (the parallel small-model soundness sweep) and
//! [`bench_baseline`] (the machine-readable performance seed point).

use std::time::Instant;

use ac_commit::explorer::{explore_jobs, ExplorerConfig};
use ac_commit::protocols::{InbacUnbundledAck, ProtocolKind};
use ac_commit::taxonomy::{Cell, PropSet};
use ac_commit::{check, Scenario};
use ac_net::DelayRule;
use ac_sim::{Time, TraceKind, U};

use crate::report::{BenchBaseline, ExplorerBaseline, ProtocolBaseline, Report, Table};

/// Symbolic message bound of a Table-1 cell (mirrors
/// `Cell::bounds`, in formula form).
fn msg_symbol(cell: Cell) -> &'static str {
    if cell.cf == PropSet::AVT && cell.nf.has_agreement() {
        "2n-2+f"
    } else if cell.nf.has_validity() {
        "2n-2"
    } else if cell.cf.has_validity() {
        "n-1+f"
    } else {
        "0"
    }
}

fn delay_symbol(cell: Cell) -> &'static str {
    if cell.cf == PropSet::AVT && cell.nf.has_agreement() {
        "2"
    } else {
        "1"
    }
}

/// Measured `(delays, messages)` of a nice execution.
fn measure(kind: ProtocolKind, n: usize, f: usize) -> (u64, u64) {
    let out = kind.run(&Scenario::nice(n, f));
    let m = out.metrics();
    let d = m.delays.unwrap_or_else(|| {
        panic!(
            "{}: nice execution did not complete (n={n}, f={f})",
            kind.name()
        )
    });
    (d, m.messages as u64)
}

/// The seven locally-maximal cells and their matching protocols, as listed
/// in Tables 2 and 3 (0NBAC and avNBAC appear on both axes).
fn matching_protocols() -> Vec<(ProtocolKind, &'static str)> {
    vec![
        (ProtocolKind::AvNbacDelayOpt, "delay"),
        (ProtocolKind::Nbac0, "both"),
        (ProtocolKind::Nbac1, "delay"),
        (ProtocolKind::Inbac, "delay"),
        (ProtocolKind::ANbac, "message"),
        (ProtocolKind::ChainNbac, "message"),
        (ProtocolKind::AvNbacMsgOpt, "message"),
        (ProtocolKind::Nbac2n2, "message"),
        (ProtocolKind::Nbac2n2f, "message"),
    ]
}

/// **Table 1** — the 27-cell complexity taxonomy, with each locally-maximal
/// cell's matching protocol measured against its bound.
pub fn table1(n: usize, f: usize) -> Report {
    let mut r = Report::new("table1");

    // The grid exactly as laid out in the paper: rows = NF, columns = CF.
    let mut grid = Table::new(
        "Table 1: tight d/m bounds per robustness cell (rows: NF guarantees, cols: CF guarantees)",
        &["NF\\CF", "∅", "A", "V", "T", "AV", "AT", "VT", "AVT"],
    );
    for nf in PropSet::all() {
        let mut row = vec![nf.to_string()];
        for cf in PropSet::all() {
            let cell = Cell::new(cf, nf);
            if cell.is_canonical() {
                row.push(format!("{}/{}", delay_symbol(cell), msg_symbol(cell)));
            } else {
                row.push(String::new());
            }
        }
        grid.row(row);
    }
    r.table(grid);

    // Instantiated bounds and trade-off classification.
    let mut inst = Table::new(
        format!(
            "Table 1 instantiated at n={n}, f={f} (+ Theorem 5's 2fn for delay-optimal protocols)"
        ),
        &["cell", "d", "m", "m@d-opt", "trade-off?"],
    );
    let mut tradeoffs = 0;
    for cell in Cell::all() {
        let b = cell.bounds(n, f);
        let t = cell.has_tradeoff(n, f);
        tradeoffs += t as usize;
        inst.row(vec![
            format!("{cell:?}"),
            b.delays.to_string(),
            b.messages.to_string(),
            b.messages_at_optimal_delay.to_string(),
            if t { "yes" } else { "no" }.into(),
        ]);
    }
    r.table(inst);
    r.note(format!(
        "{tradeoffs}/27 cells cannot achieve both optima at once (paper: 18)"
    ));
    let _ = r.compare(tradeoffs == 18);

    // Matching protocols vs their bounds.
    let mut verify = Table::new(
        format!("matching protocols, nice executions at n={n}, f={f}"),
        &[
            "protocol",
            "cell",
            "optimal in",
            "bound",
            "measured",
            "match",
        ],
    );
    for (kind, axis) in matching_protocols() {
        let cell = kind.cell();
        let b = cell.bounds(n, f);
        let (d, m) = measure(kind, n, f);
        let (bound_s, meas_s, ok) = match axis {
            "delay" => {
                // Delay-optimal protocols also meet the message optimum
                // *given* that delay (Theorem 5 for the 2-delay group).
                let ok = d == b.delays && m == b.messages_at_optimal_delay;
                (
                    format!("d={}, m@d={}", b.delays, b.messages_at_optimal_delay),
                    format!("d={d}, m={m}"),
                    ok,
                )
            }
            "message" => {
                let ok = m == b.messages;
                (format!("m={}", b.messages), format!("d={d}, m={m}"), ok)
            }
            _ => {
                let ok = d == b.delays && m == b.messages;
                (
                    format!("d={}, m={}", b.delays, b.messages),
                    format!("d={d}, m={m}"),
                    ok,
                )
            }
        };
        let verdict = r.compare(ok).to_string();
        verify.row(vec![
            kind.name().into(),
            format!("{cell:?}"),
            axis.into(),
            bound_s,
            meas_s,
            verdict,
        ]);
    }
    r.table(verify);
    r
}

/// **Table 2** — delay-optimal protocols.
pub fn table2() -> Report {
    let mut r = Report::new("table2");
    let mut t = Table::new(
        "Table 2: delay-optimal protocols (bound / measured delays in nice executions)",
        &[
            "cell",
            "protocol",
            "n",
            "f",
            "bound d",
            "measured d",
            "match",
        ],
    );
    let protos = [
        ProtocolKind::AvNbacDelayOpt,
        ProtocolKind::Nbac0,
        ProtocolKind::Nbac1,
        ProtocolKind::Inbac,
    ];
    for kind in protos {
        for (n, f) in [(3, 1), (5, 2), (7, 3), (8, 7)] {
            let bound = kind.cell().bounds(n, f).delays;
            let (d, _) = measure(kind, n, f);
            let verdict = r.compare(d == bound).to_string();
            t.row(vec![
                format!("{:?}", kind.cell()),
                kind.name().into(),
                n.to_string(),
                f.to_string(),
                bound.to_string(),
                d.to_string(),
                verdict,
            ]);
        }
    }
    r.table(t);
    r
}

/// **Table 3** — message-optimal protocols.
pub fn table3() -> Report {
    let mut r = Report::new("table3");
    let mut t = Table::new(
        "Table 3: message-optimal protocols (bound / measured messages in nice executions)",
        &[
            "cell",
            "protocol",
            "n",
            "f",
            "bound m",
            "measured m",
            "match",
        ],
    );
    let protos = [
        ProtocolKind::Nbac0,
        ProtocolKind::ANbac,
        ProtocolKind::ChainNbac,
        ProtocolKind::AvNbacMsgOpt,
        ProtocolKind::Nbac2n2,
        ProtocolKind::Nbac2n2f,
    ];
    for kind in protos {
        for (n, f) in [(3, 1), (5, 2), (7, 3), (8, 7)] {
            let bound = kind.cell().bounds(n, f).messages;
            let (_, m) = measure(kind, n, f);
            let verdict = r.compare(m == bound).to_string();
            t.row(vec![
                format!("{:?}", kind.cell()),
                kind.name().into(),
                n.to_string(),
                f.to_string(),
                bound.to_string(),
                m.to_string(),
                verdict,
            ]);
        }
    }
    r.table(t);
    r
}

/// **Table 4** — complexity of indulgent atomic commit and synchronous NBAC
/// with `f` crashes.
pub fn table4(n: usize, f: usize) -> Report {
    let mut r = Report::new("table4");
    let mut t = Table::new(
        format!("Table 4 at n={n}, f={f}: indulgent atomic commit vs synchronous NBAC"),
        &["problem", "metric", "paper", "measured (protocol)", "match"],
    );

    let (d_inbac, m_inbac) = measure(ProtocolKind::Inbac, n, f);
    let verdict = r.compare(d_inbac == 2).to_string();
    t.row(vec![
        "indulgent AC".into(),
        "#delays".into(),
        "2".into(),
        format!("{d_inbac} (INBAC)"),
        verdict,
    ]);
    // The 2n−2+f messages bound is met by (2n−2+f)NBAC; INBAC trades
    // messages (2fn) for optimal delay.
    let (_, m_2n2f) = measure(ProtocolKind::Nbac2n2f, n, f);
    let bound = (2 * n - 2 + f) as u64;
    let verdict = r.compare(m_2n2f == bound).to_string();
    t.row(vec![
        "indulgent AC".into(),
        "#messages".into(),
        format!("2n-2+f = {bound} (f>=2)"),
        format!("{m_2n2f} ((2n-2+f)NBAC)"),
        verdict,
    ]);
    let verdict = r.compare(m_inbac == (2 * f * n) as u64).to_string();
    t.row(vec![
        "indulgent AC".into(),
        "#messages @ 2 delays".into(),
        format!("2fn = {}", 2 * f * n),
        format!("{m_inbac} (INBAC)"),
        verdict,
    ]);

    let (d_1nbac, _) = measure(ProtocolKind::Nbac1, n, f);
    let verdict = r.compare(d_1nbac == 1).to_string();
    t.row(vec![
        "sync NBAC".into(),
        "#delays".into(),
        "1".into(),
        format!("{d_1nbac} (1NBAC)"),
        verdict,
    ]);
    let (_, m_chain) = measure(ProtocolKind::ChainNbac, n, f);
    let bound = (n - 1 + f) as u64;
    let verdict = r.compare(m_chain == bound).to_string();
    t.row(vec![
        "sync NBAC".into(),
        "#messages".into(),
        format!("n-1+f = {bound}"),
        format!("{m_chain} ((n-1+f)NBAC)"),
        verdict,
    ]);
    // Dwork–Skeen's classic 2n−2 is the f = n−1 specialization.
    let (_, m_ds) = measure(ProtocolKind::ChainNbac, n, n - 1);
    let verdict = r.compare(m_ds == (2 * n - 2) as u64).to_string();
    t.row(vec![
        "sync NBAC (f=n-1)".into(),
        "#messages".into(),
        format!("2n-2 = {} [Dwork-Skeen]", 2 * n - 2),
        format!("{m_ds} ((n-1+f)NBAC)"),
        verdict,
    ]);
    r.table(t);
    r
}

/// **Table 5** — the protocol comparison sweep.
pub fn table5(ns: &[usize], fs: &[usize]) -> Report {
    let mut r = Report::new("table5");
    let protos = ProtocolKind::table5();
    let mut t = Table::new(
        "Table 5: measured nice-execution complexity (d = delays, m = messages)",
        &[
            "n",
            "f",
            "protocol",
            "formula (d, m)",
            "measured (d, m)",
            "match",
        ],
    );
    for &n in ns {
        for &f in fs {
            if f >= n {
                continue;
            }
            for kind in protos {
                let (fd, fm) = kind.nice_complexity_formula(n as u64, f as u64);
                let (d, m) = measure(kind, n, f);
                let verdict = r.compare((d, m) == (fd, fm)).to_string();
                t.row(vec![
                    n.to_string(),
                    f.to_string(),
                    kind.name().into(),
                    format!("({fd}, {fm})"),
                    format!("({d}, {m})"),
                    verdict,
                ]);
            }
        }
    }
    r.table(t);
    r.note(
        "(n-1+f)NBAC delays: the paper's Table 5 reports 2f+n-1 under its \
         spontaneous-start normalization; end-to-end from propose the protocol \
         takes n+2f delays (chain n-1+f plus nooping f+1). 3PC (not in Table 5) \
         measures 4 delays / 4n-4 messages.",
    );
    // Crossover analysis the paper highlights in §1.3 / §6.2.
    if let (Some(&n), true) = (ns.iter().find(|&&n| n >= 3), fs.contains(&1)) {
        let (_, m_inbac) = measure(ProtocolKind::Inbac, n, 1);
        let (_, m_2pc) = measure(ProtocolKind::TwoPc, n, 1);
        let ok = m_inbac == 2 * n as u64 && m_2pc == 2 * n as u64 - 2;
        let _ = r.compare(ok);
        r.note(format!(
            "f=1, n={n}: INBAC uses {m_inbac} (=2n) messages vs 2PC's {m_2pc} (=2n-2) \
             while also being non-blocking — the paper's \"almost as efficient as 2PC\"."
        ));
    }
    for &n in ns {
        for &f in fs.iter().filter(|&&f| f >= 2 && f < n && n >= 3) {
            let (d_pc, m_pc) = measure(ProtocolKind::PaxosCommit, n, f);
            let (d_in, m_in) = measure(ProtocolKind::Inbac, n, f);
            let ok = m_pc < m_in && d_in < d_pc;
            let _ = r.compare(ok);
            r.note(format!(
                "f={f}, n={n}: PaxosCommit wins messages ({m_pc} < {m_in}) while INBAC \
                 wins delays ({d_in} < {d_pc}) — the time/message trade-off of §6.2."
            ));
        }
    }
    r
}

/// **Figure 1** — drive INBAC through each branch of its state transition
/// at time 2U and report the branch taken (observed via protocol traces).
pub fn fig1() -> Report {
    let mut r = Report::new("fig1");
    let mut t = Table::new(
        "Figure 1: INBAC state transition at 2U — branch per scenario",
        &["scenario", "watched", "branch observed", "decision", "NBAC"],
    );

    struct Case {
        name: &'static str,
        scenario: Scenario,
        watched: usize,
        expect: &'static str,
    }
    let n = 4;
    let cases = vec![
        Case {
            name: "nice execution",
            scenario: Scenario::nice(n, 2).traced(),
            watched: 3,
            expect: "decide AND",
        },
        Case {
            name: "failure-free abort (P2 votes 0)",
            scenario: Scenario::nice(n, 2).vote_no(1).traced(),
            watched: 3,
            expect: "decide AND",
        },
        Case {
            name: "one ack delayed -> cons-propose AND",
            // f=2: P4 misses P1's ack but has P2's complete one.
            scenario: Scenario::nice(n, 2).traced().rule(DelayRule::link(
                0,
                3,
                Time::units(1),
                Time::units(2),
                6 * U,
            )),
            watched: 3,
            expect: "cons-propose 1",
        },
        Case {
            name: "vote missing in acks -> cons-propose 0",
            // Delay P4's vote to both primaries: their acks are incomplete,
            // so P3 sees acks but not all votes.
            scenario: Scenario::nice(n, 2)
                .traced()
                .rule(DelayRule::link(3, 0, Time::ZERO, Time::units(1), 6 * U))
                .rule(DelayRule::link(3, 1, Time::ZERO, Time::units(1), 6 * U)),
            watched: 2,
            expect: "cons-propose 0",
        },
        Case {
            name: "no ack at all -> HELP",
            // f=1: the only primary's ack to P4 is delayed.
            scenario: Scenario::nice(n, 1).traced().rule(DelayRule::link(
                0,
                3,
                Time::units(1),
                Time::units(2),
                6 * U,
            )),
            watched: 3,
            expect: "HELP",
        },
    ];

    for case in cases {
        let out = case.scenario.run::<ac_commit::protocols::Inbac>();
        let notes: Vec<&str> = out
            .trace
            .iter()
            .filter_map(|e| match &e.kind {
                TraceKind::Note { at, text } if *at == case.watched => Some(text.as_str()),
                _ => None,
            })
            .collect();
        let branch = if notes.iter().any(|s| s.contains("decide")) {
            "decide AND"
        } else if notes.iter().any(|s| s.contains("HELP")) {
            "HELP"
        } else if notes.iter().any(|s| s.contains("cons-propose 1")) {
            "cons-propose 1"
        } else if notes.iter().any(|s| s.contains("cons-propose 0")) {
            "cons-propose 0"
        } else {
            "?"
        };
        let decision = out
            .decision_of(case.watched)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        let nbac_ok = check(&out, &case.scenario.votes, ProtocolKind::Inbac.cell()).ok();
        let _ = r.compare(branch == case.expect && nbac_ok);
        t.row(vec![
            case.name.into(),
            format!("P{}", case.watched + 1),
            branch.into(),
            decision,
            if nbac_ok { "ok" } else { "VIOLATED" }.into(),
        ]);
    }
    r.table(t);
    r.note("branches correspond to Figure 1's four exits after 2U: decide AND(n votes); cons-propose AND; cons-propose 0; ask for more acks (HELP).");
    r
}

/// **Ablations** — design choices the paper calls out.
pub fn ablations() -> Report {
    let mut r = Report::new("ablations");

    // A. §5.2 vote-0 fast path.
    let mut a = Table::new(
        "ablation A: vote-0 fast path (failure-free execution, one 0-vote, n=5 f=2)",
        &["variant", "last decision", "0-voter decision"],
    );
    for kind in [ProtocolKind::Inbac, ProtocolKind::InbacFastAbort] {
        let sc = Scenario::nice(5, 2).vote_no(3);
        let out = kind.run(&sc);
        let last = out.metrics().delays.unwrap();
        let zero_at = out.decisions[3].unwrap().0;
        a.row(vec![
            kind.name().into(),
            format!("{last} delays"),
            format!("{zero_at}"),
        ]);
    }
    r.table(a);
    let _ = r.compare(true);

    // B. Lemma 6's bundled acknowledgements.
    let mut b = Table::new(
        "ablation B: bundled vs per-vote acknowledgements (nice executions)",
        &["n", "f", "INBAC (2fn)", "unbundled", "blow-up"],
    );
    for (n, f) in [(4usize, 1usize), (5, 2), (8, 3)] {
        let (_, bundled) = measure(ProtocolKind::Inbac, n, f);
        let out = Scenario::nice(n, f).run::<InbacUnbundledAck>();
        let unbundled = out.metrics().messages as u64;
        b.row(vec![
            n.to_string(),
            f.to_string(),
            bundled.to_string(),
            unbundled.to_string(),
            format!("{:.1}x", unbundled as f64 / bundled as f64),
        ]);
        let _ = r.compare(unbundled > bundled);
    }
    r.table(b);

    // C. Consensus engagement: INBAC only pays for consensus when the
    // network misbehaves.
    let mut c = Table::new(
        "ablation C: consensus engagement under pre-GST chaos (n=5, f=2, 30 seeds)",
        &["protocol", "runs engaging consensus", "NBAC violations"],
    );
    for kind in [ProtocolKind::Inbac, ProtocolKind::FasterPaxosCommit] {
        let mut engaged = 0;
        let mut violations = 0;
        let seeds = 30u64;
        for seed in 0..seeds {
            let sc = Scenario::nice(5, 2)
                .chaos(ac_commit::runner::Chaos {
                    gst_units: 6,
                    max_units: 4,
                    seed,
                })
                .horizon(1200);
            let out = kind.run(&sc);
            let (_, nice_m) = kind.nice_complexity_formula(5, 2);
            if out.metrics().messages_total as u64 > nice_m {
                engaged += 1;
            }
            if !check(&out, &sc.votes, kind.cell()).ok() {
                violations += 1;
            }
        }
        let _ = r.compare(violations == 0);
        c.row(vec![
            kind.name().into(),
            format!("{engaged}/{seeds}"),
            violations.to_string(),
        ]);
    }
    r.table(c);
    r.note(
        "INBAC's 2U deadline is tight, so any pre-GST delay pushes it into its \
         consensus fallback (extra messages, NBAC still intact). Faster \
         PaxosCommit absorbs the same chaos without extra traffic until its \
         ~8U recovery timeout because its fast path already is a consensus \
         ballot — the message premium (2fn+2n-2f-2 vs 2fn) is paid upfront in \
         every execution instead.",
    );
    r
}

/// **Exhaustive** — the parallel small-model soundness sweep. Not a paper
/// table: for every protocol in the suite, enumerate all vote vectors ×
/// single-crash schedules on the protocol's own time grid (at `n = 3,
/// f = 1`) and check the guarantees of its Table-1 cell, fanning the runs
/// out over `jobs` worker threads.
pub fn exhaustive(jobs: usize) -> Report {
    let mut r = Report::new("exhaustive");
    let mut t = Table::new(
        format!("Exhaustive sweep at n=3, f=1 over {jobs} worker thread(s)"),
        &["protocol", "executions", "counterexamples", "wall ms", "ok"],
    );
    for kind in ProtocolKind::all() {
        let (d, _) = kind.nice_complexity_formula(3, 1);
        let cfg = ExplorerConfig {
            n: 3,
            f: 1,
            crash_times: (0..=d + 2).collect(),
            partial_sends: vec![1, 2],
            max_crashes: 1,
            horizon_units: 500,
        };
        let t0 = Instant::now();
        let report = explore_jobs(kind, &cfg, jobs);
        let wall = t0.elapsed();
        let verdict = r.compare(report.ok()).to_string();
        t.row(vec![
            kind.name().into(),
            report.executions.to_string(),
            report.counterexamples.len().to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            verdict,
        ]);
    }
    r.table(t);
    r.note(
        "each protocol's crash grid extends 2U past its own nice-execution \
         schedule; 'ok' means every execution of the space satisfied the \
         protocol's declared Table-1 cell.",
    );
    r
}

/// Mean wall-clock of one nice execution of `kind`, in microseconds.
fn nice_run_micros(kind: ProtocolKind, n: usize, f: usize) -> f64 {
    let sc = Scenario::nice(n, f);
    for _ in 0..3 {
        let _ = kind.run(&sc); // warmup
    }
    const ITERS: u32 = 20;
    let t0 = Instant::now();
    for _ in 0..ITERS {
        std::hint::black_box(kind.run(std::hint::black_box(&sc)));
    }
    t0.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS)
}

/// The `(n, f)` the per-protocol baseline is measured at (Table 5's
/// mid-size column).
pub const BASELINE_GRID: (usize, usize) = (6, 2);

/// The exploration space timed by the baseline: INBAC at `n = 5, f = 2`
/// with up to two crash victims on a 0..4U grid — ~34k executions, large
/// enough that worker threads amortize pool overhead (the single-crash
/// spaces of the tier-1 tests finish in milliseconds and would only time
/// thread spawning).
pub fn baseline_explorer_config() -> ExplorerConfig {
    ExplorerConfig {
        n: 5,
        f: 2,
        crash_times: (0..=4).collect(),
        partial_sends: vec![1],
        max_crashes: 2,
        horizon_units: 500,
    }
}

/// **Bench baseline** — measure the per-protocol nice-execution numbers and
/// the explorer's sequential-vs-parallel wall-clock, producing both a
/// human-readable [`Report`] and the machine-readable [`BenchBaseline`]
/// written to `BENCH_baseline.json`.
pub fn bench_baseline(jobs: usize) -> (Report, BenchBaseline) {
    let (n, f) = BASELINE_GRID;
    let mut r = Report::new("bench_baseline");

    let mut pt = Table::new(
        format!("Per-protocol nice-execution baseline at n={n}, f={f}"),
        &["protocol", "d", "m", "formula (d, m)", "match", "µs/run"],
    );
    let mut protocols = Vec::new();
    for kind in ProtocolKind::table5() {
        let (fd, fm) = kind.nice_complexity_formula(n as u64, f as u64);
        let (d, m) = measure(kind, n, f);
        let micros = nice_run_micros(kind, n, f);
        let matches = (d, m) == (fd, fm);
        let verdict = r.compare(matches).to_string();
        pt.row(vec![
            kind.name().into(),
            d.to_string(),
            m.to_string(),
            format!("({fd}, {fm})"),
            verdict,
            format!("{micros:.1}"),
        ]);
        protocols.push(ProtocolBaseline {
            protocol: kind.name().into(),
            n,
            f,
            delays: d,
            messages: m,
            formula_delays: fd,
            formula_messages: fm,
            matches_formula: matches,
            nice_run_micros: micros,
        });
    }
    r.table(pt);

    let cfg = baseline_explorer_config();
    // One untimed warmup so the sequential leg is not measured cold while
    // the parallel leg runs warm — that would bias `speedup` upward.
    let _ = explore_jobs(ProtocolKind::Inbac, &cfg, 1);
    let t0 = Instant::now();
    let seq = explore_jobs(ProtocolKind::Inbac, &cfg, 1);
    let sequential_millis = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let par = explore_jobs(ProtocolKind::Inbac, &cfg, jobs);
    let parallel_millis = t0.elapsed().as_secs_f64() * 1e3;
    let _ = r.compare(seq == par); // parallel must be byte-identical
    let _ = r.compare(seq.ok());
    let speedup = sequential_millis / parallel_millis.max(1e-9);

    let mut et = Table::new(
        format!(
            "Explorer wall-clock: INBAC n={} f={}, {} executions",
            cfg.n, cfg.f, seq.executions
        ),
        &["engine", "wall ms", "counterexamples"],
    );
    et.row(vec![
        "sequential".into(),
        format!("{sequential_millis:.1}"),
        seq.counterexamples.len().to_string(),
    ]);
    et.row(vec![
        format!("parallel (jobs={jobs})"),
        format!("{parallel_millis:.1}"),
        par.counterexamples.len().to_string(),
    ]);
    r.table(et);
    r.note(format!(
        "speedup {speedup:.2}x with {jobs} worker thread(s); parallel report \
         is byte-identical to sequential."
    ));

    let baseline = BenchBaseline {
        schema_version: 1,
        jobs,
        protocols,
        service: None,
        chaos: None,
        attribution: None,
        saturation: None,
        explorer: ExplorerBaseline {
            protocol: ProtocolKind::Inbac.name().into(),
            n: cfg.n,
            f: cfg.f,
            executions: seq.executions,
            counterexamples: seq.counterexamples.len(),
            sequential_millis,
            parallel_millis,
            jobs,
            speedup,
        },
    };
    (r, baseline)
}

/// The `(n, f)` grid and delay-unit length of the live-service sweep.
pub const SERVICE_GRID: (usize, usize) = (4, 1);
/// Wall-clock length of one virtual delay unit in the live-service sweep.
pub const SERVICE_UNIT: std::time::Duration = std::time::Duration::from_millis(5);

/// **Load baseline** — the live `ac-cluster` transaction service measured
/// under closed-loop load: protocol × workload × concurrency sweep with
/// wall-clock throughput and latency percentiles (p50/p90/p99/p99.9),
/// plus the per-stage latency **attribution** sweep (every Table-5
/// protocol on both transports through the flight recorder), emitted as
/// a schema-v4 [`BenchBaseline`] (simulator sections re-measured by
/// [`bench_baseline`], so the emitted file is self-contained).
///
/// `quick` shrinks the sweep for CI smoke jobs; `jobs` is forwarded to the
/// explorer leg of the baseline (the service spawns its own `n + c`
/// threads per combination regardless).
pub fn load_baseline(quick: bool, jobs: usize) -> (Report, BenchBaseline) {
    load_baseline_with(quick, jobs, ac_cluster::TransportKind::Channel)
}

/// [`load_baseline`] with an explicit transport: `Channel` is the fast
/// in-process path, `Tcp` routes every envelope through the wire codec
/// and loopback sockets (`repro load --transport tcp`). The safety gate
/// additionally requires zero orphaned envelopes — over any transport, a
/// healthy run never overflows an instance's pre-open buffer.
pub fn load_baseline_with(
    quick: bool,
    jobs: usize,
    transport: ac_cluster::TransportKind,
) -> (Report, BenchBaseline) {
    use crate::report::{
        attribution_stage_names, service_protocols, AttributionBaseline, AttributionEntry,
        AttributionStageEntry, ServiceBaseline, ServiceEntry, SlowTxn, TimelineStep,
    };
    use ac_cluster::{run_service, ServiceConfig};
    use ac_txn::Workload;

    let (n, f) = SERVICE_GRID;
    let protos = service_protocols();
    let workloads: [(&str, Workload); 2] = [
        ("uniform", Workload::Uniform { span: 2 }),
        (
            "skewed",
            Workload::Skewed {
                span: 2,
                theta: 0.9,
            },
        ),
    ];
    let client_levels: &[usize] = if quick { &[2, 8] } else { &[2, 8, 16] };
    let txns_per_client = if quick { 15 } else { 40 };

    // Simulator sections first (protocol formulas + explorer wall-clock):
    // the v2 baseline carries everything v1 did.
    let (mut r, mut baseline) = bench_baseline(jobs);
    r.id = "load".into();

    let mut t = Table::new(
        format!(
            "Live service sweep at n={n}, f={f}, unit={}ms ({} txns/client, closed loop, {} transport)",
            SERVICE_UNIT.as_millis(),
            txns_per_client,
            transport.name()
        ),
        &[
            "protocol", "workload", "clients", "txns", "commit%", "tput t/s", "p50 ms", "p90 ms",
            "p99 ms", "p99.9 ms", "max ms", "safe",
        ],
    );
    let mut entries = Vec::new();
    for kind in protos {
        for (wname, workload) in &workloads {
            for &clients in client_levels {
                let cfg = ServiceConfig::new(n, f, kind)
                    .clients(clients)
                    .txns_per_client(txns_per_client)
                    .workload(workload.clone())
                    .unit(SERVICE_UNIT)
                    .keys_per_shard(32)
                    .seed(7)
                    .transport(transport);
                let out = run_service(&cfg);
                let ok = out.is_safe() && out.stalled == 0 && out.orphaned_envelopes == 0;
                let verdict = r.compare(ok).to_string();
                let ms = |v: u64| v as f64 / 1e6;
                t.row(vec![
                    kind.name().into(),
                    (*wname).into(),
                    clients.to_string(),
                    out.txns.to_string(),
                    format!(
                        "{:.0}%",
                        100.0 * out.committed as f64 / out.txns.max(1) as f64
                    ),
                    format!("{:.0}", out.throughput_tps()),
                    format!("{:.2}", ms(out.latency.p50())),
                    format!("{:.2}", ms(out.latency.p90())),
                    format!("{:.2}", ms(out.latency.p99())),
                    format!("{:.2}", ms(out.latency.p999())),
                    format!("{:.2}", ms(out.latency.max())),
                    verdict,
                ]);
                let us = |v: u64| v as f64 / 1e3;
                entries.push(ServiceEntry {
                    protocol: kind.name().into(),
                    workload: (*wname).into(),
                    clients,
                    txns: out.txns,
                    committed: out.committed,
                    aborted: out.aborted,
                    stalled: out.stalled,
                    throughput_tps: out.throughput_tps(),
                    p50_micros: us(out.latency.p50()),
                    p90_micros: us(out.latency.p90()),
                    p99_micros: us(out.latency.p99()),
                    p999_micros: Some(us(out.latency.p999())),
                    max_micros: us(out.latency.max()),
                    safety_violations: out.violations.len(),
                    wire_messages: Some(out.wire_messages),
                    wire_per_txn: Some(out.wire_messages as f64 / out.txns.max(1) as f64),
                    spurious_wakeups: Some(out.spurious_wakeups),
                });
            }
        }
    }
    r.table(t);
    r.note(
        "latency is wall-clock submit -> all n decisions. Timer-driven \
         protocols pay their synchrony timeouts for real: 2PC's coordinator \
         collects votes at 1U and INBAC decides at 2U, so their p50 floors \
         are ~2 units; PaxosCommit's fast path decides on quorum *message \
         arrival* and runs at channel speed - the wall-clock face of the \
         paper's time/message trade-off (delay counts assume messages take \
         exactly U; over fast links the timer-free protocol wins latency \
         while paying its message premium). 'safe' requires a clean \
         post-run audit: agreed decisions, no commit without n yes-votes, \
         no lock left held, no stalled client.",
    );

    baseline.schema_version = 4;
    baseline.service = Some(ServiceBaseline {
        n,
        f,
        transport: Some(transport.name().into()),
        unit_micros: SERVICE_UNIT.as_micros() as u64,
        entries,
    });

    // Attribution sweep: every Table-5 protocol on *both* transports
    // (regardless of the main sweep's `--transport`), each run through
    // the flight recorder's telescoping per-stage decomposition. Small
    // fixed load per cell — the point is where the microseconds go, not
    // how many transactions fit.
    let mut at = Table::new(
        format!(
            "Latency attribution at n={n}, f={f}, unit={}ms (share of end-to-end time per stage)",
            SERVICE_UNIT.as_millis()
        ),
        &[
            "protocol",
            "transport",
            "cover%",
            "channel%",
            "lock%",
            "wal%",
            "protocol%",
            "transport%",
            "Σ%",
            "e2e p50 ms",
            "ok",
        ],
    );
    let mut attr_entries = Vec::new();
    for kind in ac_commit::protocols::ProtocolKind::table5() {
        for tk in [
            ac_cluster::TransportKind::Channel,
            ac_cluster::TransportKind::Tcp,
        ] {
            let cfg = ServiceConfig::new(n, f, kind)
                .clients(2)
                .txns_per_client(if quick { 8 } else { 15 })
                .workload(Workload::Uniform { span: 2 })
                .unit(SERVICE_UNIT)
                .keys_per_shard(32)
                .seed(11)
                .transport(tk);
            let out = run_service(&cfg);
            let a = &out.attribution;
            // The acceptance gate: a clean run whose reconstructed stage
            // shares telescope to the measured end-to-end latency within
            // 5 % (exact per covered transaction by construction — the
            // tolerance only absorbs coverage loss).
            let ok = out.is_safe()
                && out.stalled == 0
                && out.orphaned_envelopes == 0
                && a.covered > 0
                && (a.share_sum_pct() - 100.0).abs() <= 5.0;
            let verdict = r.compare(ok).to_string();
            let us = |v: u64| v as f64 / 1e3;
            let mut row = vec![
                kind.name().into(),
                tk.name().into(),
                format!("{:.0}%", a.coverage_pct()),
            ];
            row.extend((0..5).map(|i| format!("{:.1}", a.share_pct(i))));
            row.push(format!("{:.1}", a.share_sum_pct()));
            row.push(format!("{:.2}", us(a.e2e.p50()) / 1e3));
            row.push(verdict);
            at.row(row);
            attr_entries.push(AttributionEntry {
                protocol: kind.name().into(),
                transport: tk.name().into(),
                txns: a.total,
                coverage_pct: a.coverage_pct(),
                share_sum_pct: a.share_sum_pct(),
                e2e_p50_micros: us(a.e2e.p50()),
                e2e_p999_micros: us(a.e2e.p999()),
                dropped_events: a.dropped_events,
                alignment_max_uncertainty_micros: None,
                stages: attribution_stage_names()
                    .iter()
                    .enumerate()
                    .map(|(i, s)| AttributionStageEntry {
                        stage: s.to_string(),
                        p50_micros: us(a.stages[i].p50()),
                        p99_micros: us(a.stages[i].p99()),
                        share_pct: a.share_pct(i),
                    })
                    .collect(),
                slowest: a
                    .slowest
                    .iter()
                    .map(|tl| SlowTxn {
                        txn: tl.txn,
                        e2e_micros: tl.e2e_nanos() as f64 / 1e3,
                        steps: tl
                            .steps()
                            .into_iter()
                            .map(|(at_nanos, actor, label)| TimelineStep {
                                at_micros: at_nanos as f64 / 1e3,
                                actor,
                                label,
                            })
                            .collect(),
                    })
                    .collect(),
            });
        }
    }
    r.table(at);
    r.note(
        "attribution anchors each transaction at its last-deciding \
         participant and telescopes submit -> dispatch -> locks-held -> \
         WAL-forced -> decided(node) -> decided(client); the five stage \
         shares sum to 100% of measured end-to-end latency by \
         construction. `protocol%` is the commit protocol's own critical-\
         path residency (timer floors + vote/decision waits) — the \
         dominant share for the timer-driven protocols, which is the \
         paper's delay-bound claim in wall-clock form. `repro trace` \
         renders the embedded slowest-transaction timelines.",
    );
    baseline.attribution = Some(AttributionBaseline {
        n,
        f,
        unit_micros: SERVICE_UNIT.as_micros() as u64,
        entries: attr_entries,
    });
    (r, baseline)
}

/// The `(n, f)` grid of the chaos sweep (same cluster shape as the live
/// sweep, but span-3 transactions so 1 in 4 draws avoids any given node —
/// the source of availability while that node is down).
pub const CHAOS_GRID: (usize, usize) = (4, 1);

/// Build the chaos service configuration: paced span-3 load with bounded,
/// retrying reply waits (`quick` shrinks the stream for CI smoke jobs).
fn chaos_service(
    kind: ac_commit::protocols::ProtocolKind,
    quick: bool,
) -> ac_cluster::ServiceConfig {
    use std::time::Duration;
    let (n, f) = CHAOS_GRID;
    ac_cluster::ServiceConfig::new(n, f, kind)
        .clients(if quick { 3 } else { 4 })
        .txns_per_client(if quick { 14 } else { 24 })
        .workload(ac_txn::Workload::Uniform { span: 3 })
        .unit(SERVICE_UNIT)
        .keys_per_shard(64)
        .seed(23)
        .pacing(Duration::from_millis(if quick { 8 } else { 7 }))
        .reply_timeout(Duration::from_millis(60))
        .park_retries(1)
        .txn_deadline(Duration::from_secs(8))
}

/// The fault window of every chaos scenario, in virtual units: faults
/// switch on at 10 U and heal at 50 U (50 ms → 250 ms at the 5 ms unit).
pub const CHAOS_WINDOW_UNITS: (u64, u64) = (10, 50);

/// Build the fault plan of one named scenario (see
/// [`crate::report::chaos_scenario_names`]).
fn chaos_plan(scenario: &str, n: usize) -> ac_chaos::ChaosPlan {
    use ac_chaos::ChaosPlan;
    let (from, until) = CHAOS_WINDOW_UNITS;
    match scenario {
        // Node n−1 is the highest shard, hence 2PC's coordinator for every
        // transaction touching it; for the symmetric protocols it is just
        // another participant.
        "crash-coordinator" => ChaosPlan::none(n).crash(n - 1, from, Some(until)),
        "crash-participant" => ChaosPlan::none(n).crash(1, from, Some(until)),
        "partition-heal" => ChaosPlan::none(n).partition((0..n / 2).collect(), from, until, true),
        "lossy-10" => ChaosPlan::none(n).lossy(from, until, 100).seed(5),
        other => panic!("unknown chaos scenario {other}"),
    }
}

/// **Chaos baseline** — the availability-under-failure sweep:
/// {2PC, Paxos-Commit, INBAC, D1CC} × {crash-coordinator,
/// crash-participant, partition-heal, lossy-10}, each run through
/// `ac-chaos` with a post-run safety audit, emitted as the `chaos`
/// section of a schema-v4 baseline on top of everything the load
/// baseline carries (service sweep + attribution).
///
/// The wall-clock face of the paper's trade-off, asserted as comparisons:
/// the f-tolerant protocols (Paxos-Commit, INBAC, logless D1CC) keep
/// **committing** through a single crash (availability > 0 inside the
/// fault window), while 2PC reports blocked transactions under a crashed
/// coordinator that only resolve after the restart.
pub fn chaos_baseline(quick: bool, jobs: usize) -> (Report, BenchBaseline) {
    chaos_baseline_with(quick, jobs, ac_cluster::TransportKind::Channel)
}

/// [`chaos_baseline`] with an explicit transport (`repro chaos
/// --transport tcp`): the fault policy decides envelope fates *before*
/// the transport sees them, so the same crash/partition/lossy plans run
/// unchanged over sockets.
pub fn chaos_baseline_with(
    quick: bool,
    jobs: usize,
    transport: ac_cluster::TransportKind,
) -> (Report, BenchBaseline) {
    use crate::report::{chaos_scenario_names, service_protocols, ChaosBaseline, ChaosEntry};
    use ac_chaos::{run_chaos, ChaosConfig};

    let (n, f) = CHAOS_GRID;
    let (mut r, mut baseline) = load_baseline_with(quick, jobs, transport);
    r.id = "chaos".into();

    let mut t = Table::new(
        format!(
            "Chaos sweep at n={n}, f={f}, unit={}ms: fault window [{}U, {}U)",
            SERVICE_UNIT.as_millis(),
            CHAOS_WINDOW_UNITS.0,
            CHAOS_WINDOW_UNITS.1
        ),
        &[
            "protocol",
            "scenario",
            "txns",
            "commit%",
            "avail%",
            "commit@fault",
            "ops@fault",
            "ops@heal",
            "blocked",
            "recovery ms",
            "ok",
        ],
    );
    let mut entries = Vec::new();
    for kind in service_protocols() {
        for scenario in chaos_scenario_names() {
            let cfg = ChaosConfig {
                service: chaos_service(kind, quick).transport(transport),
                plan: chaos_plan(scenario, n),
            };
            let out = run_chaos(&cfg);
            let s = &out.stats;
            let svc = &out.service;
            // Universal gates: clean audit, everything resolved. When a
            // crash or partition parked transactions, the service must
            // additionally show throughput recovering after the heal. Two
            // faults legitimately drain a short stream inside the window
            // instead: a lossy link (parks resolve via in-window retries),
            // and a never-blocking protocol (logless D1CC timeout-aborts
            // straight through a partition, so nothing is left to
            // recover). The no-blocking exemption is scoped to logless
            // protocols only: a blocking protocol that unexpectedly
            // parked nothing must still demonstrate post-heal commits.
            //
            // The audit itself follows the protocol's Table-1 cell, like
            // the simulator's checker does: partition-heal and lossy-10
            // are *network-failure* executions, and a cell without
            // NF-agreement (D1CC's (AVT, VT)) documents that deciders may
            // split when the fault lands mid-vote-broadcast — one side
            // assembles all n votes and commits while the cut-off side
            // times out to Abort (see `ac_commit::protocols::d1cc`; the
            // explorer produces the same counterexamples). Exempting the
            // split-decision finding for exactly those cells keeps every
            // other audit (no lost locks, log/client agreement, no commit
            // against a missing yes-vote) and keeps full agreement gating
            // for every crash-failure scenario and every NF-agreement
            // protocol. The window is microseconds wide, so most runs
            // still show zero splits — the exemption only stops a
            // documented protocol property from failing the sweep.
            let network_failure = matches!(scenario, "partition-heal" | "lossy-10");
            let split_exempt = network_failure && !kind.cell().nf.has_agreement();
            let audited_violations = svc
                .violations
                .iter()
                .filter(|v| !(split_exempt && v.contains("split decision")))
                .count();
            let clean = audited_violations == 0 && svc.stalled == 0 && s.unresolved == 0;
            let recovered = scenario == "lossy-10"
                || (kind.logless() && s.blocked == 0)
                || s.committed_after_heal > 0;
            // The paper-facing contrast, asserted where it is robust:
            // f-tolerant protocols keep committing through a single
            // crash; 2PC blocks under a crashed coordinator (and its
            // blocked txns resolve only after the restart).
            let contrast = match (kind.name(), scenario) {
                ("PaxosCommit" | "INBAC" | "D1CC", "crash-participant" | "crash-coordinator") => {
                    s.committed_during_fault > 0
                }
                ("2PC", "crash-coordinator") => s.blocked > 0,
                ("2PC" | "PaxosCommit" | "INBAC" | "D1CC", "lossy-10") => {
                    s.committed_during_fault > 0
                }
                _ => true,
            };
            let ok = clean && recovered && contrast;
            let verdict = r.compare(ok).to_string();
            t.row(vec![
                kind.name().into(),
                scenario.into(),
                svc.txns.to_string(),
                format!(
                    "{:.0}%",
                    100.0 * svc.committed as f64 / svc.txns.max(1) as f64
                ),
                format!("{:.0}%", s.availability_pct),
                s.committed_during_fault.to_string(),
                format!("{:.0}", s.ops_during_fault),
                format!("{:.0}", s.ops_after_heal),
                s.blocked.to_string(),
                format!("{:.1}", s.time_to_unblock.as_secs_f64() * 1e3),
                verdict,
            ]);
            entries.push(ChaosEntry {
                protocol: kind.name().into(),
                scenario: scenario.into(),
                txns: svc.txns,
                committed: svc.committed,
                aborted: svc.aborted,
                stalled: svc.stalled,
                safety_violations: audited_violations,
                submitted_during_fault: s.submitted_during_fault,
                decided_during_fault: s.decided_during_fault,
                committed_during_fault: s.committed_during_fault,
                committed_after_heal: s.committed_after_heal,
                ops_during_fault: s.ops_during_fault,
                ops_after_heal: s.ops_after_heal,
                availability_pct: s.availability_pct,
                blocked: s.blocked,
                recovery_ms: s.time_to_unblock.as_secs_f64() * 1e3,
                retries: svc.retries,
                dropped_messages: svc.dropped_messages,
                wire_messages: svc.wire_messages,
            });
        }
    }
    r.table(t);
    r.note(
        "avail% = share of txns submitted inside the fault window that \
         fully decided before the heal; commit@fault = txns committed \
         inside the window (span-3 txns avoiding the crashed node — the \
         f-tolerant availability the paper's §6.2 promises); blocked = \
         txns the client had to park past its bounded reply waits (2PC \
         under a crashed coordinator), all of which must resolve after \
         restart + WAL recovery — recovery ms is the worst heal-to-decision \
         gap. Safety audits (agreement, no lost locks, sequential replay) \
         run on every faulted execution; the agreement audit follows the \
         protocol's Table-1 cell, so a cell without network-failure \
         agreement (D1CC) tolerates split deciders under partition-heal \
         and lossy-10 — the documented price of logless one-delay commit.",
    );

    baseline.schema_version = 4;
    baseline.chaos = Some(ChaosBaseline {
        n,
        f,
        transport: Some(transport.name().into()),
        unit_micros: SERVICE_UNIT.as_micros() as u64,
        fault_from_units: CHAOS_WINDOW_UNITS.0,
        fault_until_units: CHAOS_WINDOW_UNITS.1,
        entries,
    });
    (r, baseline)
}

/// Per-client in-flight window of the saturation sweep: beyond it an
/// open-loop arrival is shed, not queued — the overload valve that keeps
/// sojourn times finite past the knee.
pub const SATURATION_MAX_OUTSTANDING: usize = 32;

/// Per-client Poisson arrival rate of the saturation sweep's ×1 step,
/// transactions/second. Chosen so the ×1 step idles well below capacity
/// (λ × p50 ≪ 1 in-flight per client) and the ×16 step is far past it.
pub const SATURATION_BASE_RATE: f64 = 25.0;

/// Group-commit flush interval of the saturation sweep and the perf
/// gate's WAL-force cells. The node loop forces per drained batch, but a
/// fast loop drains ~1 record per iteration; the time cap holds the
/// force (and everything that depends on it) until records from several
/// iterations share one force — 2 ms is ≪ the 5 ms delay unit, so the
/// added latency hides under the protocols' timer floors.
pub const SATURATION_FLUSH_INTERVAL: std::time::Duration = std::time::Duration::from_millis(2);

/// One open-loop durable run of the saturation sweep: Poisson arrivals at
/// `rate`/client for roughly `duration`, WAL + group commit on (the
/// no-fault chaos path), shedding at [`SATURATION_MAX_OUTSTANDING`].
pub(crate) fn saturate_cell(
    kind: ac_commit::protocols::ProtocolKind,
    transport: ac_cluster::TransportKind,
    n: usize,
    clients: usize,
    rate: f64,
    duration: std::time::Duration,
) -> ac_cluster::ServiceOutcome {
    use ac_chaos::{run_chaos, ChaosConfig, ChaosPlan};
    let txns = ((rate * duration.as_secs_f64()).ceil() as usize).max(4);
    let service = ac_cluster::ServiceConfig::new(n, 1, kind)
        .clients(clients)
        .txns_per_client(txns)
        .workload(ac_txn::Workload::Uniform { span: 2 })
        .unit(SERVICE_UNIT)
        .keys_per_shard(64)
        .seed(31)
        .arrival_rate(rate)
        .max_outstanding(SATURATION_MAX_OUTSTANDING)
        .wal_flush_interval(SATURATION_FLUSH_INTERVAL)
        .transport(transport);
    run_chaos(&ChaosConfig {
        service,
        plan: ChaosPlan::none(n),
    })
    .service
}

/// The knee criterion: first step whose goodput gain over the previous
/// step is < 10 % while p99 sojourn at least doubles. Falls back to the
/// last step (`detected = false`) when no step qualifies.
pub(crate) fn detect_knee(steps: &[(f64, f64)]) -> (usize, bool) {
    for i in 1..steps.len() {
        let (g0, p0) = steps[i - 1];
        let (g1, p1) = steps[i];
        if g1 < g0 * 1.10 && p1 >= 2.0 * p0 && p0 > 0.0 {
            return (i, true);
        }
    }
    (steps.len().saturating_sub(1), false)
}

/// **Saturation baseline** — the open-loop offered-vs-goodput sweep
/// (`repro saturate`): Poisson arrivals stepped ×1 → ×16 over each
/// (protocol, n, clients) cell with durability on, goodput measured over
/// the trimmed steady-state window, per-curve knee detection and the
/// per-stage attribution of the knee step, emitted as the `saturation`
/// section of a schema-v5 baseline on top of everything the chaos
/// baseline carries. This is where group commit shows up as a counter:
/// forces-per-txn falls below 1 once drained batches amortize the force.
pub fn saturate_baseline(quick: bool, jobs: usize) -> (Report, BenchBaseline) {
    saturate_baseline_with(quick, jobs, ac_cluster::TransportKind::Channel)
}

/// [`saturate_baseline`] with an explicit transport. The full sweep runs
/// every Table-5 protocol at (n=4, c=16) plus 2PC scale cells at
/// (n=8, c=32) and (n=16, c=128); `--quick` shrinks it to one 2PC curve
/// (the CI smoke runs that over tcp).
pub fn saturate_baseline_with(
    quick: bool,
    jobs: usize,
    transport: ac_cluster::TransportKind,
) -> (Report, BenchBaseline) {
    use crate::report::{
        attribution_stage_names, AttributionStageEntry, SaturationBaseline, SaturationCurve,
        SaturationKnee, SaturationStep,
    };
    use ac_commit::protocols::ProtocolKind;
    use std::time::Duration;

    let (mut r, mut baseline) = chaos_baseline_with(quick, jobs, transport);
    r.id = "saturate".into();

    // (protocol, n, clients) cells; every cell sweeps the same rate
    // multipliers so curves are comparable.
    let cells: Vec<(ProtocolKind, usize, usize)> = if quick {
        vec![(ProtocolKind::TwoPc, 4, 8)]
    } else {
        let mut c: Vec<_> = ProtocolKind::table5()
            .into_iter()
            .map(|k| (k, 4, 16))
            .collect();
        c.push((ProtocolKind::TwoPc, 8, 32));
        c.push((ProtocolKind::TwoPc, 16, 128));
        c
    };
    let mults: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let duration = Duration::from_millis(if quick { 400 } else { 1000 });

    let mut t = Table::new(
        format!(
            "Open-loop saturation sweep, f=1, unit={}ms, window={} \
             (Poisson arrivals, durable, {} transport)",
            SERVICE_UNIT.as_millis(),
            SATURATION_MAX_OUTSTANDING,
            transport.name()
        ),
        &[
            "protocol",
            "n",
            "clients",
            "x",
            "offered t/s",
            "goodput t/s",
            "commit%",
            "shed",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "forces/txn",
            "ok",
        ],
    );
    let mut kt = Table::new(
        "Detected knees (first step with <10% goodput gain while p99 doubles)",
        &[
            "protocol",
            "n",
            "clients",
            "knee x",
            "detected",
            "offered t/s",
            "goodput t/s",
            "p99 ms",
            "dominant stage",
        ],
    );
    let mut curves = Vec::new();
    for (kind, n, clients) in cells {
        let mut steps = Vec::new();
        let mut knee_inputs: Vec<(f64, f64)> = Vec::new();
        let mut attributions = Vec::new();
        for (i, &mult) in mults.iter().enumerate() {
            let rate = SATURATION_BASE_RATE * mult as f64;
            let out = saturate_cell(kind, transport, n, clients, rate, duration);
            let goodput = out.goodput_tps();
            let us = |v: u64| v as f64 / 1e3;
            let ms = |v: u64| v as f64 / 1e6;
            let forces_per_txn = out.wal_forces as f64 / out.txns.max(1) as f64;
            // Gates: a clean audit always; at the top multiplier the
            // group-commit win itself — strictly fewer force operations
            // than transactions (was ≥ 2 per txn with per-record forcing).
            let mut ok = out.is_safe() && out.orphaned_envelopes == 0;
            if mult == 16 {
                ok &= forces_per_txn < 1.0;
            }
            let verdict = r.compare(ok).to_string();
            t.row(vec![
                kind.name().into(),
                n.to_string(),
                clients.to_string(),
                format!("x{mult}"),
                format!("{:.0}", rate * clients as f64),
                format!("{goodput:.0}"),
                format!(
                    "{:.0}%",
                    100.0 * out.committed as f64 / out.txns.max(1) as f64
                ),
                out.shed.to_string(),
                format!("{:.2}", ms(out.latency.p50())),
                format!("{:.2}", ms(out.latency.p99())),
                format!("{:.2}", ms(out.latency.p999())),
                format!("{forces_per_txn:.2}"),
                verdict,
            ]);
            steps.push(SaturationStep {
                step: i,
                arrival_rate_per_client: rate,
                offered_tps: rate * clients as f64,
                offered: out.offered,
                shed: out.shed,
                committed: out.committed,
                aborted: out.aborted,
                stalled: out.stalled,
                goodput_tps: goodput,
                p50_sojourn_micros: us(out.latency.p50()),
                p99_sojourn_micros: us(out.latency.p99()),
                p999_sojourn_micros: us(out.latency.p999()),
                wal_forces: out.wal_forces,
                forces_per_txn,
                wire_per_txn: out.wire_messages as f64 / out.txns.max(1) as f64,
                safety_violations: out.violations.len(),
            });
            knee_inputs.push((goodput, us(out.latency.p99())));
            attributions.push(out.attribution);
        }
        let (ki, detected) = detect_knee(&knee_inputs);
        let a = &attributions[ki];
        let stage_shares: Vec<AttributionStageEntry> = attribution_stage_names()
            .iter()
            .enumerate()
            .map(|(i, s)| AttributionStageEntry {
                stage: s.to_string(),
                p50_micros: a.stages[i].p50() as f64 / 1e3,
                p99_micros: a.stages[i].p99() as f64 / 1e3,
                share_pct: a.share_pct(i),
            })
            .collect();
        let dominant = stage_shares
            .iter()
            .max_by(|x, y| x.share_pct.total_cmp(&y.share_pct))
            .map(|s| s.stage.clone())
            .unwrap_or_default();
        // The knee itself is gated: attribution at the knee must still
        // telescope (its run was audited clean above).
        let knee_ok = a.covered > 0 && (a.share_sum_pct() - 100.0).abs() <= 5.0;
        let verdict = r.compare(knee_ok).to_string();
        kt.row(vec![
            kind.name().into(),
            n.to_string(),
            clients.to_string(),
            format!("x{}", mults[ki]),
            if detected { "yes" } else { "no (last step)" }.into(),
            format!("{:.0}", steps[ki].offered_tps),
            format!("{:.0}", steps[ki].goodput_tps),
            format!("{:.2}", steps[ki].p99_sojourn_micros / 1e3),
            format!("{dominant} [{verdict}]"),
        ]);
        let knee = SaturationKnee {
            step: ki,
            detected,
            offered_tps: steps[ki].offered_tps,
            goodput_tps: knee_inputs[ki].0,
            p99_sojourn_micros: knee_inputs[ki].1,
            stage_shares,
            share_sum_pct: a.share_sum_pct(),
        };
        curves.push(SaturationCurve {
            protocol: kind.name().into(),
            transport: transport.name().into(),
            n,
            clients,
            max_outstanding: SATURATION_MAX_OUTSTANDING,
            steps,
            knee,
        });
    }
    r.table(t);
    r.table(kt);
    r.note(
        "open loop: each client dispatches txns on a Poisson schedule \
         regardless of completions (closed loops cannot saturate — their \
         offered load collapses to clients/latency). Sojourn = scheduled \
         arrival -> all decisions, so queueing counts. goodput = committed \
         txns/s over the trimmed steady-state window (first/last 10% \
         excluded); shed arrivals (in-flight window full) are offered load \
         the system refused. Durability is on: forces/txn < 1 at x16 is \
         the group-commit win — one WAL force covers a whole drained \
         batch instead of >= 2 per txn.",
    );

    baseline.schema_version = 5;
    baseline.saturation = Some(SaturationBaseline {
        f: 1,
        unit_micros: SERVICE_UNIT.as_micros() as u64,
        curves,
    });
    (r, baseline)
}

/// All experiments with default parameters; explorer-backed entries run
/// over `jobs` worker threads.
pub fn all(jobs: usize) -> Vec<Report> {
    vec![
        table1(6, 2),
        table2(),
        table3(),
        table4(6, 2),
        table5(&[4, 6, 8, 10], &[1, 2, 3]),
        fig1(),
        ablations(),
        exhaustive(jobs),
    ]
}

/// The live-service sweep tests each spawn `n + clients` real threads and
/// measure wall-clock behavior (availability windows, knee shapes);
/// running them concurrently starves each other's timers on small boxes.
/// Every such test takes this lock so the test harness's default
/// parallelism never overlaps two sweeps.
#[cfg(test)]
pub(crate) fn live_sweep_lock() -> std::sync::MutexGuard<'static, ()> {
    static LIVE_SWEEP: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LIVE_SWEEP.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let r = table1(6, 2);
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn table2_matches_paper() {
        let r = table2();
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn table3_matches_paper() {
        let r = table3();
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn table4_matches_paper() {
        let r = table4(6, 2);
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn table5_matches_formulas() {
        let r = table5(&[4, 6], &[1, 2]);
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn fig1_branches_all_reachable() {
        let r = fig1();
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn ablations_hold() {
        let r = ablations();
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn exhaustive_sweep_is_clean_in_parallel() {
        let r = exhaustive(2);
        assert!(r.all_matched(), "{}", r.render());
    }

    #[test]
    fn bench_baseline_validates_and_covers_table5() {
        let (r, baseline) = bench_baseline(2);
        assert!(r.all_matched(), "{}", r.render());
        assert_eq!(
            crate::report::BenchBaseline::validate_json(&baseline.to_json()),
            Ok(())
        );
    }

    #[test]
    fn chaos_baseline_quick_shows_the_blocking_contrast_and_validates_as_v4() {
        let _serial = live_sweep_lock();
        let (r, baseline) = chaos_baseline(true, 2);
        assert!(r.all_matched(), "{}", r.render());
        assert_eq!(baseline.schema_version, 4);
        let chaos = baseline.chaos.as_ref().expect("chaos section present");
        assert_eq!(chaos.entries.len(), 16, "4 protocols x 4 scenarios");
        // The acceptance contrast, re-checked on the emitted numbers:
        // Paxos-Commit and logless D1CC commit through a participant
        // crash, 2PC blocks under a crashed coordinator.
        let find = |p: &str, s: &str| {
            chaos
                .entries
                .iter()
                .find(|e| e.protocol == p && e.scenario == s)
                .unwrap()
        };
        assert!(find("PaxosCommit", "crash-participant").committed_during_fault > 0);
        assert!(find("D1CC", "crash-participant").committed_during_fault > 0);
        assert!(find("2PC", "crash-coordinator").blocked > 0);
        assert!(chaos.entries.iter().all(|e| e.safety_violations == 0));
        assert!(chaos.entries.iter().all(|e| e.stalled == 0));
        assert_eq!(
            crate::report::BenchBaseline::validate_json(&baseline.to_json()),
            Ok(())
        );
    }

    #[test]
    fn saturate_baseline_quick_shows_the_group_commit_win_and_validates_as_v5() {
        let _serial = live_sweep_lock();
        let (r, baseline) = saturate_baseline(true, 2);
        assert!(r.all_matched(), "{}", r.render());
        assert_eq!(baseline.schema_version, 5);
        let sat = baseline.saturation.as_ref().expect("saturation section");
        assert_eq!(sat.curves.len(), 1, "quick sweeps one 2PC curve");
        let c = &sat.curves[0];
        assert_eq!(c.protocol, "2PC");
        assert_eq!(c.steps.len(), 3);
        assert!(c.knee.step < c.steps.len());
        assert!(
            (c.knee.share_sum_pct - 100.0).abs() <= 5.0,
            "knee shares must telescope, got {}",
            c.knee.share_sum_pct
        );
        // The tentpole's acceptance counter: at ×16 offered load one WAL
        // force covers a whole drained batch, so forces/txn drops below 1
        // (per-record forcing paid ≥ 2 — prepare + decide — per txn).
        let top = c.steps.last().unwrap();
        assert!(
            top.forces_per_txn < 1.0,
            "group commit must amortize forces at ×16, got {}",
            top.forces_per_txn
        );
        assert!(top.wal_forces > 0, "durable runs force the WAL");
        for s in &c.steps {
            assert_eq!(s.safety_violations, 0);
            assert!(s.goodput_tps <= s.offered_tps * 1.10, "{s:?}");
        }
        assert_eq!(
            crate::report::BenchBaseline::validate_json(&baseline.to_json()),
            Ok(())
        );
    }

    #[test]
    fn load_baseline_quick_is_safe_and_validates_as_v4() {
        let _serial = live_sweep_lock();
        let (r, baseline) = load_baseline(true, 2);
        assert!(r.all_matched(), "{}", r.render());
        assert_eq!(baseline.schema_version, 4);
        // The p99.9 satellite: every fresh service entry carries the tail
        // percentile, ordered sanely against p99 and max.
        let service = baseline.service.as_ref().expect("service section");
        for e in &service.entries {
            let p999 = e.p999_micros.expect("fresh entries carry p99.9");
            assert!(e.p99_micros <= p999 && p999 <= e.max_micros, "{e:?}");
        }
        // The attribution tentpole: all seven Table-5 protocols on both
        // transports, each with positive coverage and telescoping shares.
        let attr = baseline.attribution.as_ref().expect("attribution section");
        assert_eq!(attr.entries.len(), 14, "7 protocols x 2 transports");
        for e in &attr.entries {
            assert!(
                e.coverage_pct > 0.0,
                "{}/{} uncovered",
                e.protocol,
                e.transport
            );
            assert!(
                (e.share_sum_pct - 100.0).abs() <= 5.0,
                "{}/{} shares sum to {}",
                e.protocol,
                e.transport,
                e.share_sum_pct
            );
            assert!(!e.slowest.is_empty(), "slowest timelines embedded");
        }
        assert_eq!(
            crate::report::BenchBaseline::validate_json(&baseline.to_json()),
            Ok(())
        );
    }
}
