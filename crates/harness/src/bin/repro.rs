//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--json] [--jobs N] [--out PATH] [--quick] [--transport channel|tcp] \
//!       [table1|table2|table3|table4|table5|fig1|ablations|exhaustive|bench|load|chaos|saturate|all]
//! repro proc [--quick] [--json] [--jobs N] [--out PATH] [--dump-dir DIR] [--metrics PORT]
//! repro bench-check <path>
//! repro trace [<path>]
//! repro perf --against <path> [--quick] [--json] [--jobs N] [--out PATH]
//! ```
//!
//! With no argument, runs everything. `--json` emits machine-readable
//! reports instead of aligned text. `--jobs N` sets the worker-thread count
//! of the explorer-backed targets (`exhaustive`, `bench`, `load`, `chaos`,
//! `all`); the default is 1 (sequential). `bench` additionally writes the
//! machine-readable schema-v1 baseline to `--out` (default
//! `BENCH_baseline.json`); `load` runs the live `ac-cluster` service sweep
//! (protocol × workload × concurrency, `--quick` shrinks it for smoke
//! jobs) and writes the schema-v2 baseline including the `service`
//! section; `--transport tcp` routes the `load`/`chaos` sweeps through
//! the real-socket transport (length-prefixed wire codec over loopback
//! TCP) instead of in-process channels, and the baseline records which
//! transport measured it; `chaos` additionally runs the availability-under-failure sweep
//! ({2PC, Paxos-Commit, INBAC, D1CC} × {crash-coordinator, crash-participant,
//! partition-heal, lossy-10} through `ac-chaos`, with safety audits on
//! every faulted run) and writes the schema-v3 baseline including the
//! `chaos` section; `saturate` additionally runs the open-loop saturation
//! sweep (Poisson arrivals stepped ×1 → ×16 with durability + group
//! commit on, goodput over the trimmed steady-state window, per-curve
//! knee detection with the knee's per-stage attribution) and writes the
//! schema-v5 baseline including the `saturation` section — `--quick`
//! shrinks it to one 2PC curve for CI's saturate-smoke job (which runs it
//! over tcp); since schema v4 the `load`/`chaos` baselines also
//! carry the per-stage latency **attribution** section (every Table-5
//! protocol on both transports, stage shares telescoping to end-to-end
//! latency) with the slowest-transaction timelines embedded;
//! `proc` runs the **multi-process** sweep: real `ac-node`/`ac-client`
//! processes over loopback TCP, every node's observability export
//! collected through the cross-process tracing path (clock alignment via
//! echo round trips, `ObsPull`/`ObsDump` control frames, one binary
//! cluster dump per run under `--dump-dir`, default `.`), attribution
//! emitted as extra `"proc"` entries on the schema-v5 baseline plus an
//! open-loop 2PC saturation curve; `--metrics PORT` additionally serves
//! and scrapes node 0's Prometheus endpoint mid-run (a gated check);
//! `trace [<path>]` renders those embedded straggler timelines (default
//! path `BENCH_baseline.json`) through the same renderer the simulator's
//! traces use — when `<path>` is a binary cluster dump written by
//! `ac-client --obs-out` / `repro proc`, the attribution is recomputed
//! from the per-process exports on the spot and rendered the same way;
//! `bench-check <path>` validates a previously written
//! baseline of any schema version — CI's bench-smoke, load-smoke,
//! chaos-smoke and trace-smoke jobs run these. `perf --against <path>` re-measures the
//! live sweep and diffs it against a committed baseline: counter-exact
//! regressions (message counts, commit rates, safety/stall counters,
//! explorer soundness, a dirty committed chaos section) fail the run,
//! wall-clock drift only warns; the machine-readable comparison is written
//! to `--out` (default `PERF_comparison.json`) — CI's perf-smoke job runs
//! this.

use std::path::PathBuf;

use ac_harness::experiments;
use ac_harness::report::BenchBaseline;
use ac_harness::Report;

fn run_one(id: &str, jobs: usize) -> Option<Vec<Report>> {
    Some(match id {
        "table1" => vec![experiments::table1(6, 2)],
        "table2" => vec![experiments::table2()],
        "table3" => vec![experiments::table3()],
        "table4" => vec![experiments::table4(6, 2)],
        "table5" => vec![experiments::table5(&[4, 6, 8, 10], &[1, 2, 3])],
        "fig1" => vec![experiments::fig1()],
        "ablations" => vec![experiments::ablations()],
        "exhaustive" => vec![experiments::exhaustive(jobs)],
        "all" => experiments::all(jobs),
        _ => return None,
    })
}

/// Render a binary cluster dump: the per-node clock-alignment summary,
/// then the slowest-transaction timelines of the attribution recomputed
/// from the dump's per-process exports.
fn trace_dump(path: &str, dump: &ac_obs::ClusterDump) {
    let a = dump.attribution(5);
    println!(
        "## {} over proc — {}: slowest {} of {} txns \
         (n={}, f={}, coverage {:.0}%, e2e p50 {:.2} ms)",
        dump.protocol,
        path,
        a.slowest.len(),
        a.total,
        dump.n,
        dump.f,
        a.coverage_pct(),
        a.e2e.p50() as f64 / 1e6,
    );
    for al in &dump.alignments {
        println!(
            "node {}: clock offset {:+.3} ms \u{b1} {:.0} \u{b5}s \
             (min RTT {:.0} \u{b5}s over {} echoes)",
            al.node,
            al.offset_nanos as f64 / 1e6,
            al.uncertainty_nanos as f64 / 1e3,
            al.rtt_nanos as f64 / 1e3,
            al.samples,
        );
    }
    for tl in &a.slowest {
        println!(
            "\ntxn {:#x}: {:.2} ms end-to-end (anchor node {})",
            tl.txn,
            tl.e2e_nanos() as f64 / 1e6,
            tl.anchor,
        );
        let rows: Vec<ac_sim::TimelineRow> = tl
            .steps()
            .into_iter()
            .map(|(at_nanos, actor, label)| {
                ac_sim::TimelineRow::new(format!("{:.2}ms", at_nanos as f64 / 1e6), actor, label)
            })
            .collect();
        print!("{}", ac_sim::render_timeline(&rows));
    }
    println!();
}

fn usage_exit() -> ! {
    eprintln!(
        "usage: repro [--json] [--jobs N] [--out PATH] [--quick] [--transport channel|tcp] \
         [table1|table2|table3|table4|table5|fig1|ablations|exhaustive|bench|load|chaos|saturate|all]\n\
         \x20      repro proc [--quick] [--json] [--jobs N] [--out PATH] [--dump-dir DIR] [--metrics PORT]\n\
         \x20      repro bench-check <path>\n\
         \x20      repro trace [<path>]\n\
         \x20      repro perf --against <path> [--quick] [--json] [--jobs N] [--out PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut jobs = 1usize;
    let mut quick = false;
    let mut transport = ac_cluster::TransportKind::Channel;
    let mut out: Option<PathBuf> = None;
    let mut against: Option<PathBuf> = None;
    let mut dump_dir = PathBuf::from(".");
    let mut metrics_port: Option<u16> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {}
            "--quick" => quick = true,
            "--dump-dir" => {
                let Some(p) = it.next() else {
                    eprintln!("--dump-dir requires a path");
                    usage_exit();
                };
                dump_dir = PathBuf::from(p);
            }
            "--metrics" => {
                let Some(p) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--metrics requires a port number");
                    usage_exit();
                };
                metrics_port = Some(p);
            }
            "--jobs" => {
                let Some(n) = it.next().and_then(|v| v.parse().ok()).filter(|&n| n > 0) else {
                    eprintln!("--jobs requires a positive integer");
                    usage_exit();
                };
                jobs = n;
            }
            "--out" => {
                let Some(p) = it.next() else {
                    eprintln!("--out requires a path");
                    usage_exit();
                };
                out = Some(PathBuf::from(p));
            }
            "--transport" => {
                let Some(t) = it
                    .next()
                    .as_deref()
                    .and_then(ac_cluster::TransportKind::parse)
                else {
                    eprintln!("--transport requires `channel` or `tcp`");
                    usage_exit();
                };
                transport = t;
            }
            "--against" => {
                let Some(p) = it.next() else {
                    eprintln!("--against requires a path");
                    usage_exit();
                };
                against = Some(PathBuf::from(p));
            }
            _ if arg.starts_with("--") => {
                eprintln!("unknown flag `{arg}`");
                usage_exit();
            }
            _ => targets.push(arg),
        }
    }
    let id = targets.first().map(|s| s.as_str()).unwrap_or("all");

    // `perf --against <path>`: re-measure, diff, gate.
    if id == "perf" {
        let Some(against) = against else {
            eprintln!("perf requires --against <baseline path>");
            usage_exit();
        };
        let text = match std::fs::read_to_string(&against) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", against.display());
                std::process::exit(1);
            }
        };
        let (report, comparison, _) = match ac_harness::perf::perf_compare(quick, jobs, &text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
        let out = out.unwrap_or_else(|| PathBuf::from("PERF_comparison.json"));
        if let Err(e) = comparison.write(&out) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} ({} checks, {} failed)",
            out.display(),
            comparison.checks.len(),
            comparison.failed
        );
        if !comparison.passed() {
            eprintln!("counter-exact perf regression vs {}", against.display());
            std::process::exit(1);
        }
        return;
    }
    let out = out.unwrap_or_else(|| PathBuf::from("BENCH_baseline.json"));

    // `proc`: the multi-process sweep — spawn real node/client processes,
    // collect their exports, emit the schema-v5 baseline with "proc"
    // attribution entries and the open-loop proc saturation curve.
    if id == "proc" {
        let opts = ac_harness::procrun::ProcOptions {
            quick,
            dump_dir,
            metrics_port,
        };
        let (report, baseline) = match ac_harness::procrun::proc_baseline(quick, jobs, &opts) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("proc sweep failed: {e}");
                std::process::exit(1);
            }
        };
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
        if let Err(e) = baseline.write(&out) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} (schema v{})",
            out.display(),
            baseline.schema_version
        );
        if !report.all_matched() {
            eprintln!("some comparisons or safety audits did not pass");
            std::process::exit(1);
        }
        return;
    }

    // `bench-check <path>`: validate a written baseline and exit.
    if id == "bench-check" {
        let Some(path) = targets.get(1) else {
            eprintln!("bench-check requires the path of a baseline file");
            usage_exit();
        };
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match BenchBaseline::validate_json(&text) {
            Ok(()) => {
                println!(
                    "{path}: valid bench baseline (all seven Table-5 protocols present; \
                     schema v1-v5 with clean service/chaos/attribution/saturation sections)"
                );
                return;
            }
            Err(problems) => {
                for p in problems {
                    eprintln!("{path}: {p}");
                }
                std::process::exit(1);
            }
        }
    }

    // `trace [<path>]`: render the slowest-transaction timelines embedded
    // in a schema-v4 baseline's attribution section — where every
    // microsecond of the worst commits went, one line per lifecycle step,
    // in the same format the simulator's protocol traces print.
    if id == "trace" {
        let default_path = "BENCH_baseline.json".to_string();
        let path = targets.get(1).unwrap_or(&default_path);
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        // A raw cluster dump (written by `ac-client --obs-out` / `repro
        // proc`) renders directly: recompute the clock-aligned
        // attribution from the per-process exports it carries.
        if bytes.starts_with(&ac_obs::DUMP_MAGIC) {
            let dump = match ac_obs::ClusterDump::from_bytes(&bytes) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{path}: not a valid cluster dump: {e:?}");
                    std::process::exit(1);
                }
            };
            trace_dump(path, &dump);
            return;
        }
        let text = match String::from_utf8(bytes) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: neither a cluster dump nor UTF-8 JSON: {e}");
                std::process::exit(1);
            }
        };
        let v: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("{path}: not valid JSON: {e:?}");
                std::process::exit(1);
            }
        };
        let empty = Vec::new();
        let entries = v["attribution"]["entries"].as_array().unwrap_or(&empty);
        if entries.is_empty() {
            eprintln!(
                "{path}: no attribution section (schema v4, written by \
                 `repro load` / `repro chaos`) — nothing to trace"
            );
            std::process::exit(1);
        }
        for e in entries {
            let protocol = e["protocol"].as_str().unwrap_or("?");
            let transport = e["transport"].as_str().unwrap_or("?");
            let slowest = e["slowest"].as_array().unwrap_or(&empty);
            println!(
                "## {protocol} over {transport} — slowest {} of {} txns \
                 (coverage {:.0}%, e2e p50 {:.2} ms)",
                slowest.len(),
                e["txns"].as_u64().unwrap_or(0),
                e["coverage_pct"].as_f64().unwrap_or(0.0),
                e["e2e_p50_micros"].as_f64().unwrap_or(0.0) / 1e3,
            );
            for s in slowest {
                println!(
                    "\ntxn {:#x}: {:.2} ms end-to-end",
                    s["txn"].as_u64().unwrap_or(0),
                    s["e2e_micros"].as_f64().unwrap_or(0.0) / 1e3,
                );
                let rows: Vec<ac_sim::TimelineRow> = s["steps"]
                    .as_array()
                    .unwrap_or(&empty)
                    .iter()
                    .map(|step| {
                        ac_sim::TimelineRow::new(
                            format!("{:.2}ms", step["at_micros"].as_f64().unwrap_or(0.0) / 1e3),
                            step["actor"].as_str().unwrap_or("?"),
                            step["label"].as_str().unwrap_or("?"),
                        )
                    })
                    .collect();
                print!("{}", ac_sim::render_timeline(&rows));
            }
            println!();
        }
        return;
    }

    // `bench`: measure, print, and write the machine-readable baseline.
    // `load`: additionally run the live service sweep (schema v2).
    // `chaos`: additionally run the availability-under-failure sweep
    // (schema v3).
    if id == "bench" || id == "load" || id == "chaos" || id == "saturate" {
        let (report, baseline) = match id {
            "bench" => experiments::bench_baseline(jobs),
            "load" => experiments::load_baseline_with(quick, jobs, transport),
            "chaos" => experiments::chaos_baseline_with(quick, jobs, transport),
            _ => experiments::saturate_baseline_with(quick, jobs, transport),
        };
        if json {
            println!("{}", report.to_json());
        } else {
            println!("{}", report.render());
        }
        if let Err(e) = baseline.write(&out) {
            eprintln!("cannot write {}: {e}", out.display());
            std::process::exit(1);
        }
        eprintln!(
            "wrote {} (schema v{})",
            out.display(),
            baseline.schema_version
        );
        if !report.all_matched() {
            eprintln!("some comparisons or safety audits did not pass");
            std::process::exit(1);
        }
        return;
    }

    let Some(reports) = run_one(id, jobs) else {
        eprintln!(
            "unknown experiment `{id}`; expected one of \
             table1 table2 table3 table4 table5 fig1 ablations exhaustive bench load chaos \
             saturate trace perf all"
        );
        std::process::exit(2);
    };

    let mut failed = false;
    for r in &reports {
        if json {
            println!("{}", r.to_json());
        } else {
            println!("{}", r.render());
        }
        failed |= !r.all_matched();
    }
    if failed {
        eprintln!("some paper-vs-measured comparisons did not match");
        std::process::exit(1);
    }
}
