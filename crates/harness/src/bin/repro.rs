//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--json] [table1|table2|table3|table4|table5|fig1|ablations|all]
//! ```
//!
//! With no argument, runs everything. `--json` emits machine-readable
//! reports instead of aligned text.

use ac_harness::experiments;
use ac_harness::Report;

fn run_one(id: &str) -> Option<Vec<Report>> {
    Some(match id {
        "table1" => vec![experiments::table1(6, 2)],
        "table2" => vec![experiments::table2()],
        "table3" => vec![experiments::table3()],
        "table4" => vec![experiments::table4(6, 2)],
        "table5" => vec![experiments::table5(&[4, 6, 8, 10], &[1, 2, 3])],
        "fig1" => vec![experiments::fig1()],
        "ablations" => vec![experiments::ablations()],
        "all" => experiments::all(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let targets: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let id = targets.first().map(|s| s.as_str()).unwrap_or("all");

    let Some(reports) = run_one(id) else {
        eprintln!(
            "unknown experiment `{id}`; expected one of \
             table1 table2 table3 table4 table5 fig1 ablations all"
        );
        std::process::exit(2);
    };

    let mut failed = false;
    for r in &reports {
        if json {
            println!("{}", r.to_json());
        } else {
            println!("{}", r.render());
        }
        failed |= !r.all_matched();
    }
    if failed {
        eprintln!("some paper-vs-measured comparisons did not match");
        std::process::exit(1);
    }
}
