//! Plain-text table rendering and JSON serialization for experiment
//! results.

use serde::Serialize;

/// A rendered table: header + rows of strings, pre-formatted by the
/// experiment.
///
/// ```
/// use ac_harness::report::Table;
///
/// let mut t = Table::new("demo", &["protocol", "delays"]);
/// t.row(vec!["INBAC".into(), "2".into()]);
/// let text = t.render();
/// assert!(text.contains("## demo"));
/// assert!(text.contains("| INBAC"));
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = w[i] - c.chars().count();
                line.push_str(&format!(" {}{} |", c, " ".repeat(pad)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for width in &w {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// A full experiment report: tables plus free-form notes.
#[derive(Clone, Debug, Serialize, Default)]
pub struct Report {
    pub id: String,
    pub tables: Vec<Table>,
    pub notes: Vec<String>,
    /// Number of paper-vs-measured comparisons that matched / total.
    pub matched: usize,
    pub compared: usize,
}

impl Report {
    pub fn new(id: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            ..Default::default()
        }
    }

    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Record one paper-vs-measured comparison.
    pub fn compare(&mut self, matches: bool) -> &'static str {
        self.compared += 1;
        if matches {
            self.matched += 1;
            "ok"
        } else {
            "MISMATCH"
        }
    }

    pub fn all_matched(&self) -> bool {
        self.matched == self.compared
    }

    pub fn render(&self) -> String {
        let mut out = format!("# Experiment {}\n\n", self.id);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.compared > 0 {
            out.push_str(&format!(
                "paper-vs-measured: {}/{} rows match\n",
                self.matched, self.compared
            ));
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        let w: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(w.iter().all(|&x| x == w[0]), "{s}");
    }

    #[test]
    fn report_tracks_comparisons() {
        let mut r = Report::new("t");
        assert_eq!(r.compare(true), "ok");
        assert_eq!(r.compare(false), "MISMATCH");
        assert!(!r.all_matched());
        assert!(r.render().contains("1/2"));
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("x");
        let mut t = Table::new("demo", &["c"]);
        t.row(vec!["v".into()]);
        r.table(t);
        let j = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["tables"][0]["rows"][0][0], "v");
    }
}
