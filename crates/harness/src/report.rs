//! Plain-text table rendering and JSON serialization for experiment
//! results, plus the machine-readable bench baseline
//! ([`BenchBaseline`]) that seeds the repository's performance
//! trajectory (`BENCH_baseline.json`).

use serde::Serialize;

/// A rendered table: header + rows of strings, pre-formatted by the
/// experiment.
///
/// ```
/// use ac_harness::report::Table;
///
/// let mut t = Table::new("demo", &["protocol", "delays"]);
/// t.row(vec!["INBAC".into(), "2".into()]);
/// let text = t.render();
/// assert!(text.contains("## demo"));
/// assert!(text.contains("| INBAC"));
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Caption rendered above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows, one cell per header column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must have one cell per header column).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = w[i] - c.chars().count();
                line.push_str(&format!(" {}{} |", c, " ".repeat(pad)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for width in &w {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// A full experiment report: tables plus free-form notes.
#[derive(Clone, Debug, Serialize, Default)]
pub struct Report {
    /// Experiment identifier (`table1`, `fig1`, ...).
    pub id: String,
    /// Rendered tables, in presentation order.
    pub tables: Vec<Table>,
    /// Free-form notes appended after the tables.
    pub notes: Vec<String>,
    /// Number of paper-vs-measured comparisons that matched.
    pub matched: usize,
    /// Total paper-vs-measured comparisons recorded.
    pub compared: usize,
}

impl Report {
    /// An empty report for experiment `id`.
    pub fn new(id: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Append a free-form note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Record one paper-vs-measured comparison.
    pub fn compare(&mut self, matches: bool) -> &'static str {
        self.compared += 1;
        if matches {
            self.matched += 1;
            "ok"
        } else {
            "MISMATCH"
        }
    }

    /// Whether every recorded comparison matched.
    pub fn all_matched(&self) -> bool {
        self.matched == self.compared
    }

    /// Render tables, notes and the match summary as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("# Experiment {}\n\n", self.id);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.compared > 0 {
            out.push_str(&format!(
                "paper-vs-measured: {}/{} rows match\n",
                self.matched, self.compared
            ));
        }
        out
    }

    /// Serialize the whole report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// The protocol names a valid bench baseline must cover: the seven of the
/// paper's Table 5 (the headline comparison sweep, plus the logless D1CC
/// contender), derived from the canonical
/// [`ac_commit::protocols::ProtocolKind::table5`] list so a protocol
/// rename cannot desynchronize the emitter from the validator.
pub fn table5_protocol_names() -> [&'static str; 7] {
    ac_commit::protocols::ProtocolKind::table5().map(|k| k.name())
}

/// Per-protocol baseline numbers: the paper's two complexity measures of a
/// nice execution plus the simulator's wall-clock cost of producing it.
#[derive(Clone, Debug, Serialize)]
pub struct ProtocolBaseline {
    /// Display name of the protocol ([`table5_protocol_names`]).
    pub protocol: String,
    /// Number of processes of the measured nice execution.
    pub n: usize,
    /// Resilience bound of the measured nice execution.
    pub f: usize,
    /// Measured message delays to the last decision.
    pub delays: u64,
    /// Measured messages exchanged until the last decision.
    pub messages: u64,
    /// The paper's closed-form delay count at this `(n, f)`.
    pub formula_delays: u64,
    /// The paper's closed-form message count at this `(n, f)`.
    pub formula_messages: u64,
    /// Whether measured and closed-form complexity agree.
    pub matches_formula: bool,
    /// Mean wall-clock of one simulated nice execution, in microseconds.
    pub nice_run_micros: f64,
}

/// Explorer wall-clock baseline: the same exhaustive space explored
/// sequentially and with the parallel engine.
#[derive(Clone, Debug, Serialize)]
pub struct ExplorerBaseline {
    /// Protocol whose schedule space was explored.
    pub protocol: String,
    /// Number of processes.
    pub n: usize,
    /// Resilience bound.
    pub f: usize,
    /// Total executions in the explored space.
    pub executions: usize,
    /// Counterexamples found (must be 0 for a sound protocol).
    pub counterexamples: usize,
    /// Wall-clock of the sequential (`jobs = 1`) exploration, milliseconds.
    pub sequential_millis: f64,
    /// Wall-clock of the parallel exploration, milliseconds.
    pub parallel_millis: f64,
    /// Worker threads used by the parallel exploration.
    pub jobs: usize,
    /// `sequential_millis / parallel_millis` — ≥ 2 expected on a 4-core
    /// runner with `jobs = 4`; ~1 on a single core.
    pub speedup: f64,
}

/// The protocols the schema-v2 `service` section must cover: the
/// head-to-head comparison of the live load (2PC vs Paxos-Commit vs INBAC
/// vs D1CC — blocking baseline, consensus-upfront, indulgent fast-path,
/// logless one-phase). The single source of truth for that list: the
/// `load` sweep emitter, the chaos sweep emitter and the validator all
/// derive from it, so they cannot desynchronize.
pub fn service_protocols() -> [ac_commit::protocols::ProtocolKind; 4] {
    use ac_commit::protocols::ProtocolKind;
    [
        ProtocolKind::TwoPc,
        ProtocolKind::PaxosCommit,
        ProtocolKind::Inbac,
        ProtocolKind::D1cc,
    ]
}

/// Display names of [`service_protocols`] (what the validator matches on).
pub fn service_protocol_names() -> [&'static str; 4] {
    service_protocols().map(|k| k.name())
}

/// One measured cell of the live-service sweep: a (protocol, workload,
/// concurrency) combination served end-to-end by `ac-cluster`, reported in
/// wall-clock throughput and latency percentiles.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceEntry {
    /// Protocol display name.
    pub protocol: String,
    /// Workload name (`uniform`, `skewed`, `transfer`).
    pub workload: String,
    /// Closed-loop client threads (the concurrency level).
    pub clients: usize,
    /// Transactions fully served.
    pub txns: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Transactions that hit the client stall alarm (must be 0).
    pub stalled: usize,
    /// Committed transactions per second of the load phase.
    pub throughput_tps: f64,
    /// Median latency, microseconds (submit → all `n` decisions).
    pub p50_micros: f64,
    /// 90th-percentile latency, microseconds.
    pub p90_micros: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_micros: f64,
    /// 99.9th-percentile latency, microseconds — the straggler tail the
    /// flight recorder explains (optional: baselines written before the
    /// observability layer lack it).
    pub p999_micros: Option<f64>,
    /// Maximum latency, microseconds.
    pub max_micros: f64,
    /// Safety violations found by the post-run audit (must be 0).
    pub safety_violations: usize,
    /// Protocol messages that crossed node boundaries (counter-exact;
    /// optional — baselines written before the perf upgrade lack it).
    pub wire_messages: Option<usize>,
    /// `wire_messages / txns` — the per-transaction wire cost the perf
    /// gate diffs (counter-backed, so gated strictly; optional as above).
    pub wire_per_txn: Option<f64>,
    /// Node-loop wakeups that found no work (see
    /// `ac_cluster::ServiceOutcome::spurious_wakeups`; optional as above).
    pub spurious_wakeups: Option<usize>,
}

/// The chaos scenarios a schema-v3 `chaos` section must cover, per
/// protocol: the ISSUE-5 sweep axes. The single source of truth shared by
/// the `repro chaos` emitter and the validator.
pub fn chaos_scenario_names() -> [&'static str; 4] {
    [
        "crash-coordinator",
        "crash-participant",
        "partition-heal",
        "lossy-10",
    ]
}

/// One measured cell of the chaos sweep: a (protocol, scenario) pair run
/// through `ac-chaos` with availability bucketing against the fault
/// window.
#[derive(Clone, Debug, Serialize)]
pub struct ChaosEntry {
    /// Protocol display name.
    pub protocol: String,
    /// Scenario name ([`chaos_scenario_names`]).
    pub scenario: String,
    /// Transactions fully served.
    pub txns: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Transactions never resolved (must be 0: every fault in the sweep
    /// heals and recovery must drain the backlog).
    pub stalled: usize,
    /// Safety violations found by the post-run audit (must be 0 — the
    /// audit runs on every faulted execution).
    pub safety_violations: usize,
    /// Transactions first submitted inside the fault window.
    pub submitted_during_fault: usize,
    /// Of those, fully decided before the heal.
    pub decided_during_fault: usize,
    /// Transactions committed inside the window — the availability signal.
    pub committed_during_fault: usize,
    /// Transactions committed after the heal.
    pub committed_after_heal: usize,
    /// Committed-ops/s while the fault was live.
    pub ops_during_fault: f64,
    /// Committed-ops/s from the heal to the end of the run.
    pub ops_after_heal: f64,
    /// `100 · decided/submitted` within the window (100 if idle).
    pub availability_pct: f64,
    /// Transactions the client parked (blocked past its closed-loop wait).
    pub blocked: usize,
    /// Worst heal→decision gap of a blocked transaction, milliseconds.
    pub recovery_ms: f64,
    /// Client `Begin` re-sends.
    pub retries: usize,
    /// Envelopes the fault layer dropped.
    pub dropped_messages: usize,
    /// Protocol messages that crossed node boundaries.
    pub wire_messages: usize,
}

/// The schema-v3 `chaos` section: availability under failure, per
/// (protocol, scenario).
#[derive(Clone, Debug, Serialize)]
pub struct ChaosBaseline {
    /// Number of nodes (= shards).
    pub n: usize,
    /// Crash-resilience parameter.
    pub f: usize,
    /// Transport the sweep ran over (`"channel"` or `"tcp"`; `None` in
    /// baselines written before the transport seam existed = channel).
    pub transport: Option<String>,
    /// Wall-clock length of one virtual delay unit, microseconds.
    pub unit_micros: u64,
    /// Fault window start, virtual units.
    pub fault_from_units: u64,
    /// Fault window end (heal), virtual units.
    pub fault_until_units: u64,
    /// One entry per (protocol, scenario) pair.
    pub entries: Vec<ChaosEntry>,
}

/// The transports the schema-v4 `attribution` section must cover for
/// every Table-5 protocol.
pub fn attribution_transport_names() -> [&'static str; 2] {
    ["channel", "tcp"]
}

/// The five canonical attribution stages, telescoping order (re-exported
/// so emitter and validator share `ac-obs`'s single source of truth).
pub fn attribution_stage_names() -> [&'static str; 5] {
    ac_cluster::ATTRIBUTION_STAGES
}

/// One stage row of an attribution entry: where this slice of every
/// commit's end-to-end latency went.
#[derive(Clone, Debug, Serialize)]
pub struct AttributionStageEntry {
    /// Stage name ([`attribution_stage_names`]).
    pub stage: String,
    /// Median stage residency, microseconds.
    pub p50_micros: f64,
    /// 99th-percentile stage residency, microseconds.
    pub p99_micros: f64,
    /// Share of total end-to-end time spent in this stage, per cent.
    pub share_pct: f64,
}

/// One step of an embedded slowest-transaction timeline (the shape
/// `repro trace` renders through `ac_sim`'s shared timeline renderer).
#[derive(Clone, Debug, Serialize)]
pub struct TimelineStep {
    /// Microseconds past the run epoch.
    pub at_micros: f64,
    /// Acting entity (`client`, `P3`, ...).
    pub actor: String,
    /// What happened.
    pub label: String,
}

/// One reconstructed straggler: a slowest-covered transaction's full
/// lifecycle timeline, embedded in the baseline for `repro trace`.
#[derive(Clone, Debug, Serialize)]
pub struct SlowTxn {
    /// Transaction id.
    pub txn: u64,
    /// End-to-end latency, microseconds.
    pub e2e_micros: f64,
    /// Lifecycle steps in time order.
    pub steps: Vec<TimelineStep>,
}

/// One measured cell of the attribution sweep: a (protocol, transport)
/// pair's per-stage latency decomposition. Stage durations telescope to
/// the end-to-end latency exactly per transaction, so `share_sum_pct`
/// is 100 by construction whenever coverage is complete — the validator
/// gates it to ±5 %.
#[derive(Clone, Debug, Serialize)]
pub struct AttributionEntry {
    /// Protocol display name ([`table5_protocol_names`]).
    pub protocol: String,
    /// Transport name (`"channel"` or `"tcp"`).
    pub transport: String,
    /// Decided transactions considered.
    pub txns: usize,
    /// `100 · covered / considered` — share of decided transactions with
    /// a complete reconstructed timeline.
    pub coverage_pct: f64,
    /// Sum of the five stage shares (must be within [95, 105]).
    pub share_sum_pct: f64,
    /// Median end-to-end latency of the covered transactions, µs.
    pub e2e_p50_micros: f64,
    /// 99.9th-percentile end-to-end latency, µs.
    pub e2e_p999_micros: f64,
    /// Flight events lost to ring wrap-around (0 at sweep scale).
    pub dropped_events: u64,
    /// Worst clock-alignment uncertainty across the nodes whose exports
    /// fed this entry, microseconds (`None` for in-process entries — one
    /// clock, nothing to align; `Some` only for `"proc"` transport).
    pub alignment_max_uncertainty_micros: Option<f64>,
    /// One row per [`attribution_stage_names`] stage, same order.
    pub stages: Vec<AttributionStageEntry>,
    /// Slowest covered timelines, descending end-to-end latency.
    pub slowest: Vec<SlowTxn>,
}

/// The schema-v4 `attribution` section: per-stage latency decomposition
/// of every Table-5 protocol on both transports.
#[derive(Clone, Debug, Serialize)]
pub struct AttributionBaseline {
    /// Number of nodes (= shards).
    pub n: usize,
    /// Crash-resilience parameter.
    pub f: usize,
    /// Wall-clock length of one virtual delay unit, microseconds.
    pub unit_micros: u64,
    /// One entry per (protocol, transport) pair,
    /// [`table5_protocol_names`] × [`attribution_transport_names`].
    pub entries: Vec<AttributionEntry>,
}

/// One offered-load level of a saturation curve: the service run
/// open-loop (Poisson arrivals, bounded in-flight window, shedding) at a
/// fixed per-client arrival rate, with durability (WAL + group commit)
/// on.
#[derive(Clone, Debug, Serialize)]
pub struct SaturationStep {
    /// Step index within the curve (0-based, ascending offered load).
    pub step: usize,
    /// Poisson arrival rate per client, transactions/second.
    pub arrival_rate_per_client: f64,
    /// Nominal offered load, transactions/second (`clients × rate`).
    pub offered_tps: f64,
    /// Arrivals actually scheduled (submitted + shed).
    pub offered: usize,
    /// Arrivals dropped because the in-flight window was full.
    pub shed: usize,
    /// Transactions committed.
    pub committed: usize,
    /// Transactions aborted.
    pub aborted: usize,
    /// Transactions abandoned at the client deadline.
    pub stalled: usize,
    /// Committed transactions/second over the trimmed steady-state
    /// window (first/last 10 % of the run excluded).
    pub goodput_tps: f64,
    /// Median sojourn time (scheduled arrival → all decisions), µs.
    pub p50_sojourn_micros: f64,
    /// 99th-percentile sojourn time, µs.
    pub p99_sojourn_micros: f64,
    /// 99.9th-percentile sojourn time, µs.
    pub p999_sojourn_micros: f64,
    /// WAL force operations across all nodes (counter-exact).
    pub wal_forces: usize,
    /// `wal_forces / (committed + aborted)` — below 1 once group commit
    /// amortizes a force over a drained batch.
    pub forces_per_txn: f64,
    /// `wire_messages / txns` at this load level.
    pub wire_per_txn: f64,
    /// Safety violations found by the post-run audit (must be 0).
    pub safety_violations: usize,
}

/// The detected knee of a saturation curve: the first step whose goodput
/// gain over the previous step is < 10 % while p99 sojourn at least
/// doubles. When no step qualifies, the last step is recorded with
/// `detected = false` (the curve never saturated at the swept loads).
#[derive(Clone, Debug, Serialize)]
pub struct SaturationKnee {
    /// Index into the curve's `steps`.
    pub step: usize,
    /// Whether the knee criterion actually fired (`false` = fallback to
    /// the last step).
    pub detected: bool,
    /// Offered load at the knee, transactions/second.
    pub offered_tps: f64,
    /// Goodput at the knee, transactions/second.
    pub goodput_tps: f64,
    /// p99 sojourn at the knee, µs.
    pub p99_sojourn_micros: f64,
    /// Per-stage latency shares at the knee ([`attribution_stage_names`]
    /// order) — which layer saturates for this protocol.
    pub stage_shares: Vec<AttributionStageEntry>,
    /// Sum of the five stage shares at the knee (must be 100 ± 5).
    pub share_sum_pct: f64,
}

/// One saturation curve: offered load stepped over a fixed
/// (protocol, transport, n, clients) cell.
#[derive(Clone, Debug, Serialize)]
pub struct SaturationCurve {
    /// Protocol display name.
    pub protocol: String,
    /// Transport name (`"channel"` or `"tcp"`).
    pub transport: String,
    /// Number of nodes (= shards).
    pub n: usize,
    /// Open-loop client threads.
    pub clients: usize,
    /// Per-client in-flight window beyond which arrivals are shed.
    pub max_outstanding: usize,
    /// One entry per offered-load level, ascending.
    pub steps: Vec<SaturationStep>,
    /// The detected (or fallback) knee.
    pub knee: SaturationKnee,
}

/// The schema-v5 `saturation` section: open-loop offered-vs-goodput
/// curves with per-curve knee detection and per-stage attribution at the
/// knee.
#[derive(Clone, Debug, Serialize)]
pub struct SaturationBaseline {
    /// Crash-resilience parameter of every curve.
    pub f: usize,
    /// Wall-clock length of one virtual delay unit, microseconds.
    pub unit_micros: u64,
    /// One curve per swept (protocol, transport, n, clients) cell.
    pub curves: Vec<SaturationCurve>,
}

/// The schema-v2 `service` section: the live `ac-cluster` transaction
/// service measured under closed-loop load.
#[derive(Clone, Debug, Serialize)]
pub struct ServiceBaseline {
    /// Number of nodes (= shards).
    pub n: usize,
    /// Crash-resilience parameter.
    pub f: usize,
    /// Transport the sweep ran over (`"channel"` or `"tcp"`; `None` in
    /// baselines written before the transport seam existed = channel).
    pub transport: Option<String>,
    /// Wall-clock length of one virtual delay unit, microseconds.
    pub unit_micros: u64,
    /// One entry per (protocol, workload, concurrency) combination.
    pub entries: Vec<ServiceEntry>,
}

/// The machine-readable bench baseline written to `BENCH_baseline.json`.
///
/// This is the seed point of the repository's performance trajectory:
/// future PRs regenerate it and diff against the committed copy. Field
/// semantics are documented field-by-field in the README ("The bench
/// baseline" section).
///
/// Five schema versions exist: **v1** (`repro bench`) carries the
/// simulator numbers only; **v2** (legacy `repro load`) additionally
/// carries the live [`ServiceBaseline`]; **v3** (legacy `repro chaos`)
/// additionally carries the [`ChaosBaseline`]
/// availability-under-failure section; **v4** (current `repro load` /
/// `repro chaos`) additionally carries the [`AttributionBaseline`]
/// per-stage latency decomposition (the `chaos` section stays optional
/// in v4 — `repro load` emits without it, `repro chaos` with it);
/// **v5** (`repro saturate`) additionally carries the
/// [`SaturationBaseline`] open-loop offered-vs-goodput curves with knee
/// detection. The validator accepts all five.
#[derive(Clone, Debug, Serialize)]
pub struct BenchBaseline {
    /// Format version; bump on breaking layout changes.
    pub schema_version: u32,
    /// Worker threads the harness was invoked with.
    pub jobs: usize,
    /// Per-protocol nice-execution numbers, Table-5 order.
    pub protocols: Vec<ProtocolBaseline>,
    /// Explorer wall-clock numbers.
    pub explorer: ExplorerBaseline,
    /// Live-service numbers (schema v2+; `None` serializes as `null` in a
    /// v1 baseline).
    pub service: Option<ServiceBaseline>,
    /// Availability-under-failure numbers (schema v3; optional in v4).
    pub chaos: Option<ChaosBaseline>,
    /// Per-stage latency attribution (schema v4).
    pub attribution: Option<AttributionBaseline>,
    /// Open-loop saturation curves with knee detection (schema v5).
    pub saturation: Option<SaturationBaseline>,
}

impl BenchBaseline {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serialization cannot fail")
    }

    /// Write the baseline to `path` (pretty JSON, trailing newline).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Validate a serialized baseline: parses as JSON, carries a known
    /// schema version (1–5), covers **all seven Table-5 protocols**,
    /// and reports a non-empty, counterexample-free exploration. A v2+
    /// baseline must additionally carry a `service` section covering every
    /// [`service_protocol_names`] protocol at ≥ 2 concurrency levels with
    /// zero safety violations and zero stalls. A v3 baseline must
    /// additionally carry a `chaos` section covering every
    /// (service protocol × [`chaos_scenario_names`] scenario) pair, each
    /// with a clean safety audit and zero unresolved transactions. A v4
    /// baseline must additionally carry an `attribution` section covering
    /// every ([`table5_protocol_names`] ×
    /// [`attribution_transport_names`]) pair with positive coverage and
    /// stage shares summing to 100 ± 5 % (its `chaos` section is
    /// optional but validated when present). A v5 baseline must
    /// additionally carry a `saturation` section: non-empty curves, each
    /// with ≥ 2 safety-clean steps whose goodput never exceeds the
    /// offered load, a knee pointing into the steps, and knee stage
    /// shares summing to 100 ± 5 %. Returns a list of problems
    /// (empty = valid). This is what CI's bench-smoke, load-smoke,
    /// chaos-smoke, saturate-smoke and trace-smoke jobs run via
    /// `repro bench-check`.
    pub fn validate_json(text: &str) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let v: serde_json::Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => return Err(vec![format!("not valid JSON: {e:?}")]),
        };
        let schema = v["schema_version"].as_u64();
        if !matches!(schema, Some(1..=5)) {
            problems.push(format!(
                "schema_version must be 1, 2, 3, 4 or 5, got {:?}",
                v["schema_version"]
            ));
        }
        let empty = Vec::new();
        let protocols = v["protocols"].as_array().unwrap_or(&empty);
        for want in table5_protocol_names() {
            let found = protocols.iter().any(|p| {
                p["protocol"].as_str() == Some(want)
                    && p["delays"].as_u64().is_some()
                    && p["messages"].as_u64().is_some()
                    && p["nice_run_micros"].as_f64().is_some()
            });
            if !found {
                problems.push(format!(
                    "missing (or incomplete) Table-5 protocol entry: {want}"
                ));
            }
        }
        for p in protocols {
            if p["matches_formula"].as_bool() != Some(true) {
                problems.push(format!(
                    "protocol {:?} does not match its paper formula",
                    p["protocol"]
                ));
            }
        }
        let explorer = &v["explorer"];
        match explorer["executions"].as_u64() {
            Some(0) | None => problems.push("explorer.executions must be > 0".into()),
            Some(_) => {}
        }
        if explorer["counterexamples"].as_u64() != Some(0) {
            problems.push("explorer.counterexamples must be 0".into());
        }
        for key in ["sequential_millis", "parallel_millis", "speedup"] {
            if explorer[key].as_f64().is_none_or(|x| x <= 0.0) {
                problems.push(format!("explorer.{key} must be a positive number"));
            }
        }
        if matches!(schema, Some(2..=5)) {
            Self::validate_service(&v["service"], &mut problems);
        }
        if schema == Some(3)
            || (matches!(schema, Some(4) | Some(5))
                && !matches!(v["chaos"], serde_json::Value::Null))
        {
            Self::validate_chaos(&v["chaos"], &mut problems);
        }
        if matches!(schema, Some(4) | Some(5)) {
            Self::validate_attribution(&v["attribution"], &mut problems);
        }
        if schema == Some(5) {
            Self::validate_saturation(&v["saturation"], &mut problems);
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }

    /// The optional `transport` marker: absent/null (legacy baselines,
    /// meaning channel) or one of the known transport names —
    /// `"channel"` (in-process channels), `"tcp"` (in-process sockets)
    /// or `"proc"` (real multi-process cluster over sockets).
    fn check_transport(section: &str, t: &serde_json::Value, problems: &mut Vec<String>) {
        if matches!(t, serde_json::Value::Null) {
            return;
        }
        if !matches!(t.as_str(), Some("channel") | Some("tcp") | Some("proc")) {
            problems.push(format!(
                "{section}.transport must be \"channel\", \"tcp\" or \"proc\" when present, \
                 got {t:?}"
            ));
        }
    }

    /// Schema-v4 `attribution` section rules (see
    /// [`BenchBaseline::validate_json`]): full Table-5 × transport
    /// coverage, all five canonical stages per entry, positive timeline
    /// coverage, and stage shares summing to 100 ± 5 % of the measured
    /// end-to-end time.
    fn validate_attribution(attr: &serde_json::Value, problems: &mut Vec<String>) {
        let empty = Vec::new();
        let entries = attr["entries"].as_array().unwrap_or(&empty);
        if entries.is_empty() {
            problems.push("schema v4 requires a non-empty attribution.entries".into());
            return;
        }
        for protocol in table5_protocol_names() {
            for transport in attribution_transport_names() {
                if !entries.iter().any(|e| {
                    e["protocol"].as_str() == Some(protocol)
                        && e["transport"].as_str() == Some(transport)
                }) {
                    problems.push(format!(
                        "attribution must cover {protocol} over {transport}"
                    ));
                }
            }
        }
        for e in entries {
            let label = format!("attribution entry {:?}/{:?}", e["protocol"], e["transport"]);
            Self::check_transport("attribution", &e["transport"], problems);
            if let Some(u) = e["alignment_max_uncertainty_micros"].as_f64() {
                if u < 0.0 {
                    problems.push(format!(
                        "{label}: alignment_max_uncertainty_micros must be >= 0"
                    ));
                }
            }
            match e["share_sum_pct"].as_f64() {
                Some(s) if (95.0..=105.0).contains(&s) => {}
                other => problems.push(format!(
                    "{label}: stage shares must sum to 100 ± 5 % of the \
                     end-to-end time, got {other:?}"
                )),
            }
            if e["coverage_pct"].as_f64().is_none_or(|c| c <= 0.0) {
                problems.push(format!(
                    "{label}: coverage_pct must be positive (no transaction \
                     reconstructed means nothing was attributed)"
                ));
            }
            if e["e2e_p50_micros"].as_f64().is_none_or(|x| x <= 0.0) {
                problems.push(format!("{label}: e2e_p50_micros must be positive"));
            }
            let stage_rows = e["stages"].as_array().unwrap_or(&empty);
            for want in attribution_stage_names() {
                let found = stage_rows.iter().any(|s| {
                    s["stage"].as_str() == Some(want)
                        && s["share_pct"].as_f64().is_some_and(|x| x >= 0.0)
                        && s["p50_micros"].as_f64().is_some_and(|x| x >= 0.0)
                });
                if !found {
                    problems.push(format!("{label}: missing (or malformed) stage {want}"));
                }
            }
        }
    }

    /// Schema-v5 `saturation` section rules (see
    /// [`BenchBaseline::validate_json`]): non-empty curves, each with at
    /// least two safety-clean steps, goodput bounded by the offered load,
    /// ordered sojourn percentiles, a knee pointing into the steps and
    /// knee stage shares summing to 100 ± 5 %. Protocol coverage is not
    /// gated here — the `--quick` smoke legitimately sweeps one protocol;
    /// the perf gate checks the committed baseline's full coverage.
    fn validate_saturation(sat: &serde_json::Value, problems: &mut Vec<String>) {
        let empty = Vec::new();
        let curves = sat["curves"].as_array().unwrap_or(&empty);
        if curves.is_empty() {
            problems.push("schema v5 requires a non-empty saturation.curves".into());
            return;
        }
        for c in curves {
            let label = format!(
                "saturation curve {:?}/{:?}/n{:?}/c{:?}",
                c["protocol"], c["transport"], c["n"], c["clients"]
            );
            Self::check_transport("saturation", &c["transport"], problems);
            let steps = c["steps"].as_array().unwrap_or(&empty);
            if steps.len() < 2 {
                problems.push(format!(
                    "{label}: a curve needs >= 2 offered-load steps to show a shape"
                ));
                continue;
            }
            for s in steps {
                let at = format!("{label} step {:?}", s["step"]);
                if s["safety_violations"].as_u64() != Some(0) {
                    problems.push(format!("{at}: safety_violations must be 0"));
                }
                if s["offered"].as_u64().is_none_or(|x| x == 0) {
                    problems.push(format!("{at}: offered must be > 0"));
                }
                let offered_tps = s["offered_tps"].as_f64();
                let goodput = s["goodput_tps"].as_f64();
                match (offered_tps, goodput) {
                    // Small multiplicative slack: the nominal offered rate
                    // is clients × λ while goodput is measured over the
                    // trimmed window, so Poisson draws can nudge it past
                    // the nominal figure on an unsaturated step.
                    (Some(o), Some(g)) if o > 0.0 && g >= 0.0 && g <= o * 1.10 => {}
                    other => problems.push(format!(
                        "{at}: goodput_tps must be within [0, 1.1 × offered_tps], got {other:?}"
                    )),
                }
                let p50 = s["p50_sojourn_micros"].as_f64();
                let p99 = s["p99_sojourn_micros"].as_f64();
                let p999 = s["p999_sojourn_micros"].as_f64();
                match (p50, p99, p999) {
                    (Some(a), Some(b), Some(c)) if a <= b && b <= c => {}
                    other => problems.push(format!(
                        "{at}: sojourn percentiles must be numbers with p50 <= p99 <= p99.9, \
                         got {other:?}"
                    )),
                }
                if s["forces_per_txn"].as_f64().is_none_or(|x| x < 0.0) {
                    problems.push(format!("{at}: forces_per_txn must be >= 0"));
                }
            }
            let knee = &c["knee"];
            match knee["step"].as_u64() {
                Some(k) if (k as usize) < steps.len() => {}
                other => problems.push(format!(
                    "{label}: knee.step must index into the curve's steps, got {other:?}"
                )),
            }
            if knee["detected"].as_bool().is_none() {
                problems.push(format!("{label}: knee.detected must be a boolean"));
            }
            match knee["share_sum_pct"].as_f64() {
                Some(s) if (95.0..=105.0).contains(&s) => {}
                other => problems.push(format!(
                    "{label}: knee stage shares must sum to 100 ± 5 %, got {other:?}"
                )),
            }
            let shares = knee["stage_shares"].as_array().unwrap_or(&empty);
            for want in attribution_stage_names() {
                let found = shares.iter().any(|s| {
                    s["stage"].as_str() == Some(want)
                        && s["share_pct"].as_f64().is_some_and(|x| x >= 0.0)
                });
                if !found {
                    problems.push(format!(
                        "{label}: knee missing (or malformed) stage share {want}"
                    ));
                }
            }
        }
    }

    /// Schema-v3 `chaos` section rules (see [`BenchBaseline::validate_json`]).
    fn validate_chaos(chaos: &serde_json::Value, problems: &mut Vec<String>) {
        let empty = Vec::new();
        let entries = chaos["entries"].as_array().unwrap_or(&empty);
        if entries.is_empty() {
            problems.push("schema v3 requires a non-empty chaos.entries".into());
            return;
        }
        Self::check_transport("chaos", &chaos["transport"], problems);
        for protocol in service_protocol_names() {
            for scenario in chaos_scenario_names() {
                if !entries.iter().any(|e| {
                    e["protocol"].as_str() == Some(protocol)
                        && e["scenario"].as_str() == Some(scenario)
                }) {
                    problems.push(format!("chaos must measure {protocol} under {scenario}"));
                }
            }
        }
        for e in entries {
            let label = format!("chaos entry {:?}/{:?}", e["protocol"], e["scenario"]);
            if e["safety_violations"].as_u64() != Some(0) {
                problems.push(format!(
                    "{label}: safety audit must be clean on every faulted run"
                ));
            }
            if e["stalled"].as_u64() != Some(0) {
                problems.push(format!(
                    "{label}: every transaction must resolve after the heal"
                ));
            }
            for key in ["availability_pct", "ops_after_heal"] {
                if e[key].as_f64().is_none_or(|x| x < 0.0) {
                    problems.push(format!("{label}: {key} must be a non-negative number"));
                }
            }
            if e["txns"].as_u64().is_none_or(|x| x == 0) {
                problems.push(format!("{label}: txns must be > 0"));
            }
        }
    }

    /// Schema-v2 `service` section rules (see [`BenchBaseline::validate_json`]).
    fn validate_service(service: &serde_json::Value, problems: &mut Vec<String>) {
        let empty = Vec::new();
        let entries = service["entries"].as_array().unwrap_or(&empty);
        if entries.is_empty() {
            problems.push("schema v2 requires a non-empty service.entries".into());
            return;
        }
        Self::check_transport("service", &service["transport"], problems);
        for want in service_protocol_names() {
            let mut clients: Vec<u64> = entries
                .iter()
                .filter(|e| e["protocol"].as_str() == Some(want))
                .filter_map(|e| e["clients"].as_u64())
                .collect();
            clients.sort_unstable();
            clients.dedup();
            if clients.len() < 2 {
                problems.push(format!(
                    "service must measure {want} at >= 2 concurrency levels, got {clients:?}"
                ));
            }
        }
        for e in entries {
            let label = format!(
                "service entry {:?}/{:?}/c{:?}",
                e["protocol"], e["workload"], e["clients"]
            );
            if e["safety_violations"].as_u64() != Some(0) {
                problems.push(format!("{label}: safety_violations must be 0"));
            }
            if e["stalled"].as_u64() != Some(0) {
                problems.push(format!("{label}: stalled must be 0"));
            }
            if e["throughput_tps"].as_f64().is_none_or(|x| x <= 0.0) {
                problems.push(format!("{label}: throughput_tps must be positive"));
            }
            let p50 = e["p50_micros"].as_f64();
            let p99 = e["p99_micros"].as_f64();
            match (p50, p99) {
                (Some(a), Some(b)) if a <= b => {}
                _ => problems.push(format!(
                    "{label}: p50_micros/p99_micros must be numbers with p50 <= p99"
                )),
            }
            // Optional perf fields (absent in pre-upgrade baselines): when
            // present they must at least be well-formed non-negative
            // numbers.
            for key in [
                "wire_per_txn",
                "wire_messages",
                "spurious_wakeups",
                "p999_micros",
            ] {
                if let Some(x) = e[key].as_f64() {
                    if x < 0.0 {
                        problems.push(format!("{label}: {key} must be >= 0"));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        let w: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(w.iter().all(|&x| x == w[0]), "{s}");
    }

    #[test]
    fn report_tracks_comparisons() {
        let mut r = Report::new("t");
        assert_eq!(r.compare(true), "ok");
        assert_eq!(r.compare(false), "MISMATCH");
        assert!(!r.all_matched());
        assert!(r.render().contains("1/2"));
    }

    fn sample_baseline() -> BenchBaseline {
        BenchBaseline {
            schema_version: 1,
            jobs: 4,
            protocols: table5_protocol_names()
                .iter()
                .map(|name| ProtocolBaseline {
                    protocol: name.to_string(),
                    n: 6,
                    f: 2,
                    delays: 2,
                    messages: 24,
                    formula_delays: 2,
                    formula_messages: 24,
                    matches_formula: true,
                    nice_run_micros: 12.5,
                })
                .collect(),
            explorer: ExplorerBaseline {
                protocol: "INBAC".into(),
                n: 4,
                f: 1,
                executions: 1744,
                counterexamples: 0,
                sequential_millis: 100.0,
                parallel_millis: 50.0,
                jobs: 4,
                speedup: 2.0,
            },
            service: None,
            chaos: None,
            attribution: None,
            saturation: None,
        }
    }

    fn sample_v2_baseline() -> BenchBaseline {
        let mut b = sample_baseline();
        b.schema_version = 2;
        let mut entries = Vec::new();
        for name in service_protocol_names() {
            for clients in [2usize, 8] {
                entries.push(ServiceEntry {
                    protocol: name.to_string(),
                    workload: "uniform".into(),
                    clients,
                    txns: 30,
                    committed: 28,
                    aborted: 2,
                    stalled: 0,
                    throughput_tps: 150.0,
                    p50_micros: 10_000.0,
                    p90_micros: 12_000.0,
                    p99_micros: 15_000.0,
                    p999_micros: (clients == 2).then_some(18_000.0),
                    max_micros: 20_000.0,
                    safety_violations: 0,
                    // One entry with perf fields, one without: both shapes
                    // must validate (pre-upgrade baselines lack them).
                    wire_messages: (clients == 2).then_some(300),
                    wire_per_txn: (clients == 2).then_some(10.0),
                    spurious_wakeups: (clients == 2).then_some(0),
                });
            }
        }
        b.service = Some(ServiceBaseline {
            n: 4,
            f: 1,
            // Legacy shape: pre-transport baselines carry no field here
            // and must keep validating.
            transport: None,
            unit_micros: 5_000,
            entries,
        });
        b
    }

    fn sample_v3_baseline() -> BenchBaseline {
        let mut b = sample_v2_baseline();
        b.schema_version = 3;
        let mut entries = Vec::new();
        for protocol in service_protocol_names() {
            for scenario in chaos_scenario_names() {
                entries.push(ChaosEntry {
                    protocol: protocol.to_string(),
                    scenario: scenario.to_string(),
                    txns: 40,
                    committed: 20,
                    aborted: 20,
                    stalled: 0,
                    safety_violations: 0,
                    submitted_during_fault: 12,
                    decided_during_fault: 10,
                    committed_during_fault: 3,
                    committed_after_heal: 9,
                    ops_during_fault: 15.0,
                    ops_after_heal: 60.0,
                    availability_pct: 83.3,
                    blocked: if protocol == "2PC" { 5 } else { 0 },
                    recovery_ms: 40.0,
                    retries: 6,
                    dropped_messages: 30,
                    wire_messages: 900,
                });
            }
        }
        b.chaos = Some(ChaosBaseline {
            n: 4,
            f: 1,
            transport: Some("tcp".into()),
            unit_micros: 5_000,
            fault_from_units: 10,
            fault_until_units: 50,
            entries,
        });
        b
    }

    fn sample_attribution_entry(protocol: &str, transport: &str) -> AttributionEntry {
        AttributionEntry {
            protocol: protocol.to_string(),
            transport: transport.to_string(),
            txns: 16,
            coverage_pct: 100.0,
            share_sum_pct: 100.0,
            e2e_p50_micros: 10_500.0,
            e2e_p999_micros: 22_000.0,
            dropped_events: 0,
            alignment_max_uncertainty_micros: (transport == "proc").then_some(35.0),
            stages: attribution_stage_names()
                .iter()
                .map(|s| AttributionStageEntry {
                    stage: s.to_string(),
                    p50_micros: 2_100.0,
                    p99_micros: 4_400.0,
                    share_pct: 20.0,
                })
                .collect(),
            slowest: vec![SlowTxn {
                txn: 0x42,
                e2e_micros: 22_000.0,
                steps: vec![
                    TimelineStep {
                        at_micros: 0.0,
                        actor: "client".into(),
                        label: "submit txn 0x42".into(),
                    },
                    TimelineStep {
                        at_micros: 22_000.0,
                        actor: "client".into(),
                        label: "all replies in".into(),
                    },
                ],
            }],
        }
    }

    fn sample_v4_baseline() -> BenchBaseline {
        let mut b = sample_v3_baseline();
        b.schema_version = 4;
        let mut entries = Vec::new();
        for protocol in table5_protocol_names() {
            for transport in attribution_transport_names() {
                entries.push(sample_attribution_entry(protocol, transport));
            }
        }
        b.attribution = Some(AttributionBaseline {
            n: 4,
            f: 1,
            unit_micros: 5_000,
            entries,
        });
        b
    }

    fn sample_saturation_step(step: usize, rate: f64) -> SaturationStep {
        SaturationStep {
            step,
            arrival_rate_per_client: rate,
            offered_tps: rate * 16.0,
            offered: 400,
            shed: if step > 2 { 40 } else { 0 },
            committed: 300,
            aborted: 50,
            stalled: 0,
            goodput_tps: rate * 16.0 * 0.8,
            p50_sojourn_micros: 10_000.0 * (step + 1) as f64,
            p99_sojourn_micros: 30_000.0 * (step + 1) as f64,
            p999_sojourn_micros: 45_000.0 * (step + 1) as f64,
            wal_forces: 120,
            forces_per_txn: 0.4,
            wire_per_txn: 10.0,
            safety_violations: 0,
        }
    }

    fn sample_v5_baseline() -> BenchBaseline {
        let mut b = sample_v4_baseline();
        b.schema_version = 5;
        let curves = table5_protocol_names()
            .iter()
            .map(|p| SaturationCurve {
                protocol: p.to_string(),
                transport: "channel".into(),
                n: 4,
                clients: 16,
                max_outstanding: 32,
                steps: (0..3)
                    .map(|i| sample_saturation_step(i, 25.0 * (1 << i) as f64))
                    .collect(),
                knee: SaturationKnee {
                    step: 2,
                    detected: true,
                    offered_tps: 1_600.0,
                    goodput_tps: 1_280.0,
                    p99_sojourn_micros: 90_000.0,
                    stage_shares: attribution_stage_names()
                        .iter()
                        .map(|s| AttributionStageEntry {
                            stage: s.to_string(),
                            p50_micros: 2_000.0,
                            p99_micros: 5_000.0,
                            share_pct: 20.0,
                        })
                        .collect(),
                    share_sum_pct: 100.0,
                },
            })
            .collect();
        b.saturation = Some(SaturationBaseline {
            f: 1,
            unit_micros: 5_000,
            curves,
        });
        b
    }

    #[test]
    fn v5_baseline_round_trips_and_validates() {
        let b = sample_v5_baseline();
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));
        // The quick-smoke shape — a single tcp curve — is first-class.
        let mut smoke = sample_v5_baseline();
        {
            let sat = smoke.saturation.as_mut().unwrap();
            sat.curves.truncate(1);
            sat.curves[0].transport = "tcp".into();
        }
        assert_eq!(BenchBaseline::validate_json(&smoke.to_json()), Ok(()));
    }

    #[test]
    fn v5_requires_a_saturation_section() {
        let mut b = sample_v5_baseline();
        b.saturation = None;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("saturation.curves")),
            "{problems:?}"
        );
    }

    #[test]
    fn v5_gates_knee_goodput_and_step_shape() {
        let mut b = sample_v5_baseline();
        {
            let sat = b.saturation.as_mut().unwrap();
            sat.curves[0].knee.step = 99; // out of range
            sat.curves[1].knee.share_sum_pct = 70.0;
            sat.curves[2].steps[1].goodput_tps = // goodput above offered
                sat.curves[2].steps[1].offered_tps * 2.0;
            sat.curves[3].steps[0].safety_violations = 1;
            sat.curves[4].steps.truncate(1); // curve with no shape
            sat.curves[5].knee.stage_shares.remove(2); // drop "wal"
        }
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        for needle in [
            "knee.step must index",
            "sum to 100 ± 5",
            "goodput_tps must be within",
            "safety_violations must be 0",
            ">= 2 offered-load steps",
            "missing (or malformed) stage share wal",
        ] {
            assert!(
                problems.iter().any(|p| p.contains(needle)),
                "missing {needle:?} in {problems:?}"
            );
        }
    }

    #[test]
    fn v4_baseline_round_trips_and_validates() {
        let b = sample_v4_baseline();
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));
        // The `repro load` shape — attribution present, chaos absent —
        // is a first-class v4 baseline too.
        let mut load_shaped = sample_v4_baseline();
        load_shaped.chaos = None;
        assert_eq!(BenchBaseline::validate_json(&load_shaped.to_json()), Ok(()));
    }

    #[test]
    fn proc_attribution_entries_ride_along_legally() {
        // Entries for the multi-process transport are extra coverage on
        // top of the required channel × tcp grid: they validate like any
        // other entry, carry the alignment-uncertainty marker, and an
        // unknown transport name is rejected.
        let mut b = sample_v4_baseline();
        let attr = b.attribution.as_mut().unwrap();
        attr.entries.push(sample_attribution_entry("2PC", "proc"));
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));

        let attr = b.attribution.as_mut().unwrap();
        attr.entries.last_mut().unwrap().transport = "carrier-pigeon".into();
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("carrier-pigeon")),
            "{problems:?}"
        );

        let attr = b.attribution.as_mut().unwrap();
        let last = attr.entries.last_mut().unwrap();
        last.transport = "proc".into();
        last.alignment_max_uncertainty_micros = Some(-1.0);
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("alignment_max_uncertainty_micros")),
            "{problems:?}"
        );
    }

    #[test]
    fn v4_requires_an_attribution_section() {
        let mut b = sample_v4_baseline();
        b.attribution = None;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("attribution.entries")),
            "{problems:?}"
        );
    }

    #[test]
    fn v4_gates_coverage_shares_and_full_protocol_transport_grid() {
        let mut b = sample_v4_baseline();
        {
            let attr = b.attribution.as_mut().unwrap();
            attr.entries
                .retain(|e| !(e.protocol == "INBAC" && e.transport == "tcp"));
            attr.entries[0].share_sum_pct = 80.0;
            attr.entries[1].coverage_pct = 0.0;
            attr.entries[2].stages.remove(2); // drop the "wal" stage row
        }
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("INBAC") && p.contains("tcp")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("100 ± 5")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("coverage_pct")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("missing (or malformed) stage wal")),
            "{problems:?}"
        );
    }

    #[test]
    fn v4_still_validates_a_dirty_chaos_section_when_present() {
        let mut b = sample_v4_baseline();
        b.chaos.as_mut().unwrap().entries[0].safety_violations = 1;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("safety audit")),
            "{problems:?}"
        );
    }

    #[test]
    fn baseline_round_trips_and_validates() {
        let b = sample_baseline();
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));
    }

    #[test]
    fn v3_baseline_round_trips_and_validates() {
        let b = sample_v3_baseline();
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));
    }

    #[test]
    fn v3_requires_full_scenario_coverage_and_clean_audits() {
        let mut b = sample_v3_baseline();
        {
            let chaos = b.chaos.as_mut().unwrap();
            chaos
                .entries
                .retain(|e| !(e.protocol == "INBAC" && e.scenario == "partition-heal"));
            chaos.entries[0].safety_violations = 1;
            chaos.entries[1].stalled = 3;
        }
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("INBAC") && p.contains("partition-heal")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("safety audit")),
            "{problems:?}"
        );
        assert!(
            problems
                .iter()
                .any(|p| p.contains("resolve after the heal")),
            "{problems:?}"
        );
    }

    #[test]
    fn v3_requires_a_chaos_section() {
        let mut b = sample_v3_baseline();
        b.chaos = None;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("chaos.entries")),
            "{problems:?}"
        );
        // ...while a v2 baseline without one stays valid.
        let v2 = sample_v2_baseline();
        assert_eq!(BenchBaseline::validate_json(&v2.to_json()), Ok(()));
    }

    #[test]
    fn baseline_validation_catches_missing_protocols() {
        let mut b = sample_baseline();
        b.protocols.retain(|p| p.protocol != "INBAC");
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("INBAC")), "{problems:?}");
    }

    #[test]
    fn baseline_validation_catches_formula_mismatches_and_violations() {
        let mut b = sample_baseline();
        b.protocols[0].matches_formula = false;
        b.explorer.counterexamples = 3;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("formula")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("counterexamples")),
            "{problems:?}"
        );
    }

    #[test]
    fn baseline_validation_rejects_garbage() {
        assert!(BenchBaseline::validate_json("not json").is_err());
        assert!(BenchBaseline::validate_json("{}").is_err());
    }

    #[test]
    fn v2_baseline_round_trips_and_validates() {
        let b = sample_v2_baseline();
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));
    }

    #[test]
    fn v2_requires_a_service_section() {
        let mut b = sample_v2_baseline();
        b.service = None;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("service.entries")),
            "{problems:?}"
        );
    }

    #[test]
    fn v2_requires_two_concurrency_levels_per_protocol() {
        let mut b = sample_v2_baseline();
        let svc = b.service.as_mut().unwrap();
        svc.entries
            .retain(|e| e.protocol != "INBAC" || e.clients == 2);
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems
                .iter()
                .any(|p| p.contains("INBAC") && p.contains("concurrency")),
            "{problems:?}"
        );
    }

    #[test]
    fn v2_rejects_safety_violations_and_stalls() {
        let mut b = sample_v2_baseline();
        {
            let svc = b.service.as_mut().unwrap();
            svc.entries[0].safety_violations = 1;
            svc.entries[1].stalled = 2;
        }
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("safety_violations")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("stalled")),
            "{problems:?}"
        );
    }

    #[test]
    fn v2_rejects_negative_perf_fields() {
        let json = sample_v2_baseline().to_json();
        // NB: the vendored serde_json prints `10.0_f64` as `10`.
        let corrupted = json.replace("\"wire_per_txn\": 10", "\"wire_per_txn\": -3");
        assert_ne!(corrupted, json, "fixture must carry a wire_per_txn");
        let problems = BenchBaseline::validate_json(&corrupted).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("wire_per_txn")),
            "{problems:?}"
        );
    }

    #[test]
    fn v1_baselines_stay_valid_without_service() {
        // The committed pre-upgrade format lacked the `service` (and now
        // `chaos`) keys entirely (not `"…": null`, which is what
        // serializing `None` produces) — strip them to validate the real
        // shape.
        let json = sample_baseline().to_json();
        let stripped = json
            .replace(",\n  \"service\": null", "")
            .replace(",\n  \"chaos\": null", "")
            .replace(",\n  \"attribution\": null", "");
        assert!(
            !stripped.contains("service")
                && !stripped.contains("chaos")
                && !stripped.contains("attribution")
                && stripped != json,
            "fixture no longer serializes null optional sections:\n{json}"
        );
        assert_eq!(BenchBaseline::validate_json(&stripped), Ok(()));
        // `"service": null` (a freshly emitted v1) must also stay valid.
        assert_eq!(BenchBaseline::validate_json(&json), Ok(()));
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("x");
        let mut t = Table::new("demo", &["c"]);
        t.row(vec!["v".into()]);
        r.table(t);
        let j = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["tables"][0]["rows"][0][0], "v");
    }
}
