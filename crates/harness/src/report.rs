//! Plain-text table rendering and JSON serialization for experiment
//! results, plus the machine-readable bench baseline
//! ([`BenchBaseline`]) that seeds the repository's performance
//! trajectory (`BENCH_baseline.json`).

use serde::Serialize;

/// A rendered table: header + rows of strings, pre-formatted by the
/// experiment.
///
/// ```
/// use ac_harness::report::Table;
///
/// let mut t = Table::new("demo", &["protocol", "delays"]);
/// t.row(vec!["INBAC".into(), "2".into()]);
/// let text = t.render();
/// assert!(text.contains("## demo"));
/// assert!(text.contains("| INBAC"));
/// ```
#[derive(Clone, Debug, Serialize)]
pub struct Table {
    /// Caption rendered above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows, one cell per header column.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// An empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must have one cell per header column).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = w[i] - c.chars().count();
                line.push_str(&format!(" {}{} |", c, " ".repeat(pad)));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for width in &w {
            sep.push_str(&format!("{}|", "-".repeat(width + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// A full experiment report: tables plus free-form notes.
#[derive(Clone, Debug, Serialize, Default)]
pub struct Report {
    /// Experiment identifier (`table1`, `fig1`, ...).
    pub id: String,
    /// Rendered tables, in presentation order.
    pub tables: Vec<Table>,
    /// Free-form notes appended after the tables.
    pub notes: Vec<String>,
    /// Number of paper-vs-measured comparisons that matched.
    pub matched: usize,
    /// Total paper-vs-measured comparisons recorded.
    pub compared: usize,
}

impl Report {
    /// An empty report for experiment `id`.
    pub fn new(id: impl Into<String>) -> Report {
        Report {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Append a table.
    pub fn table(&mut self, t: Table) {
        self.tables.push(t);
    }

    /// Append a free-form note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Record one paper-vs-measured comparison.
    pub fn compare(&mut self, matches: bool) -> &'static str {
        self.compared += 1;
        if matches {
            self.matched += 1;
            "ok"
        } else {
            "MISMATCH"
        }
    }

    /// Whether every recorded comparison matched.
    pub fn all_matched(&self) -> bool {
        self.matched == self.compared
    }

    /// Render tables, notes and the match summary as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("# Experiment {}\n\n", self.id);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        if self.compared > 0 {
            out.push_str(&format!(
                "paper-vs-measured: {}/{} rows match\n",
                self.matched, self.compared
            ));
        }
        out
    }

    /// Serialize the whole report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization cannot fail")
    }
}

/// The protocol names a valid bench baseline must cover: the six of the
/// paper's Table 5 (the headline comparison sweep), derived from the
/// canonical [`ac_commit::protocols::ProtocolKind::table5`] list so a
/// protocol rename cannot desynchronize the emitter from the validator.
pub fn table5_protocol_names() -> [&'static str; 6] {
    ac_commit::protocols::ProtocolKind::table5().map(|k| k.name())
}

/// Per-protocol baseline numbers: the paper's two complexity measures of a
/// nice execution plus the simulator's wall-clock cost of producing it.
#[derive(Clone, Debug, Serialize)]
pub struct ProtocolBaseline {
    /// Display name of the protocol ([`table5_protocol_names`]).
    pub protocol: String,
    /// Number of processes of the measured nice execution.
    pub n: usize,
    /// Resilience bound of the measured nice execution.
    pub f: usize,
    /// Measured message delays to the last decision.
    pub delays: u64,
    /// Measured messages exchanged until the last decision.
    pub messages: u64,
    /// The paper's closed-form delay count at this `(n, f)`.
    pub formula_delays: u64,
    /// The paper's closed-form message count at this `(n, f)`.
    pub formula_messages: u64,
    /// Whether measured and closed-form complexity agree.
    pub matches_formula: bool,
    /// Mean wall-clock of one simulated nice execution, in microseconds.
    pub nice_run_micros: f64,
}

/// Explorer wall-clock baseline: the same exhaustive space explored
/// sequentially and with the parallel engine.
#[derive(Clone, Debug, Serialize)]
pub struct ExplorerBaseline {
    /// Protocol whose schedule space was explored.
    pub protocol: String,
    /// Number of processes.
    pub n: usize,
    /// Resilience bound.
    pub f: usize,
    /// Total executions in the explored space.
    pub executions: usize,
    /// Counterexamples found (must be 0 for a sound protocol).
    pub counterexamples: usize,
    /// Wall-clock of the sequential (`jobs = 1`) exploration, milliseconds.
    pub sequential_millis: f64,
    /// Wall-clock of the parallel exploration, milliseconds.
    pub parallel_millis: f64,
    /// Worker threads used by the parallel exploration.
    pub jobs: usize,
    /// `sequential_millis / parallel_millis` — ≥ 2 expected on a 4-core
    /// runner with `jobs = 4`; ~1 on a single core.
    pub speedup: f64,
}

/// The machine-readable bench baseline written to `BENCH_baseline.json`.
///
/// This is the seed point of the repository's performance trajectory:
/// future PRs regenerate it and diff against the committed copy. Field
/// semantics are documented field-by-field in the README ("The bench
/// baseline" section).
#[derive(Clone, Debug, Serialize)]
pub struct BenchBaseline {
    /// Format version; bump on breaking layout changes.
    pub schema_version: u32,
    /// Worker threads the harness was invoked with.
    pub jobs: usize,
    /// Per-protocol nice-execution numbers, Table-5 order.
    pub protocols: Vec<ProtocolBaseline>,
    /// Explorer wall-clock numbers.
    pub explorer: ExplorerBaseline,
}

impl BenchBaseline {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline serialization cannot fail")
    }

    /// Write the baseline to `path` (pretty JSON, trailing newline).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Validate a serialized baseline: parses as JSON, carries a known
    /// schema version, covers **all six Table-5 protocols**, and reports a
    /// non-empty, counterexample-free exploration. Returns a list of
    /// problems (empty = valid). This is what CI's bench-smoke job runs via
    /// `repro bench-check`.
    pub fn validate_json(text: &str) -> Result<(), Vec<String>> {
        let mut problems = Vec::new();
        let v: serde_json::Value = match serde_json::from_str(text) {
            Ok(v) => v,
            Err(e) => return Err(vec![format!("not valid JSON: {e:?}")]),
        };
        if v["schema_version"].as_u64() != Some(1) {
            problems.push(format!(
                "schema_version must be 1, got {:?}",
                v["schema_version"]
            ));
        }
        let empty = Vec::new();
        let protocols = v["protocols"].as_array().unwrap_or(&empty);
        for want in table5_protocol_names() {
            let found = protocols.iter().any(|p| {
                p["protocol"].as_str() == Some(want)
                    && p["delays"].as_u64().is_some()
                    && p["messages"].as_u64().is_some()
                    && p["nice_run_micros"].as_f64().is_some()
            });
            if !found {
                problems.push(format!(
                    "missing (or incomplete) Table-5 protocol entry: {want}"
                ));
            }
        }
        for p in protocols {
            if p["matches_formula"].as_bool() != Some(true) {
                problems.push(format!(
                    "protocol {:?} does not match its paper formula",
                    p["protocol"]
                ));
            }
        }
        let explorer = &v["explorer"];
        match explorer["executions"].as_u64() {
            Some(0) | None => problems.push("explorer.executions must be > 0".into()),
            Some(_) => {}
        }
        if explorer["counterexamples"].as_u64() != Some(0) {
            problems.push("explorer.counterexamples must be 0".into());
        }
        for key in ["sequential_millis", "parallel_millis", "speedup"] {
            if explorer[key].as_f64().is_none_or(|x| x <= 0.0) {
                problems.push(format!("explorer.{key} must be a positive number"));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 3);
        let w: Vec<usize> = lines.iter().map(|l| l.chars().count()).collect();
        assert!(w.iter().all(|&x| x == w[0]), "{s}");
    }

    #[test]
    fn report_tracks_comparisons() {
        let mut r = Report::new("t");
        assert_eq!(r.compare(true), "ok");
        assert_eq!(r.compare(false), "MISMATCH");
        assert!(!r.all_matched());
        assert!(r.render().contains("1/2"));
    }

    fn sample_baseline() -> BenchBaseline {
        BenchBaseline {
            schema_version: 1,
            jobs: 4,
            protocols: table5_protocol_names()
                .iter()
                .map(|name| ProtocolBaseline {
                    protocol: name.to_string(),
                    n: 6,
                    f: 2,
                    delays: 2,
                    messages: 24,
                    formula_delays: 2,
                    formula_messages: 24,
                    matches_formula: true,
                    nice_run_micros: 12.5,
                })
                .collect(),
            explorer: ExplorerBaseline {
                protocol: "INBAC".into(),
                n: 4,
                f: 1,
                executions: 1744,
                counterexamples: 0,
                sequential_millis: 100.0,
                parallel_millis: 50.0,
                jobs: 4,
                speedup: 2.0,
            },
        }
    }

    #[test]
    fn baseline_round_trips_and_validates() {
        let b = sample_baseline();
        assert_eq!(BenchBaseline::validate_json(&b.to_json()), Ok(()));
    }

    #[test]
    fn baseline_validation_catches_missing_protocols() {
        let mut b = sample_baseline();
        b.protocols.retain(|p| p.protocol != "INBAC");
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(problems.iter().any(|p| p.contains("INBAC")), "{problems:?}");
    }

    #[test]
    fn baseline_validation_catches_formula_mismatches_and_violations() {
        let mut b = sample_baseline();
        b.protocols[0].matches_formula = false;
        b.explorer.counterexamples = 3;
        let problems = BenchBaseline::validate_json(&b.to_json()).unwrap_err();
        assert!(
            problems.iter().any(|p| p.contains("formula")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("counterexamples")),
            "{problems:?}"
        );
    }

    #[test]
    fn baseline_validation_rejects_garbage() {
        assert!(BenchBaseline::validate_json("not json").is_err());
        assert!(BenchBaseline::validate_json("{}").is_err());
    }

    #[test]
    fn json_round_trips() {
        let mut r = Report::new("x");
        let mut t = Table::new("demo", &["c"]);
        t.row(vec!["v".into()]);
        r.table(t);
        let j = r.to_json();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["id"], "x");
        assert_eq!(v["tables"][0]["rows"][0][0], "v");
    }
}
