//! `repro perf` — the performance-trajectory gate.
//!
//! Re-measures the live-service sweep and diffs it against a previously
//! **committed** baseline (`repro perf --against BENCH_baseline.json`),
//! separating two classes of numbers:
//!
//! * **Counter-exact** metrics — simulated message delays/counts, explorer
//!   counterexamples and execution counts, safety violations, client
//!   stalls, per-transaction wire-message cost and commit rates. These are
//!   either deterministic or counter-backed, so a regression FAILS the
//!   gate (commit rates and wire costs carry an explicit tolerance for
//!   scheduling noise; everything else is exact).
//! * **Wall-clock** metrics — throughput, latency percentiles, µs/run,
//!   explorer milliseconds. These depend on the box and its load, so
//!   drift only WARNS; the trajectory is tracked by refreshing the
//!   committed baseline deliberately, not by failing CI on a noisy run.
//!
//! CI's `perf-smoke` job runs this against the committed baseline on
//! every push and uploads the comparison artifact.

use serde::Serialize;

use crate::experiments::load_baseline;
use crate::report::{BenchBaseline, Report, Table};

/// Maximum tolerated drop in commit rate (percentage points) before the
/// counter-backed gate fails. Commit rates under contention are counters,
/// but thread interleaving moves them by several points run to run.
pub const COMMIT_RATE_TOLERANCE_PP: f64 = 25.0;

/// Maximum tolerated growth factor of the per-transaction wire-message
/// cost before the gate fails.
pub const WIRE_PER_TXN_TOLERANCE: f64 = 1.5;

/// One compared metric.
#[derive(Clone, Debug, Serialize)]
pub struct PerfCheck {
    /// `"exact"` (fails the gate) or `"warn"` (informational drift).
    pub gate: String,
    /// What was compared, e.g. `PaxosCommit/uniform/c16 commit rate`.
    pub key: String,
    /// The committed baseline's value.
    pub against: f64,
    /// The freshly measured value.
    pub current: f64,
    /// Whether the check passed (warn-gate checks always pass; their
    /// drift is in the numbers).
    pub ok: bool,
}

/// The machine-readable comparison artifact (uploaded by CI).
#[derive(Clone, Debug, Serialize)]
pub struct PerfComparison {
    /// Schema version of the baseline compared against.
    pub against_schema: u64,
    /// Every compared metric.
    pub checks: Vec<PerfCheck>,
    /// Number of failed counter-exact checks (0 = gate passes).
    pub failed: usize,
}

impl PerfComparison {
    /// Whether the counter-exact gate passed.
    pub fn passed(&self) -> bool {
        self.failed == 0
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("comparison serialization cannot fail")
    }

    /// Write the comparison to `path` (pretty JSON, trailing newline).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

fn f(v: &serde_json::Value) -> Option<f64> {
    // The vendored serde_json stores every number as f64.
    v.as_f64()
}

/// Re-measure (`quick` shrinks the sweep, `jobs` feeds the explorer leg)
/// and compare against the serialized baseline in `against_text`.
///
/// Returns the human-readable report, the machine-readable comparison and
/// the freshly measured baseline (so the caller can persist it if wanted).
pub fn perf_compare(
    quick: bool,
    jobs: usize,
    against_text: &str,
) -> Result<(Report, PerfComparison, BenchBaseline), String> {
    let against: serde_json::Value = serde_json::from_str(against_text)
        .map_err(|e| format!("--against file is not valid JSON: {e:?}"))?;
    let against_schema = against["schema_version"]
        .as_u64()
        .ok_or("--against file has no schema_version")?;

    let (_, current) = load_baseline(quick, jobs);
    let mut checks: Vec<PerfCheck> = Vec::new();

    // --- Counter-exact: simulator complexity per Table-5 protocol. ---
    let empty = Vec::new();
    let against_protocols = against["protocols"].as_array().unwrap_or(&empty);
    for p in &current.protocols {
        let base = against_protocols
            .iter()
            .find(|b| b["protocol"].as_str() == Some(p.protocol.as_str()));
        let Some(base) = base else {
            continue; // protocol added since the baseline: nothing to diff
        };
        for (metric, cur, b) in [
            ("delays", p.delays as f64, f(&base["delays"])),
            ("messages", p.messages as f64, f(&base["messages"])),
        ] {
            if let Some(b) = b {
                checks.push(PerfCheck {
                    gate: "exact".into(),
                    key: format!("{} nice-execution {metric}", p.protocol),
                    against: b,
                    current: cur,
                    ok: cur == b,
                });
            }
        }
        if let Some(b) = f(&base["nice_run_micros"]) {
            checks.push(PerfCheck {
                gate: "warn".into(),
                key: format!("{} µs/run", p.protocol),
                against: b,
                current: p.nice_run_micros,
                ok: true,
            });
        }
    }

    // --- Counter-exact: explorer soundness and space size. ---
    checks.push(PerfCheck {
        gate: "exact".into(),
        key: "explorer counterexamples".into(),
        against: f(&against["explorer"]["counterexamples"]).unwrap_or(0.0),
        current: current.explorer.counterexamples as f64,
        ok: current.explorer.counterexamples == 0,
    });
    if let Some(b) = f(&against["explorer"]["executions"]) {
        checks.push(PerfCheck {
            gate: "exact".into(),
            key: "explorer executions".into(),
            against: b,
            current: current.explorer.executions as f64,
            ok: current.explorer.executions as f64 == b,
        });
    }
    checks.push(PerfCheck {
        gate: "warn".into(),
        key: "explorer sequential ms".into(),
        against: f(&against["explorer"]["sequential_millis"]).unwrap_or(0.0),
        current: current.explorer.sequential_millis,
        ok: true,
    });

    // --- Chaos section (schema v3): the committed availability numbers
    // are not re-measured here (`repro chaos` owns that), but a baseline
    // whose faulted runs were not clean must never pass the gate. These
    // checks are static: both columns show the committed value (nothing
    // was re-measured), and `ok` demands it be zero.
    if against_schema >= 3 {
        let chaos_entries = against["chaos"]["entries"].as_array().unwrap_or(&empty);
        for e in chaos_entries {
            let label = format!(
                "chaos {}/{}",
                e["protocol"].as_str().unwrap_or("?"),
                e["scenario"].as_str().unwrap_or("?")
            );
            for (metric, key) in [
                (
                    "safety_violations",
                    "safety violations (committed, must be 0)",
                ),
                ("stalled", "unresolved txns (committed, must be 0)"),
            ] {
                let committed = f(&e[metric]).unwrap_or(f64::NAN);
                checks.push(PerfCheck {
                    gate: "exact".into(),
                    key: format!("{label} {key}"),
                    against: committed,
                    current: committed,
                    ok: e[metric].as_u64() == Some(0),
                });
            }
        }
    }

    // --- Attribution section (schema v4): like the chaos gates, static
    // checks on the committed numbers — a baseline whose stage shares do
    // not telescope to the end-to-end time (±5 %) or that covered no
    // transactions was produced by a broken flight recorder and must
    // never pass. ---
    if against_schema >= 4 {
        let attr_entries = against["attribution"]["entries"]
            .as_array()
            .unwrap_or(&empty);
        for e in attr_entries {
            let label = format!(
                "attribution {}/{}",
                e["protocol"].as_str().unwrap_or("?"),
                e["transport"].as_str().unwrap_or("?")
            );
            let share_sum = f(&e["share_sum_pct"]).unwrap_or(f64::NAN);
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("{label} stage-share sum (committed, 100±5%)"),
                against: share_sum,
                current: share_sum,
                ok: (95.0..=105.0).contains(&share_sum),
            });
            let coverage = f(&e["coverage_pct"]).unwrap_or(f64::NAN);
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("{label} timeline coverage (committed, >0%)"),
                against: coverage,
                current: coverage,
                ok: coverage > 0.0,
            });
        }
    }

    // --- Saturation section (schema v5): static checks on the committed
    // curves — every curve must carry an in-range knee whose stage shares
    // telescope, goodput must never exceed the offered load, and the
    // committed (full) baseline must cover all seven Table-5 protocols on
    // the channel transport. ---
    if against_schema >= 5 {
        let curves = against["saturation"]["curves"].as_array().unwrap_or(&empty);
        for protocol in crate::report::table5_protocol_names() {
            let covered = curves.iter().any(|c| {
                c["protocol"].as_str() == Some(protocol)
                    && c["transport"].as_str() == Some("channel")
            });
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("saturation covers {protocol} on channel (committed)"),
                against: 1.0,
                current: if covered { 1.0 } else { 0.0 },
                ok: covered,
            });
        }
        for c in curves {
            let label = format!(
                "saturation {}/n{}/c{}",
                c["protocol"].as_str().unwrap_or("?"),
                c["n"].as_u64().unwrap_or(0),
                c["clients"].as_u64().unwrap_or(0)
            );
            let steps = c["steps"].as_array().unwrap_or(&empty);
            let knee_step = c["knee"]["step"].as_u64().unwrap_or(u64::MAX);
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("{label} knee present (committed)"),
                against: steps.len() as f64,
                current: knee_step as f64,
                ok: (knee_step as usize) < steps.len(),
            });
            let share_sum = f(&c["knee"]["share_sum_pct"]).unwrap_or(f64::NAN);
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("{label} knee stage-share sum (committed, 100±5%)"),
                against: share_sum,
                current: share_sum,
                ok: (95.0..=105.0).contains(&share_sum),
            });
            for s in steps {
                let (o, g) = (
                    f(&s["offered_tps"]).unwrap_or(f64::NAN),
                    f(&s["goodput_tps"]).unwrap_or(f64::NAN),
                );
                checks.push(PerfCheck {
                    gate: "exact".into(),
                    key: format!(
                        "{label} x{} goodput <= offered (committed)",
                        s["step"].as_u64().unwrap_or(0)
                    ),
                    against: o,
                    current: g,
                    ok: g >= 0.0 && g <= o * 1.10,
                });
            }
        }
    }

    // --- Live WAL-force gate: re-measure a durable ×16 open-loop cell
    // per WAL-forcing protocol and demand forces/txn < 1 — the
    // group-commit invariant (one force per drained batch instead of one
    // per record, which cost ≥ 2 per txn). Counter-exact: `wal_forces`
    // counts force operations, `txns` fully served transactions. ---
    for kind in [
        ac_commit::protocols::ProtocolKind::TwoPc,
        ac_commit::protocols::ProtocolKind::PaxosCommit,
    ] {
        let out = crate::experiments::saturate_cell(
            kind,
            ac_cluster::TransportKind::Channel,
            4,
            8,
            16.0 * crate::experiments::SATURATION_BASE_RATE,
            std::time::Duration::from_millis(300),
        );
        let forces_per_txn = out.wal_forces as f64 / out.txns.max(1) as f64;
        let base = against["saturation"]["curves"]
            .as_array()
            .unwrap_or(&empty)
            .iter()
            .find(|c| c["protocol"].as_str() == Some(kind.name()))
            .and_then(|c| {
                c["steps"]
                    .as_array()?
                    .last()
                    .and_then(|s| f(&s["forces_per_txn"]))
            });
        checks.push(PerfCheck {
            gate: "exact".into(),
            key: format!("{} durable x16 WAL forces/txn (must be < 1)", kind.name()),
            against: base.unwrap_or(1.0),
            current: forces_per_txn,
            ok: forces_per_txn < 1.0,
        });
        checks.push(PerfCheck {
            gate: "exact".into(),
            key: format!("{} durable x16 safety violations", kind.name()),
            against: 0.0,
            current: out.violations.len() as f64,
            ok: out.violations.is_empty(),
        });
    }

    // --- Service entries: match on (protocol, workload, clients). ---
    let service = current
        .service
        .as_ref()
        .expect("load_baseline always measures the service");
    let against_entries = against["service"]["entries"].as_array().unwrap_or(&empty);
    for e in &service.entries {
        let label = format!("{}/{}/c{}", e.protocol, e.workload, e.clients);
        // Unconditional counter gates: the fresh run must be clean.
        checks.push(PerfCheck {
            gate: "exact".into(),
            key: format!("{label} safety violations"),
            against: 0.0,
            current: e.safety_violations as f64,
            ok: e.safety_violations == 0,
        });
        checks.push(PerfCheck {
            gate: "exact".into(),
            key: format!("{label} stalled clients"),
            against: 0.0,
            current: e.stalled as f64,
            ok: e.stalled == 0,
        });
        let base = against_entries.iter().find(|b| {
            b["protocol"].as_str() == Some(e.protocol.as_str())
                && b["workload"].as_str() == Some(e.workload.as_str())
                && b["clients"].as_u64() == Some(e.clients as u64)
        });
        let Some(base) = base else {
            continue; // concurrency level not in the baseline (quick vs full)
        };
        // Commit rate: counter-backed, gated with a noise tolerance.
        let cur_rate = 100.0 * e.committed as f64 / (e.txns.max(1)) as f64;
        if let (Some(bc), Some(bt)) = (f(&base["committed"]), f(&base["txns"])) {
            let base_rate = 100.0 * bc / bt.max(1.0);
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("{label} commit rate (±{COMMIT_RATE_TOLERANCE_PP}pp)"),
                against: base_rate,
                current: cur_rate,
                ok: cur_rate >= base_rate - COMMIT_RATE_TOLERANCE_PP,
            });
        }
        // Wire cost per transaction: counter-backed, bounded growth.
        if let (Some(bw), Some(cw)) = (f(&base["wire_per_txn"]), e.wire_per_txn) {
            checks.push(PerfCheck {
                gate: "exact".into(),
                key: format!("{label} wire msgs/txn (≤{WIRE_PER_TXN_TOLERANCE}x)"),
                against: bw,
                current: cw,
                ok: cw <= bw * WIRE_PER_TXN_TOLERANCE,
            });
        }
        // Wall-clock drift: informational.
        for (metric, cur, b) in [
            (
                "throughput t/s",
                e.throughput_tps,
                f(&base["throughput_tps"]),
            ),
            ("p50 µs", e.p50_micros, f(&base["p50_micros"])),
            ("p99 µs", e.p99_micros, f(&base["p99_micros"])),
            (
                "p99.9 µs",
                e.p999_micros.unwrap_or(f64::NAN),
                e.p999_micros.and(f(&base["p999_micros"])),
            ),
        ] {
            if let Some(b) = b {
                checks.push(PerfCheck {
                    gate: "warn".into(),
                    key: format!("{label} {metric}"),
                    against: b,
                    current: cur,
                    ok: true,
                });
            }
        }
    }

    let failed = checks.iter().filter(|c| !c.ok).count();
    let comparison = PerfComparison {
        against_schema,
        checks,
        failed,
    };

    // Render the report.
    let mut r = Report::new("perf");
    let mut gate = Table::new(
        "Counter-exact gates (a regression fails the run)",
        &["check", "baseline", "current", "verdict"],
    );
    let mut drift = Table::new(
        "Wall-clock drift (informational; refresh the committed baseline to move the trajectory)",
        &["metric", "baseline", "current", "ratio"],
    );
    for c in &comparison.checks {
        if c.gate == "exact" {
            let verdict = r.compare(c.ok).to_string();
            gate.row(vec![
                c.key.clone(),
                format!("{:.2}", c.against),
                format!("{:.2}", c.current),
                verdict,
            ]);
        } else {
            drift.row(vec![
                c.key.clone(),
                format!("{:.2}", c.against),
                format!("{:.2}", c.current),
                if c.against > 0.0 {
                    format!("{:.2}x", c.current / c.against)
                } else {
                    "-".into()
                },
            ]);
        }
    }
    r.table(gate);
    r.table(drift);
    r.note(format!(
        "{} counter-exact check(s), {} failed; commit-rate tolerance \
         {COMMIT_RATE_TOLERANCE_PP}pp, wire-cost tolerance {WIRE_PER_TXN_TOLERANCE}x.",
        comparison
            .checks
            .iter()
            .filter(|c| c.gate == "exact")
            .count(),
        comparison.failed,
    ));
    Ok((r, comparison, current))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A self-comparison must pass: measure quick, serialize, compare a
    /// second quick run against it. Commit rates move run to run, but
    /// within the gate's tolerance; everything counter-exact is stable.
    #[test]
    fn quick_self_comparison_passes_the_gate() {
        let _serial = crate::experiments::live_sweep_lock();
        let (_, baseline) = load_baseline(true, 2);
        let (report, comparison, _) =
            perf_compare(true, 2, &baseline.to_json()).expect("comparison runs");
        assert!(
            comparison.passed(),
            "self-comparison failed: {}",
            report.render()
        );
        assert!(report.all_matched());
        // The artifact round-trips as JSON.
        let v: serde_json::Value = serde_json::from_str(&comparison.to_json()).unwrap();
        assert_eq!(v["failed"].as_u64(), Some(0));
    }

    #[test]
    fn garbage_against_file_is_rejected() {
        assert!(perf_compare(true, 1, "not json").is_err());
    }
}
