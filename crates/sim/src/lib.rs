//! # ac-sim — deterministic discrete-event simulation kernel
//!
//! This crate provides the execution model of Guerraoui & Wang
//! (PODS 2017, *How Fast can a Distributed Transaction Commit?*):
//!
//! * `n` processes executing **instantaneous local steps**;
//! * reliable point-to-point channels (no loss, duplication, corruption);
//! * **timers** local to each process;
//! * at equal timestamps, **message deliveries are handled before timer
//!   timeouts** (the paper's Appendix A, remark (b));
//! * time is virtual: one *message-delay unit* `U` is [`time::U`] ticks.
//!
//! Protocol automata implement the [`Automaton`] trait and interact with the
//! world exclusively through [`Ctx`], which buffers [`Action`]s. The actual
//! event loop, delay assignment and fault injection live in the `ac-net`
//! crate; this crate is runtime-agnostic so the same automata also run on
//! real threads (`ac-runtime`).

#![deny(missing_docs)]

pub mod automaton;
pub mod event;
pub mod time;
pub mod trace;
pub mod wire;

pub use automaton::{Action, Automaton, Ctx};
pub use event::{Event, EventClass, EventKey, EventQueue, ScheduledEvent};
pub use time::{Time, U};
pub use trace::{render_timeline, TimelineRow, TraceEntry, TraceKind};
pub use wire::{Wire, WireError};

/// Identifier of a process. Internally processes are `0..n`; the paper's
/// `P1..Pn` correspond to ids `0..n-1` (display helpers add 1).
pub type ProcessId = usize;

/// Display helper: the paper's 1-based name for a process id.
pub fn pname(p: ProcessId) -> String {
    format!("P{}", p + 1)
}
