//! Binary wire encoding for protocol and service messages.
//!
//! The live service can run its node-to-node links over real sockets
//! (`ac-cluster`'s TCP transport); everything that crosses such a link
//! implements [`Wire`]. The format is deliberately small and fixed:
//!
//! * integers are **little-endian fixed width** (`u64` → 8 bytes, …);
//! * `usize` is encoded as `u64` (the simulator's `ProcessId` is `usize`);
//! * `bool` is one byte, `0` or `1` (any other value is a decode error);
//! * `Option<T>` is a presence byte followed by the payload;
//! * `Vec<T>` is a `u32` element count followed by the elements;
//! * enums are a leading tag byte followed by the variant's fields.
//!
//! Decoding consumes from the front of a `&[u8]` slice and never panics:
//! short input yields [`WireError::Truncated`], out-of-range tags or
//! malformed payloads yield [`WireError::Invalid`]. Framing (length
//! prefixes, partial reads, resynchronization) is the transport's job —
//! this module only defines the body encoding.
//!
//! The trait lives here, at the bottom of the crate graph, so that each
//! crate can implement it for the message types it owns (`ac-consensus`
//! for `PaxosMsg`, `ac-commit` for the protocol messages, `ac-txn` for
//! transactions) without orphan-rule friction.

use std::fmt;

/// Why a [`Wire::decode`] call failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was complete.
    Truncated,
    /// The input was long enough but malformed (bad tag, bad bool byte,
    /// length out of sanity range). Carries a static description of what
    /// was being decoded.
    Invalid(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire input truncated"),
            WireError::Invalid(what) => write!(f, "malformed wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sanity cap on decoded collection lengths: a `Vec` longer than this is
/// treated as garbage rather than attempted (prevents huge allocations
/// from corrupt or adversarial length fields).
pub const MAX_WIRE_ELEMS: u32 = 1 << 20;

/// A value with a binary wire encoding. See the module docs for the
/// format rules; implementations must guarantee that
/// `decode(encode(v)) == v` and that `decode` consumes exactly the bytes
/// `encode` produced (so values concatenate).
pub trait Wire: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decode a value from the front of `buf`, advancing it past the
    /// consumed bytes. On error `buf`'s position is unspecified.
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError>;

    /// Convenience: encode into a fresh buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Convenience: decode a value that must occupy `bytes` exactly;
    /// trailing bytes are an error.
    fn from_wire(mut bytes: &[u8]) -> Result<Self, WireError> {
        let v = Self::decode(&mut bytes)?;
        if bytes.is_empty() {
            Ok(v)
        } else {
            Err(WireError::Invalid("trailing bytes after value"))
        }
    }
}

/// Take `n` bytes off the front of `buf`, or fail with `Truncated`.
pub fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], WireError> {
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

macro_rules! int_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
                let raw = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(raw.try_into().unwrap()))
            }
        }
    )*};
}

int_wire!(u8, u16, u32, u64, i64);

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| WireError::Invalid("usize out of range"))
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Invalid("bool byte not 0 or 1")),
        }
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            _ => Err(WireError::Invalid("option byte not 0 or 1")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        for v in self {
            v.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)?;
        if n > MAX_WIRE_ELEMS {
            return Err(WireError::Invalid("vec length over sanity cap"));
        }
        let mut out = Vec::with_capacity(n.min(1024) as usize);
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u32).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let n = u32::decode(buf)?;
        if n > MAX_WIRE_ELEMS {
            return Err(WireError::Invalid("string length over sanity cap"));
        }
        let raw = take(buf, n as usize)?;
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Invalid("string not UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_and_concatenate() {
        let mut buf = Vec::new();
        42u8.encode(&mut buf);
        7u32.encode(&mut buf);
        u64::MAX.encode(&mut buf);
        (-5i64).encode(&mut buf);
        true.encode(&mut buf);
        Some(3usize).encode(&mut buf);
        vec![1u64, 2, 3].encode(&mut buf);
        "hi".to_string().encode(&mut buf);

        let mut s = &buf[..];
        assert_eq!(u8::decode(&mut s).unwrap(), 42);
        assert_eq!(u32::decode(&mut s).unwrap(), 7);
        assert_eq!(u64::decode(&mut s).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut s).unwrap(), -5);
        assert!(bool::decode(&mut s).unwrap());
        assert_eq!(Option::<usize>::decode(&mut s).unwrap(), Some(3));
        assert_eq!(Vec::<u64>::decode(&mut s).unwrap(), vec![1, 2, 3]);
        assert_eq!(String::decode(&mut s).unwrap(), "hi");
        assert!(s.is_empty());
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let buf = 12345u64.to_wire();
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert_eq!(u64::decode(&mut s), Err(WireError::Truncated));
        }
    }

    #[test]
    fn malformed_bytes_are_invalid_not_panics() {
        let mut s: &[u8] = &[2];
        assert!(matches!(bool::decode(&mut s), Err(WireError::Invalid(_))));
        // A vec length over the sanity cap must not attempt allocation.
        let mut buf = Vec::new();
        (MAX_WIRE_ELEMS + 1).encode(&mut buf);
        let mut s = &buf[..];
        assert!(matches!(
            Vec::<u64>::decode(&mut s),
            Err(WireError::Invalid(_))
        ));
    }

    #[test]
    fn from_wire_rejects_trailing_bytes() {
        let mut buf = 1u32.to_wire();
        buf.push(0);
        assert!(matches!(u32::from_wire(&buf), Err(WireError::Invalid(_))));
    }
}
