//! The event queue.
//!
//! Events are totally ordered by `(time, class, seq)` where the class order
//! encodes the paper's priority rule: at one timestamp a process first
//! handles its crash (it is gone), then message deliveries, then timeouts
//! (Appendix A remark (b): "a message delivery event has a higher priority
//! than a timeout event"). `seq` is an insertion counter making the order
//! total and the simulation deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{ProcessId, Time};

/// Priority class of an event at equal timestamps (lower = earlier).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum EventClass {
    /// Process crash takes effect.
    Crash = 0,
    /// The start (propose) stimulus.
    Start = 1,
    /// Message delivery.
    Deliver = 2,
    /// Timer timeout.
    Timer = 3,
}

/// What happens.
#[derive(Clone, Debug)]
pub enum Event<M> {
    /// The target process crashes (performs no further steps).
    Crash,
    /// The start (propose) stimulus.
    Start,
    /// A message is delivered to the target process.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Message payload.
        msg: M,
        /// Sequence number of the message on the wire (metering key);
        /// `None` for free self-messages.
        wire_seq: Option<u64>,
    },
    /// A previously set timer fires.
    Timer {
        /// Tag the automaton armed the timer with.
        tag: u32,
    },
}

impl<M> Event<M> {
    /// The priority class used to order this event among same-time events.
    pub fn class(&self) -> EventClass {
        match self {
            Event::Crash => EventClass::Crash,
            Event::Start => EventClass::Start,
            Event::Deliver { .. } => EventClass::Deliver,
            Event::Timer { .. } => EventClass::Timer,
        }
    }
}

/// Total ordering key for a scheduled event.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct EventKey {
    /// When the event occurs.
    pub at: Time,
    /// Priority class among events at the same time.
    pub class: EventClass,
    /// Insertion sequence number; makes the order total.
    pub seq: u64,
}

/// An event scheduled for a target process.
#[derive(Debug)]
pub struct ScheduledEvent<M> {
    /// Total-order key the queue popped this event by.
    pub key: EventKey,
    /// Process the event is addressed to.
    pub target: ProcessId,
    /// The event itself.
    pub event: Event<M>,
}

struct HeapEntry<M> {
    key: EventKey,
    target: ProcessId,
    event: Event<M>,
}

impl<M> PartialEq for HeapEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<M> Eq for HeapEntry<M> {}
impl<M> PartialOrd for HeapEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for HeapEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Deterministic priority queue of scheduled events.
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<HeapEntry<M>>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue with the sequence counter at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` for `target` at time `at`. Returns the assigned
    /// sequence number.
    pub fn push(&mut self, at: Time, target: ProcessId, event: Event<M>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = EventKey {
            at,
            class: event.class(),
            seq,
        };
        self.heap.push(Reverse(HeapEntry { key, target, event }));
        seq
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop().map(|Reverse(e)| ScheduledEvent {
            key: e.key,
            target: e.target,
            event: e.event,
        })
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.key.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deliveries_precede_timers_at_equal_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(Time::units(1), 0, Event::Timer { tag: 1 });
        q.push(
            Time::units(1),
            0,
            Event::Deliver {
                from: 1,
                msg: 9,
                wire_seq: Some(0),
            },
        );
        let first = q.pop().unwrap();
        assert!(matches!(first.event, Event::Deliver { .. }));
        let second = q.pop().unwrap();
        assert!(matches!(second.event, Event::Timer { tag: 1 }));
    }

    #[test]
    fn crash_precedes_everything_at_equal_time() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            Time::units(2),
            0,
            Event::Deliver {
                from: 1,
                msg: 9,
                wire_seq: Some(0),
            },
        );
        q.push(Time::units(2), 0, Event::Crash);
        assert!(matches!(q.pop().unwrap().event, Event::Crash));
    }

    #[test]
    fn fifo_within_class() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            Time::units(1),
            0,
            Event::Deliver {
                from: 1,
                msg: 1,
                wire_seq: Some(0),
            },
        );
        q.push(
            Time::units(1),
            0,
            Event::Deliver {
                from: 2,
                msg: 2,
                wire_seq: Some(1),
            },
        );
        let a = q.pop().unwrap();
        let b = q.pop().unwrap();
        match (a.event, b.event) {
            (Event::Deliver { msg: 1, .. }, Event::Deliver { msg: 2, .. }) => {}
            other => panic!("wrong order: {other:?}"),
        }
    }

    #[test]
    fn time_dominates_class() {
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(
            Time::units(2),
            0,
            Event::Deliver {
                from: 1,
                msg: 9,
                wire_seq: Some(0),
            },
        );
        q.push(Time::units(1), 0, Event::Timer { tag: 7 });
        assert!(matches!(q.pop().unwrap().event, Event::Timer { tag: 7 }));
    }

    #[test]
    fn peek_and_len() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::units(3), 0, Event::Timer { tag: 0 });
        assert_eq!(q.peek_time(), Some(Time::units(3)));
        assert_eq!(q.len(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_event() -> impl Strategy<Value = (u64, u8, usize)> {
        // (time units, class selector, target)
        (0u64..20, 0u8..3, 0usize..4)
    }

    proptest! {
        /// Draining the queue yields keys in non-decreasing total order,
        /// regardless of insertion order.
        #[test]
        fn drain_order_is_total_and_monotone(events in proptest::collection::vec(arb_event(), 1..60)) {
            let mut q: EventQueue<u8> = EventQueue::new();
            for &(t, class, target) in &events {
                let ev = match class {
                    0 => Event::Crash,
                    1 => Event::Deliver { from: 0, msg: 0, wire_seq: None },
                    _ => Event::Timer { tag: 0 },
                };
                q.push(Time::units(t), target, ev);
            }
            let mut last: Option<EventKey> = None;
            let mut popped = 0;
            while let Some(ev) = q.pop() {
                popped += 1;
                if let Some(prev) = last {
                    prop_assert!(prev < ev.key, "out of order: {prev:?} then {:?}", ev.key);
                }
                last = Some(ev.key);
            }
            prop_assert_eq!(popped, events.len());
        }

        /// Within one timestamp, every Crash precedes every Deliver, which
        /// precedes every Timer; ties resolve by insertion sequence.
        #[test]
        fn class_priority_is_respected_at_equal_times(classes in proptest::collection::vec(0u8..3, 2..40)) {
            let mut q: EventQueue<u8> = EventQueue::new();
            for &c in &classes {
                let ev = match c {
                    0 => Event::Crash,
                    1 => Event::Deliver { from: 0, msg: 0, wire_seq: None },
                    _ => Event::Timer { tag: 0 },
                };
                q.push(Time::units(5), 0, ev);
            }
            let mut seen_class = EventClass::Crash;
            let mut last_seq_in_class = None;
            while let Some(ev) = q.pop() {
                prop_assert!(ev.key.class >= seen_class);
                if ev.key.class > seen_class {
                    seen_class = ev.key.class;
                    last_seq_in_class = None;
                }
                if let Some(prev) = last_seq_in_class {
                    prop_assert!(ev.key.seq > prev, "FIFO within class violated");
                }
                last_seq_in_class = Some(ev.key.seq);
            }
        }
    }
}
