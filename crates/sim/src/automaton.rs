//! The protocol-automaton abstraction.
//!
//! A protocol (INBAC, 2PC, ...) is a deterministic state machine per process
//! reacting to three stimuli: its start event (the NBAC *propose*), message
//! deliveries and timer timeouts. All effects are emitted as [`Action`]s into
//! the [`Ctx`]; the surrounding runtime (simulated or threaded) interprets
//! them. This inversion keeps automata pure and lets the simulator meter
//! messages and delays exactly.

use crate::{ProcessId, Time};

/// An effect requested by an automaton.
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Send `msg` to process `to`. Sending to oneself is allowed; the
    /// runtime delivers self-messages at the same timestamp and does **not**
    /// count them as network messages (paper, footnote 10).
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message payload.
        msg: M,
    },
    /// Request a timer event carrying `tag` at absolute virtual time `at`.
    /// Setting several timers (even for the same tag) is allowed; each set
    /// fires exactly once. Automata are responsible for ignoring stale fires
    /// (the appendix pseudocode guards every timeout handler with a phase).
    SetTimer {
        /// Absolute virtual time at which the timer fires.
        at: Time,
        /// Tag passed back to [`Automaton::on_timer`].
        tag: u32,
    },
    /// Irrevocably output a decision value. A second decision is a protocol
    /// bug and the runtime panics (the paper's *integrity* property).
    Decide(u64),
}

/// Per-event execution context handed to an automaton.
///
/// `Ctx` buffers actions; the runtime drains them after the handler returns,
/// which models the paper's instantaneous local steps (every send performed
/// during one step carries the same timestamp).
///
/// ```
/// use ac_sim::{Action, Ctx, Time};
///
/// // Process 1 of 3 handles an event at time zero.
/// let mut ctx: Ctx<&str> = Ctx::new(Time::ZERO, 1, 3, false);
/// ctx.broadcast_others("vote");
/// ctx.set_timer(Time::units(2), 7);
/// let actions = ctx.take_actions();
/// assert_eq!(actions.len(), 3); // two sends (not to self) + one timer
/// assert!(matches!(actions[2], Action::SetTimer { tag: 7, .. }));
/// ```
#[derive(Debug)]
pub struct Ctx<M> {
    now: Time,
    me: ProcessId,
    n: usize,
    actions: Vec<Action<M>>,
    trace_enabled: bool,
    traces: Vec<String>,
}

impl<M> Ctx<M> {
    /// Create a context for one handler invocation of process `me` (of `n`)
    /// at virtual time `now`.
    pub fn new(now: Time, me: ProcessId, n: usize, trace_enabled: bool) -> Self {
        Ctx::with_actions(now, me, n, trace_enabled, Vec::new())
    }

    /// [`Ctx::new`] with a recycled actions buffer: `actions` is cleared
    /// and used as the backing storage, so a runtime that processes
    /// millions of events can hand the same allocation back in through
    /// every [`Ctx::take_actions`]/`with_actions` round trip instead of
    /// re-allocating per event (the live service's node loops do this).
    pub fn with_actions(
        now: Time,
        me: ProcessId,
        n: usize,
        trace_enabled: bool,
        mut actions: Vec<Action<M>>,
    ) -> Self {
        actions.clear();
        Ctx {
            now,
            me,
            n,
            actions,
            trace_enabled,
            traces: Vec::new(),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// The id of the executing process.
    #[inline]
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Total number of processes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Send `msg` to `to`.
    #[inline]
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Send `msg` to every process in `Ω`, including the sender itself
    /// (`forall q ∈ Ω` in the pseudocode). The self-copy is free.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for q in 0..self.n {
            self.actions.push(Action::Send {
                to: q,
                msg: msg.clone(),
            });
        }
    }

    /// Send `msg` to every process except the sender.
    pub fn broadcast_others(&mut self, msg: M)
    where
        M: Clone,
    {
        for q in 0..self.n {
            if q != self.me {
                self.actions.push(Action::Send {
                    to: q,
                    msg: msg.clone(),
                });
            }
        }
    }

    /// Arm a timer at absolute time `at` with `tag`.
    #[inline]
    pub fn set_timer(&mut self, at: Time, tag: u32) {
        self.actions.push(Action::SetTimer { at, tag });
    }

    /// Arm a timer `delta` ticks from now.
    #[inline]
    pub fn set_timer_after(&mut self, delta: u64, tag: u32) {
        let at = self.now + delta;
        self.actions.push(Action::SetTimer { at, tag });
    }

    /// Output the decision.
    #[inline]
    pub fn decide(&mut self, v: u64) {
        self.actions.push(Action::Decide(v));
    }

    /// Record a human-readable trace line (no-op unless tracing is enabled
    /// by the runtime; keeps nice-execution benches allocation-free).
    pub fn trace(&mut self, f: impl FnOnce() -> String) {
        if self.trace_enabled {
            let line = f();
            self.traces.push(line);
        }
    }

    /// Whether tracing is on (lets callers skip building trace data).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace_enabled
    }

    /// Drain buffered actions (runtime use).
    pub fn take_actions(&mut self) -> Vec<Action<M>> {
        std::mem::take(&mut self.actions)
    }

    /// Drain buffered trace lines (runtime use).
    pub fn take_traces(&mut self) -> Vec<String> {
        std::mem::take(&mut self.traces)
    }
}

/// A deterministic protocol automaton for one process.
///
/// Implementations must be deterministic functions of (state, stimulus):
/// the simulator relies on this for reproducibility, and the exhaustive
/// explorer in `ac-commit` relies on it for soundness.
pub trait Automaton {
    /// The protocol's message alphabet. Messages must be `Send` so whole
    /// worlds can be executed on worker threads (`ac-runtime` and the
    /// parallel explorer in `ac-commit` both rely on this).
    type Msg: Clone + std::fmt::Debug + Send;

    /// The start event. For commit protocols this is the NBAC `Propose`
    /// (the vote was passed to the constructor). All processes start
    /// spontaneously at time 0 — the "fair comparison" convention used by
    /// the paper's Table 5.
    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>);

    /// A message from `from` is delivered.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg, ctx: &mut Ctx<Self::Msg>);

    /// A previously set timer with `tag` fires.
    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<Self::Msg>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_buffers_actions_in_order() {
        let mut ctx: Ctx<u8> = Ctx::new(Time::ZERO, 1, 3, false);
        ctx.send(0, 7);
        ctx.set_timer(Time::units(1), 4);
        ctx.decide(1);
        let acts = ctx.take_actions();
        assert_eq!(acts.len(), 3);
        assert!(matches!(acts[0], Action::Send { to: 0, msg: 7 }));
        assert!(matches!(acts[1], Action::SetTimer { tag: 4, .. }));
        assert!(matches!(acts[2], Action::Decide(1)));
        assert!(ctx.take_actions().is_empty());
    }

    #[test]
    fn broadcast_includes_self_broadcast_others_does_not() {
        let mut ctx: Ctx<u8> = Ctx::new(Time::ZERO, 1, 3, false);
        ctx.broadcast(9);
        let targets: Vec<_> = ctx
            .take_actions()
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![0, 1, 2]);

        ctx.broadcast_others(9);
        let targets: Vec<_> = ctx
            .take_actions()
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, .. } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![0, 2]);
    }

    #[test]
    fn trace_disabled_is_silent() {
        let mut ctx: Ctx<u8> = Ctx::new(Time::ZERO, 0, 1, false);
        ctx.trace(|| "should not appear".into());
        assert!(ctx.take_traces().is_empty());

        let mut ctx: Ctx<u8> = Ctx::new(Time::ZERO, 0, 1, true);
        ctx.trace(|| "visible".into());
        assert_eq!(ctx.take_traces(), vec!["visible".to_string()]);
    }
}
