//! Virtual time.
//!
//! The paper measures time in *message delays*: if every message is received
//! exactly one unit of time after it was sent and local computation is
//! instantaneous, the number of message delays of an execution is its number
//! of time units (Lamport's measure, §2.4 of the paper). We keep a
//! finer-grained tick clock so that network-failure executions can delay
//! individual messages by non-integral amounts of `U`.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Ticks per message-delay unit (the known upper bound `U` on message
/// transmission delay in a synchronous execution).
pub const U: u64 = 1_000;

/// A point in virtual time, in ticks.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of virtual time.
    pub const ZERO: Time = Time(0);

    /// The time `k * U`, i.e. `k` message-delay units after time zero.
    #[inline]
    pub fn units(k: u64) -> Time {
        Time(k * U)
    }

    /// This instant expressed in whole delay units, rounding up.
    /// `Time(0) -> 0`, `Time(1..=U) -> 1`, ...
    #[inline]
    pub fn ceil_units(self) -> u64 {
        self.0.div_ceil(U)
    }

    /// Raw tick count.
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: u64) -> Time {
        Time(self.0 + rhs)
    }
}

impl AddAssign<u64> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Time> for Time {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Time) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as multiples of U where exact, e.g. "2U" or "2U+37".
        let (q, r) = (self.0 / U, self.0 % U);
        if r == 0 {
            write!(f, "{q}U")
        } else {
            write!(f, "{q}U+{r}")
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_round_trip() {
        assert_eq!(Time::units(3).ticks(), 3 * U);
        assert_eq!(Time::units(3).ceil_units(), 3);
    }

    #[test]
    fn ceil_units_rounds_up_partial_units() {
        assert_eq!(Time(1).ceil_units(), 1);
        assert_eq!(Time(U).ceil_units(), 1);
        assert_eq!(Time(U + 1).ceil_units(), 2);
        assert_eq!(Time::ZERO.ceil_units(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = Time::units(1) + 500;
        assert_eq!(t.ticks(), U + 500);
        assert_eq!(t - Time::units(1), 500);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Time::units(2)), "2U");
        assert_eq!(format!("{:?}", Time(2 * U + 37)), "2U+37");
    }
}
