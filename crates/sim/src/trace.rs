//! Execution traces.
//!
//! Traces serve the examples (`trace_inbac`) and debugging: every network
//! send/delivery, timer, decision and protocol-level note is recorded with
//! its timestamp when tracing is enabled. Metering does *not* go through
//! traces (the meters in `ac-net` are always on and allocation-light).

use crate::{ProcessId, Time};
use std::fmt;

/// What kind of step a trace entry records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message left the sender.
    Send {
        /// Sending process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Protocol-provided description of the message.
        desc: String,
    },
    /// A message reached its destination.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Protocol-provided description of the message.
        desc: String,
    },
    /// A timer fired.
    Timer {
        /// Process whose timer fired.
        at: ProcessId,
        /// Tag the timer was armed with.
        tag: u32,
    },
    /// A process decided.
    Decide {
        /// Deciding process.
        at: ProcessId,
        /// Decision value (1 = commit, 0 = abort for NBAC).
        value: u64,
    },
    /// A process crashed.
    Crash {
        /// Crashing process.
        at: ProcessId,
    },
    /// A protocol-level annotation.
    Note {
        /// Annotating process.
        at: ProcessId,
        /// Free-form text.
        text: String,
    },
}

/// A timestamped trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the step happened.
    pub time: Time,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] ", format!("{}", self.time))?;
        match &self.kind {
            TraceKind::Send { from, to, desc } => {
                write!(f, "P{} -> P{}  send {desc}", from + 1, to + 1)
            }
            TraceKind::Deliver { from, to, desc } => {
                write!(f, "P{} <- P{}  recv {desc}", to + 1, from + 1)
            }
            TraceKind::Timer { at, tag } => write!(f, "P{}        timer #{tag}", at + 1),
            TraceKind::Decide { at, value } => {
                write!(f, "P{}        DECIDE {value}", at + 1)
            }
            TraceKind::Crash { at } => write!(f, "P{}        CRASH", at + 1),
            TraceKind::Note { at, text } => write!(f, "P{}        {text}", at + 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_one_based_process_names() {
        let e = TraceEntry {
            time: Time::units(2),
            kind: TraceKind::Send {
                from: 0,
                to: 2,
                desc: "[V,1]".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("P1 -> P3"), "{s}");
        assert!(s.contains("2U"), "{s}");
    }

    #[test]
    fn display_decide_and_crash() {
        let d = TraceEntry {
            time: Time::ZERO,
            kind: TraceKind::Decide { at: 1, value: 1 },
        };
        assert!(d.to_string().contains("P2"));
        assert!(d.to_string().contains("DECIDE 1"));
        let c = TraceEntry {
            time: Time::ZERO,
            kind: TraceKind::Crash { at: 0 },
        };
        assert!(c.to_string().contains("CRASH"));
    }
}
