//! Execution traces.
//!
//! Traces serve the examples (`trace_inbac`) and debugging: every network
//! send/delivery, timer, decision and protocol-level note is recorded with
//! its timestamp when tracing is enabled. Metering does *not* go through
//! traces (the meters in `ac-net` are always on and allocation-light).

use crate::{ProcessId, Time};
use std::fmt;

/// What kind of step a trace entry records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// A message left the sender.
    Send {
        /// Sending process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Protocol-provided description of the message.
        desc: String,
    },
    /// A message reached its destination.
    Deliver {
        /// Sending process.
        from: ProcessId,
        /// Destination process.
        to: ProcessId,
        /// Protocol-provided description of the message.
        desc: String,
    },
    /// A timer fired.
    Timer {
        /// Process whose timer fired.
        at: ProcessId,
        /// Tag the timer was armed with.
        tag: u32,
    },
    /// A process decided.
    Decide {
        /// Deciding process.
        at: ProcessId,
        /// Decision value (1 = commit, 0 = abort for NBAC).
        value: u64,
    },
    /// A process crashed.
    Crash {
        /// Crashing process.
        at: ProcessId,
    },
    /// A protocol-level annotation.
    Note {
        /// Annotating process.
        at: ProcessId,
        /// Free-form text.
        text: String,
    },
}

/// A timestamped trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// When the step happened.
    pub time: Time,
    /// What happened.
    pub kind: TraceKind,
}

/// One row of a rendered timeline: a pre-formatted timestamp, the
/// acting entity, and what happened. This is the shared shape both the
/// simulator's [`TraceEntry`]s and the live service's flight-recorder
/// timelines print through (see [`render_timeline`]), so sim-vs-live
/// debugging of agreement failures reads one format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineRow {
    /// Pre-formatted timestamp (virtual units for sim, wall-clock for
    /// live), right-aligned into 8 columns.
    pub at: String,
    /// Acting entity, e.g. `P1`, `P1 -> P3`, `client`.
    pub actor: String,
    /// What happened.
    pub label: String,
}

impl TimelineRow {
    /// A row from its three parts.
    pub fn new(at: impl Into<String>, actor: impl Into<String>, label: impl Into<String>) -> Self {
        TimelineRow {
            at: at.into(),
            actor: actor.into(),
            label: label.into(),
        }
    }
}

impl fmt::Display for TimelineRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>8}] {:<9} {}", self.at, self.actor, self.label)
    }
}

/// Render rows one per line (the one timeline renderer for sim traces
/// and live flight-recorder timelines).
pub fn render_timeline(rows: &[TimelineRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&r.to_string());
        out.push('\n');
    }
    out
}

impl TraceEntry {
    /// This entry as a [`TimelineRow`].
    pub fn row(&self) -> TimelineRow {
        let (actor, label) = match &self.kind {
            TraceKind::Send { from, to, desc } => (
                format!("P{} -> P{}", from + 1, to + 1),
                format!("send {desc}"),
            ),
            TraceKind::Deliver { from, to, desc } => (
                format!("P{} <- P{}", to + 1, from + 1),
                format!("recv {desc}"),
            ),
            TraceKind::Timer { at, tag } => (format!("P{}", at + 1), format!("timer #{tag}")),
            TraceKind::Decide { at, value } => (format!("P{}", at + 1), format!("DECIDE {value}")),
            TraceKind::Crash { at } => (format!("P{}", at + 1), "CRASH".into()),
            TraceKind::Note { at, text } => (format!("P{}", at + 1), text.clone()),
        };
        TimelineRow::new(format!("{}", self.time), actor, label)
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_one_based_process_names() {
        let e = TraceEntry {
            time: Time::units(2),
            kind: TraceKind::Send {
                from: 0,
                to: 2,
                desc: "[V,1]".into(),
            },
        };
        let s = e.to_string();
        assert!(s.contains("P1 -> P3"), "{s}");
        assert!(s.contains("2U"), "{s}");
    }

    #[test]
    fn display_decide_and_crash() {
        let d = TraceEntry {
            time: Time::ZERO,
            kind: TraceKind::Decide { at: 1, value: 1 },
        };
        assert!(d.to_string().contains("P2"));
        assert!(d.to_string().contains("DECIDE 1"));
        let c = TraceEntry {
            time: Time::ZERO,
            kind: TraceKind::Crash { at: 0 },
        };
        assert!(c.to_string().contains("CRASH"));
    }

    #[test]
    fn render_timeline_is_display_per_line() {
        let entries = [
            TraceEntry {
                time: Time::units(1),
                kind: TraceKind::Timer { at: 0, tag: 7 },
            },
            TraceEntry {
                time: Time::units(2),
                kind: TraceKind::Decide { at: 1, value: 0 },
            },
        ];
        let rows: Vec<TimelineRow> = entries.iter().map(|e| e.row()).collect();
        let text = render_timeline(&rows);
        assert_eq!(
            text,
            entries.iter().map(|e| format!("{e}\n")).collect::<String>()
        );
        // Rows built by hand (the live path) render through the same
        // format.
        let live = TimelineRow::new("132µs", "client", "submit txn 0x1");
        assert!(live
            .to_string()
            .contains("[   132µs] client    submit txn 0x1"));
    }
}
