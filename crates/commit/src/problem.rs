//! The non-blocking atomic commit problem (paper, Definition 1).
//!
//! A protocol is defined by two events: `Propose(v)` with `v ∈ {0, 1}`
//! (vote "no"/"yes") and `Decide(v)`. An execution solves NBAC if it
//! satisfies:
//!
//! * **Validity** — a process decides 0 only if some process proposes 0 or a
//!   failure occurs; a process decides 1 only if no process proposes 0;
//! * **Termination** — every correct process eventually decides;
//! * **Agreement** — no two processes decide differently (uniform: the
//!   decisions of processes that later crash count).
//!
//! Integrity (no process decides twice) is enforced structurally by the
//! runtime, which panics on a second `Decide` (see `ac_net::World`).

use ac_sim::{Automaton, ProcessId};

/// A vote: `true` = 1 = "yes, willing to commit", `false` = 0 = "no".
pub type Vote = bool;

/// The decision value for "commit" (the kernel records decisions as `u64`).
pub const COMMIT: u64 = 1;
/// The decision value for "abort".
pub const ABORT: u64 = 0;

/// Encode a boolean commit verdict as a decision value.
#[inline]
pub fn decision_value(commit: bool) -> u64 {
    if commit {
        COMMIT
    } else {
        ABORT
    }
}

/// Uniform construction interface for every commit protocol in this crate.
///
/// A protocol instance is the automaton of **one** process; the runner
/// constructs `n` of them with ids `0..n`. All protocols start
/// spontaneously at time 0 with their vote already known — the paper's
/// fair-comparison convention (Table 5, footnote 13).
pub trait CommitProtocol: Automaton + Sized {
    /// Display name, e.g. `"INBAC"`.
    const NAME: &'static str;

    /// Build the automaton of process `me` among `n` processes with crash
    /// resilience parameter `f` (`1 ≤ f ≤ n−1`) and initial vote `vote`.
    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self;
}

/// Validate the paper's parameter constraints (§2.1): `n ≥ 2` processes and
/// `1 ≤ f ≤ n−1`. Panics otherwise — protocol constructors call this.
pub fn validate_params(n: usize, f: usize) {
    assert!(
        n >= 2,
        "the atomic commit problem needs at least two processes (n = {n})"
    );
    assert!(
        (1..n).contains(&f),
        "resilience must satisfy 1 <= f <= n-1 (n = {n}, f = {f})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_values() {
        assert_eq!(decision_value(true), COMMIT);
        assert_eq!(decision_value(false), ABORT);
        assert_ne!(COMMIT, ABORT);
    }

    #[test]
    fn params_accept_paper_range() {
        validate_params(2, 1);
        validate_params(5, 4);
        validate_params(10, 3);
    }

    #[test]
    #[should_panic(expected = "resilience")]
    fn params_reject_f_zero() {
        validate_params(3, 0);
    }

    #[test]
    #[should_panic(expected = "resilience")]
    fn params_reject_f_eq_n() {
        validate_params(3, 3);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn params_reject_single_process() {
        validate_params(1, 1);
    }
}
