//! Property checking of recorded executions.
//!
//! Given an execution's [`Outcome`], the vote vector and the protocol's
//! Table-1 [`Cell`], [`check`] verifies exactly the properties the protocol
//! promises for the execution's class:
//!
//! * failure-free executions must solve NBAC outright (every protocol in
//!   the paper guarantees this);
//! * crash-failure executions must satisfy the cell's CF property set;
//! * network-failure executions must satisfy the cell's NF property set.
//!
//! Termination is checked as "every correct process decided by the end of
//! the run"; callers must size the horizon generously (the [`crate::runner`]
//! does) so that "eventually" has had time to play out.

use ac_net::{ExecutionClass, Outcome};

use crate::problem::Vote;
use crate::taxonomy::{Cell, PropSet};

/// A property violation found in an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two processes decided differently.
    Agreement {
        /// The distinct decision values observed.
        values: Vec<u64>,
    },
    /// Someone decided 1 although a process voted 0.
    CommitValidity {
        /// The process that decided 1.
        decider: usize,
    },
    /// Someone decided 0 although all voted 1 and no failure occurred.
    AbortValidity {
        /// The process that decided 0.
        decider: usize,
    },
    /// A correct process did not decide.
    Termination {
        /// The correct processes left undecided.
        undecided: Vec<usize>,
    },
}

/// Result of checking one execution.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// How the execution was classified (failure-free / crash / network).
    pub class: ExecutionClass,
    /// The property set that was actually required and checked.
    pub required: PropSet,
    /// All violations found (empty = the execution satisfies its cell).
    pub violations: Vec<Violation>,
}

impl CheckReport {
    /// Whether no violation was found.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with a readable message if any violation was found.
    pub fn assert_ok(&self, context: &str) {
        assert!(
            self.ok(),
            "{context}: {:?} execution violates {:?}: {:?}",
            self.class,
            self.required,
            self.violations
        );
    }
}

/// Check `outcome` (run with `votes`) against the guarantees of `cell`.
pub fn check(outcome: &Outcome, votes: &[Vote], cell: Cell) -> CheckReport {
    let class = outcome.metrics().class;
    let required = match class {
        ExecutionClass::FailureFree => PropSet::AVT,
        ExecutionClass::CrashFailure => cell.cf,
        ExecutionClass::NetworkFailure => cell.nf,
    };
    let violations = check_props(outcome, votes, required, class);
    CheckReport {
        class,
        required,
        violations,
    }
}

/// Check an explicit property set (used by the explorer for fine-grained
/// reports).
pub fn check_props(
    outcome: &Outcome,
    votes: &[Vote],
    required: PropSet,
    class: ExecutionClass,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let all_yes = votes.iter().all(|&v| v);
    let failure = class != ExecutionClass::FailureFree;

    if required.has_agreement() {
        let values = outcome.decided_values();
        if values.len() > 1 {
            violations.push(Violation::Agreement { values });
        }
    }
    if required.has_validity() {
        for (p, d) in outcome.decisions.iter().enumerate() {
            match d {
                Some((_, 1)) if !all_yes => {
                    violations.push(Violation::CommitValidity { decider: p });
                }
                Some((_, 0)) if all_yes && !failure => {
                    violations.push(Violation::AbortValidity { decider: p });
                }
                _ => {}
            }
        }
    }
    if required.has_termination() {
        let undecided: Vec<usize> = (0..votes.len())
            .filter(|&p| !outcome.crashed[p] && outcome.decisions[p].is_none())
            .collect();
        if !undecided.is_empty() {
            violations.push(Violation::Termination { undecided });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use ac_net::MsgRecord;
    use ac_sim::{Time, U};

    fn outcome(
        decisions: Vec<Option<(Time, u64)>>,
        crashed: Vec<bool>,
        records: Vec<MsgRecord>,
    ) -> Outcome {
        Outcome {
            decisions,
            records,
            crashed,
            quiescent: true,
            end_time: Time::ZERO,
            trace: vec![],
        }
    }

    fn rec(delay_ticks: u64) -> MsgRecord {
        MsgRecord {
            seq: 0,
            from: 0,
            to: 1,
            sent: Time::ZERO,
            arrival: Time(delay_ticks),
        }
    }

    #[test]
    fn clean_commit_passes_everything() {
        let o = outcome(
            vec![Some((Time(U), 1)), Some((Time(U), 1))],
            vec![false, false],
            vec![rec(U)],
        );
        let r = check(&o, &[true, true], Cell::INDULGENT);
        assert!(r.ok());
        assert_eq!(r.class, ExecutionClass::FailureFree);
        assert_eq!(r.required, PropSet::AVT);
    }

    #[test]
    fn disagreement_detected() {
        let o = outcome(
            vec![Some((Time(U), 1)), Some((Time(U), 0))],
            vec![false, false],
            vec![],
        );
        let r = check(&o, &[true, true], Cell::INDULGENT);
        assert!(!r.ok());
        assert!(matches!(r.violations[0], Violation::Agreement { .. }));
    }

    #[test]
    fn commit_despite_no_vote_is_a_validity_violation() {
        let o = outcome(vec![Some((Time(U), 1)), None], vec![false, true], vec![]);
        let r = check(&o, &[true, false], Cell::INDULGENT);
        assert!(r
            .violations
            .contains(&Violation::CommitValidity { decider: 0 }));
    }

    #[test]
    fn abort_without_any_failure_violates_validity() {
        let o = outcome(
            vec![Some((Time(U), 0)), Some((Time(U), 0))],
            vec![false, false],
            vec![],
        );
        let r = check(&o, &[true, true], Cell::INDULGENT);
        assert_eq!(
            r.violations.len(),
            2,
            "one violation per illegitimate aborter"
        );
        assert!(r
            .violations
            .iter()
            .all(|v| matches!(v, Violation::AbortValidity { .. })));
    }

    #[test]
    fn abort_with_crash_is_legitimate() {
        let o = outcome(vec![Some((Time(U), 0)), None], vec![false, true], vec![]);
        let r = check(&o, &[true, true], Cell::INDULGENT);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn abort_with_late_message_is_legitimate() {
        let o = outcome(
            vec![Some((Time(U), 0)), Some((Time(U), 0))],
            vec![false, false],
            vec![rec(2 * U)], // a delayed message: network failure
        );
        let r = check(&o, &[true, true], Cell::INDULGENT);
        assert_eq!(r.class, ExecutionClass::NetworkFailure);
        assert!(r.ok(), "{:?}", r.violations);
    }

    #[test]
    fn missing_decision_of_live_process_violates_termination() {
        let o = outcome(
            vec![Some((Time(U), 0)), None],
            vec![false, false],
            vec![rec(U)],
        );
        // Make it a crash-failure class so AVT applies via the cell... use a
        // crash flag on P1 instead: here no crash, failure-free => NBAC.
        let r = check(&o, &[true, true], Cell::INDULGENT);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Termination { undecided } if undecided == &[1])));
    }

    #[test]
    fn weak_cells_tolerate_what_strong_cells_do_not() {
        // 2PC-like cell (AV, AV): termination not required under crashes.
        let cell = Cell::new(PropSet::AV, PropSet::AV);
        let o = outcome(vec![Some((Time(U), 0)), None], vec![true, false], vec![]);
        // P1 crashed (class = CrashFailure); P2 undecided — fine without T.
        let r = check(&o, &[true, true], cell);
        assert_eq!(r.class, ExecutionClass::CrashFailure);
        assert!(r.ok(), "{:?}", r.violations);
    }
}
