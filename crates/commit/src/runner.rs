//! Scenario construction and execution.
//!
//! A [`Scenario`] is a declarative, cloneable description of one execution:
//! votes, crash schedule, targeted delay rules and optional pre-GST chaos.
//! `Scenario::run::<P>()` instantiates protocol `P` for every process and
//! runs it in an `ac_net::World`.
//!
//! The module also hosts the **execution pool**: [`fan_out`] is a
//! deterministic parallel map over worker threads (results always come back
//! in input order, regardless of scheduling), and [`run_all`] fans a batch
//! of scenarios out over it. The exhaustive [`crate::explorer`] builds its
//! parallel engine on these primitives.

use ac_net::{
    Crash, DelayRule, FaultPlan, FixedDelay, GstDelay, Outcome, RuleDelay, World, WorldConfig,
};
use ac_sim::{ProcessId, Time, U};

use crate::problem::{CommitProtocol, Vote};
use crate::protocols::ProtocolKind;

/// Randomized pre-GST chaos (network-failure executions with no targeted
/// structure): delays uniform in `[U, max_units*U]` before `gst_units*U`,
/// exactly `U` afterwards.
#[derive(Copy, Clone, Debug)]
pub struct Chaos {
    /// Global stabilization time, in delay units.
    pub gst_units: u64,
    /// Maximum pre-GST delay, in delay units.
    pub max_units: u64,
    /// Seed of the deterministic delay stream.
    pub seed: u64,
}

/// A declarative execution scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound (maximum tolerated crashes).
    pub f: usize,
    /// Each process's vote.
    pub votes: Vec<Vote>,
    /// Crash schedule.
    pub crashes: Vec<(ProcessId, Crash)>,
    /// Targeted delay overrides, first match wins.
    pub rules: Vec<DelayRule>,
    /// Optional randomized pre-GST chaos (overrides `rules`).
    pub chaos: Option<Chaos>,
    /// Run horizon in delay units. The default (600) dwarfs every protocol's
    /// own schedule plus several consensus coordinator rotations.
    pub horizon_units: u64,
    /// Record a full execution trace.
    pub trace: bool,
}

impl Scenario {
    /// The nice execution: failure-free, every process votes 1, unit delays.
    pub fn nice(n: usize, f: usize) -> Scenario {
        Scenario {
            n,
            f,
            votes: vec![true; n],
            crashes: Vec::new(),
            rules: Vec::new(),
            chaos: None,
            horizon_units: 600,
            trace: false,
        }
    }

    /// Replace the vote vector.
    pub fn votes(mut self, votes: &[Vote]) -> Scenario {
        assert_eq!(votes.len(), self.n);
        self.votes = votes.to_vec();
        self
    }

    /// Make process `p` vote 0.
    pub fn vote_no(mut self, p: ProcessId) -> Scenario {
        self.votes[p] = false;
        self
    }

    /// Crash process `p` per `crash`.
    pub fn crash(mut self, p: ProcessId, crash: Crash) -> Scenario {
        self.crashes.push((p, crash));
        self
    }

    /// Add a targeted delay rule (makes the execution a network-failure one
    /// if the delay exceeds `U` and a matching message exists).
    pub fn rule(mut self, rule: DelayRule) -> Scenario {
        self.rules.push(rule);
        self
    }

    /// Enable randomized pre-GST chaos.
    pub fn chaos(mut self, chaos: Chaos) -> Scenario {
        self.chaos = Some(chaos);
        self
    }

    /// Enable trace recording.
    pub fn traced(mut self) -> Scenario {
        self.trace = true;
        self
    }

    /// Set the run horizon, in delay units.
    pub fn horizon(mut self, units: u64) -> Scenario {
        self.horizon_units = units;
        self
    }

    fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none(self.n);
        for &(p, c) in &self.crashes {
            plan = plan.with_crash(p, c);
        }
        plan
    }

    fn world_config(&self) -> WorldConfig {
        WorldConfig {
            horizon: Time::units(self.horizon_units),
            trace: self.trace,
        }
    }

    /// Run protocol `P` on this scenario.
    pub fn run<P: CommitProtocol>(&self) -> Outcome {
        assert_eq!(self.votes.len(), self.n);
        let procs: Vec<P> = (0..self.n)
            .map(|me| P::new(me, self.n, self.f, self.votes[me]))
            .collect();
        let delay: Box<dyn ac_net::DelayModel> = match self.chaos {
            None => Box::new(RuleDelay::over_unit(self.rules.clone())),
            Some(c) => Box::new(RuleDelay::new(
                self.rules.clone(),
                GstDelay::new(Time::units(c.gst_units), c.max_units * U, c.seed),
            )),
        };
        World::new(procs, delay, self.fault_plan(), self.world_config()).run()
    }

    /// Whether the schedule itself injects any failure (crash or delayed
    /// message rule/chaos). Note a delay rule of exactly `U` is not a
    /// failure.
    pub fn injects_failure(&self) -> bool {
        !self.crashes.is_empty() || self.chaos.is_some() || self.rules.iter().any(|r| r.delay > U)
    }
}

/// Run the nice execution of `P` and return its outcome.
pub fn run_nice<P: CommitProtocol>(n: usize, f: usize) -> Outcome {
    Scenario::nice(n, f).run::<P>()
}

/// Run `P` on explicit votes with unit delays and no failures.
///
/// ```
/// use ac_commit::protocols::Inbac;
///
/// // Three processes, all voting yes, one tolerated crash: INBAC commits
/// // everywhere after two message delays (Table 5's nice execution).
/// let out = ac_commit::run::<Inbac>(&[true, true, true], 1);
/// assert_eq!(out.decided_values(), vec![1]); // 1 = COMMIT
/// assert_eq!(out.metrics().delays, Some(2));
///
/// // One no-vote forces abort everywhere.
/// let out = ac_commit::run::<Inbac>(&[true, false, true], 1);
/// assert_eq!(out.decided_values(), vec![0]); // 0 = ABORT
/// ```
pub fn run<P: CommitProtocol>(votes: &[Vote], f: usize) -> Outcome {
    Scenario::nice(votes.len(), f).votes(votes).run::<P>()
}

/// Convenience: the `(delays, messages)` pair of a nice execution of `P` —
/// the paper's headline per-protocol numbers.
pub fn nice_complexity<P: CommitProtocol>(n: usize, f: usize) -> (u64, u64) {
    let out = run_nice::<P>(n, f);
    let m = out.metrics();
    let delays = m.delays.unwrap_or_else(|| {
        panic!(
            "{}: nice execution did not complete: {:?}",
            P::NAME,
            out.decisions
        )
    });
    (delays, m.messages as u64)
}

/// Deterministic parallel map: apply `f` to every item of `items` on up to
/// `jobs` worker threads and return the results **in input order**.
///
/// Workers pull `(index, item)` pairs from a shared crossbeam channel, so
/// load balances dynamically (a worker that drew cheap items steals the
/// remaining work of slower ones); the indexed results are then reassembled
/// in order, which makes the output independent of thread scheduling. With
/// `jobs <= 1` the map runs inline on the caller's thread with no channel
/// or thread overhead — bit-for-bit the same results either way.
///
/// ```
/// use ac_commit::runner::fan_out;
///
/// let squares = fan_out((0u64..8).collect(), 4, |x| x * x);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub fn fan_out<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    fan_out_stream(items.into_iter(), jobs, f)
}

/// Streaming [`fan_out`]: like the `Vec` version but pulls work items from
/// an iterator **lazily**, keeping at most `4 * jobs` items in flight.
/// This bounds memory to O(`jobs`) items (plus the results), so a space too
/// large to materialize — the parallel explorer enumerates schedule spaces
/// that grow exponentially in `n` — costs no more memory parallel than
/// sequential. Results are still returned in input order.
pub fn fan_out_stream<T, R, F>(items: impl Iterator<Item = T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if jobs <= 1 {
        return items.map(f).collect();
    }
    let mut items = items.enumerate();
    let window = 4 * jobs;

    let (work_tx, work_rx) = crossbeam::channel::unbounded();
    let (res_tx, res_rx) = crossbeam::channel::unbounded();

    let mut out: Vec<Option<R>> = Vec::new();
    let store = |i: usize, r: R, out: &mut Vec<Option<R>>| {
        if i >= out.len() {
            out.resize_with(i + 1, || None);
        }
        out[i] = Some(r);
    };
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let work_rx = work_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, item)) = work_rx.recv() {
                    if res_tx.send((i, f(item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        drop(work_rx);

        // Prime the queue, then pump: one new item per result received, so
        // at most `window` items are in flight at any moment.
        let mut in_flight = 0usize;
        for pair in items.by_ref().take(window) {
            let _ = work_tx.send(pair);
            in_flight += 1;
        }
        let mut exhausted = in_flight < window;
        while in_flight > 0 {
            let (i, r) = res_rx.recv().expect("workers alive while work remains");
            store(i, r, &mut out);
            in_flight -= 1;
            if !exhausted {
                match items.next() {
                    Some(pair) => {
                        let _ = work_tx.send(pair);
                        in_flight += 1;
                    }
                    None => exhausted = true,
                }
            }
        }
        drop(work_tx); // lets idle workers observe disconnection and exit
    });
    out.into_iter()
        .map(|r| r.expect("every index produced exactly one result"))
        .collect()
}

/// Run `kind` on every scenario over `jobs` worker threads, returning the
/// outcomes in scenario order. The convenience entry point for sweep-style
/// callers (harness experiments, benches); the explorer uses the
/// lower-level [`fan_out`] directly so it can check-and-discard outcomes
/// inside the workers instead of collecting them.
pub fn run_all(kind: ProtocolKind, scenarios: Vec<Scenario>, jobs: usize) -> Vec<Outcome> {
    fan_out(scenarios, jobs, |sc| kind.run(&sc))
}

// Re-exported for scenario construction ergonomics.
pub use ac_net::Crash as CrashSpec;

/// The delay model used by `Scenario` when no chaos is configured. Exposed
/// for documentation: rules over exact-unit delays.
pub type ScenarioDelay = RuleDelay<FixedDelay>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::TwoPc;

    #[test]
    fn nice_scenario_is_failure_free() {
        let sc = Scenario::nice(4, 1);
        assert!(!sc.injects_failure());
        assert_eq!(sc.votes, vec![true; 4]);
    }

    #[test]
    fn builders_compose() {
        let sc = Scenario::nice(4, 2)
            .vote_no(1)
            .crash(0, Crash::initially())
            .rule(DelayRule::from_process(2, 3 * U))
            .horizon(50)
            .traced();
        assert_eq!(sc.votes, vec![true, false, true, true]);
        assert!(sc.injects_failure());
        assert!(sc.trace);
        assert_eq!(sc.horizon_units, 50);
    }

    #[test]
    fn exact_unit_rules_are_not_failures() {
        // A rule with delay == U keeps the execution synchronous.
        let sc = Scenario::nice(3, 1).rule(DelayRule::from_process(0, U));
        assert!(!sc.injects_failure());
        let out = sc.run::<TwoPc>();
        assert_eq!(out.metrics().class, ac_net::ExecutionClass::FailureFree);
    }

    #[test]
    fn chaos_marks_failure_injection() {
        let sc = Scenario::nice(3, 1).chaos(Chaos {
            gst_units: 4,
            max_units: 3,
            seed: 1,
        });
        assert!(sc.injects_failure());
    }

    #[test]
    #[should_panic(expected = "nice execution did not complete")]
    fn nice_complexity_panics_on_blocking_outcomes() {
        // A scenario that blocks (coordinator crash in 2PC) has no
        // completion time; nice_complexity must fail loudly, not return
        // garbage. We fake it by running the helper against a hand-built
        // scenario through the same code path.
        struct Stuck;
        impl ac_sim::Automaton for Stuck {
            type Msg = ();
            fn on_start(&mut self, _: &mut ac_sim::Ctx<()>) {}
            fn on_message(&mut self, _: usize, _: (), _: &mut ac_sim::Ctx<()>) {}
            fn on_timer(&mut self, _: u32, _: &mut ac_sim::Ctx<()>) {}
        }
        impl crate::problem::CommitProtocol for Stuck {
            const NAME: &'static str = "stuck";
            fn new(_: usize, n: usize, f: usize, _: bool) -> Self {
                crate::problem::validate_params(n, f);
                Stuck
            }
        }
        let _ = nice_complexity::<Stuck>(3, 1);
    }

    #[test]
    fn run_helper_respects_votes() {
        let out = run::<TwoPc>(&[true, false, true], 1);
        assert_eq!(out.decided_values(), vec![0]);
    }

    #[test]
    fn scenarios_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Scenario>();
        assert_send::<ProtocolKind>();
    }

    #[test]
    fn fan_out_preserves_input_order() {
        // Uneven per-item cost: late items finish first on a free worker,
        // but the output must still be in input order.
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 2).collect();
        for jobs in [1, 2, 4, 7] {
            let got = fan_out(items.clone(), jobs, |x| {
                if x % 9 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                x * 2
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn fan_out_handles_degenerate_sizes() {
        assert_eq!(fan_out(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(fan_out(vec![5u8], 4, |x| x + 1), vec![6]);
        assert_eq!(fan_out(vec![1u8, 2], 64, |x| x), vec![1, 2]);
    }

    #[test]
    fn run_all_matches_individual_runs() {
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                let mut sc = Scenario::nice(4, 1);
                if i % 2 == 0 {
                    sc = sc.vote_no(i % 4);
                }
                if i % 3 == 0 {
                    sc = sc.crash(1, Crash::at(Time::units(1)));
                }
                sc
            })
            .collect();
        let seq: Vec<Vec<u64>> = scenarios
            .iter()
            .map(|sc| ProtocolKind::Inbac.run(sc).decided_values())
            .collect();
        let par: Vec<Vec<u64>> = run_all(ProtocolKind::Inbac, scenarios, 3)
            .into_iter()
            .map(|o| o.decided_values())
            .collect();
        assert_eq!(seq, par);
    }
}
