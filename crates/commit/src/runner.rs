//! Scenario construction and execution.
//!
//! A [`Scenario`] is a declarative, cloneable description of one execution:
//! votes, crash schedule, targeted delay rules and optional pre-GST chaos.
//! `Scenario::run::<P>()` instantiates protocol `P` for every process and
//! runs it in an `ac_net::World`.

use ac_net::{
    Crash, DelayRule, FaultPlan, FixedDelay, GstDelay, Outcome, RuleDelay, World, WorldConfig,
};
use ac_sim::{ProcessId, Time, U};

use crate::problem::{CommitProtocol, Vote};

/// Randomized pre-GST chaos (network-failure executions with no targeted
/// structure): delays uniform in `[U, max_units*U]` before `gst_units*U`,
/// exactly `U` afterwards.
#[derive(Copy, Clone, Debug)]
pub struct Chaos {
    /// Global stabilization time, in delay units.
    pub gst_units: u64,
    /// Maximum pre-GST delay, in delay units.
    pub max_units: u64,
    /// Seed of the deterministic delay stream.
    pub seed: u64,
}

/// A declarative execution scenario.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound (maximum tolerated crashes).
    pub f: usize,
    /// Each process's vote.
    pub votes: Vec<Vote>,
    /// Crash schedule.
    pub crashes: Vec<(ProcessId, Crash)>,
    /// Targeted delay overrides, first match wins.
    pub rules: Vec<DelayRule>,
    /// Optional randomized pre-GST chaos (overrides `rules`).
    pub chaos: Option<Chaos>,
    /// Run horizon in delay units. The default (600) dwarfs every protocol's
    /// own schedule plus several consensus coordinator rotations.
    pub horizon_units: u64,
    /// Record a full execution trace.
    pub trace: bool,
}

impl Scenario {
    /// The nice execution: failure-free, every process votes 1, unit delays.
    pub fn nice(n: usize, f: usize) -> Scenario {
        Scenario {
            n,
            f,
            votes: vec![true; n],
            crashes: Vec::new(),
            rules: Vec::new(),
            chaos: None,
            horizon_units: 600,
            trace: false,
        }
    }

    /// Replace the vote vector.
    pub fn votes(mut self, votes: &[Vote]) -> Scenario {
        assert_eq!(votes.len(), self.n);
        self.votes = votes.to_vec();
        self
    }

    /// Make process `p` vote 0.
    pub fn vote_no(mut self, p: ProcessId) -> Scenario {
        self.votes[p] = false;
        self
    }

    /// Crash process `p` per `crash`.
    pub fn crash(mut self, p: ProcessId, crash: Crash) -> Scenario {
        self.crashes.push((p, crash));
        self
    }

    /// Add a targeted delay rule (makes the execution a network-failure one
    /// if the delay exceeds `U` and a matching message exists).
    pub fn rule(mut self, rule: DelayRule) -> Scenario {
        self.rules.push(rule);
        self
    }

    /// Enable randomized pre-GST chaos.
    pub fn chaos(mut self, chaos: Chaos) -> Scenario {
        self.chaos = Some(chaos);
        self
    }

    /// Enable trace recording.
    pub fn traced(mut self) -> Scenario {
        self.trace = true;
        self
    }

    /// Set the run horizon, in delay units.
    pub fn horizon(mut self, units: u64) -> Scenario {
        self.horizon_units = units;
        self
    }

    fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::none(self.n);
        for &(p, c) in &self.crashes {
            plan = plan.with_crash(p, c);
        }
        plan
    }

    fn world_config(&self) -> WorldConfig {
        WorldConfig {
            horizon: Time::units(self.horizon_units),
            trace: self.trace,
        }
    }

    /// Run protocol `P` on this scenario.
    pub fn run<P: CommitProtocol>(&self) -> Outcome {
        assert_eq!(self.votes.len(), self.n);
        let procs: Vec<P> = (0..self.n)
            .map(|me| P::new(me, self.n, self.f, self.votes[me]))
            .collect();
        let delay: Box<dyn ac_net::DelayModel> = match self.chaos {
            None => Box::new(RuleDelay::over_unit(self.rules.clone())),
            Some(c) => Box::new(RuleDelay::new(
                self.rules.clone(),
                GstDelay::new(Time::units(c.gst_units), c.max_units * U, c.seed),
            )),
        };
        World::new(procs, delay, self.fault_plan(), self.world_config()).run()
    }

    /// Whether the schedule itself injects any failure (crash or delayed
    /// message rule/chaos). Note a delay rule of exactly `U` is not a
    /// failure.
    pub fn injects_failure(&self) -> bool {
        !self.crashes.is_empty() || self.chaos.is_some() || self.rules.iter().any(|r| r.delay > U)
    }
}

/// Run the nice execution of `P` and return its outcome.
pub fn run_nice<P: CommitProtocol>(n: usize, f: usize) -> Outcome {
    Scenario::nice(n, f).run::<P>()
}

/// Run `P` on explicit votes with unit delays and no failures.
///
/// ```
/// use ac_commit::protocols::Inbac;
///
/// // Three processes, all voting yes, one tolerated crash: INBAC commits
/// // everywhere after two message delays (Table 5's nice execution).
/// let out = ac_commit::run::<Inbac>(&[true, true, true], 1);
/// assert_eq!(out.decided_values(), vec![1]); // 1 = COMMIT
/// assert_eq!(out.metrics().delays, Some(2));
///
/// // One no-vote forces abort everywhere.
/// let out = ac_commit::run::<Inbac>(&[true, false, true], 1);
/// assert_eq!(out.decided_values(), vec![0]); // 0 = ABORT
/// ```
pub fn run<P: CommitProtocol>(votes: &[Vote], f: usize) -> Outcome {
    Scenario::nice(votes.len(), f).votes(votes).run::<P>()
}

/// Convenience: the `(delays, messages)` pair of a nice execution of `P` —
/// the paper's headline per-protocol numbers.
pub fn nice_complexity<P: CommitProtocol>(n: usize, f: usize) -> (u64, u64) {
    let out = run_nice::<P>(n, f);
    let m = out.metrics();
    let delays = m.delays.unwrap_or_else(|| {
        panic!(
            "{}: nice execution did not complete: {:?}",
            P::NAME,
            out.decisions
        )
    });
    (delays, m.messages as u64)
}

// Re-exported for scenario construction ergonomics.
pub use ac_net::Crash as CrashSpec;

/// The delay model used by `Scenario` when no chaos is configured. Exposed
/// for documentation: rules over exact-unit delays.
pub type ScenarioDelay = RuleDelay<FixedDelay>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::TwoPc;

    #[test]
    fn nice_scenario_is_failure_free() {
        let sc = Scenario::nice(4, 1);
        assert!(!sc.injects_failure());
        assert_eq!(sc.votes, vec![true; 4]);
    }

    #[test]
    fn builders_compose() {
        let sc = Scenario::nice(4, 2)
            .vote_no(1)
            .crash(0, Crash::initially())
            .rule(DelayRule::from_process(2, 3 * U))
            .horizon(50)
            .traced();
        assert_eq!(sc.votes, vec![true, false, true, true]);
        assert!(sc.injects_failure());
        assert!(sc.trace);
        assert_eq!(sc.horizon_units, 50);
    }

    #[test]
    fn exact_unit_rules_are_not_failures() {
        // A rule with delay == U keeps the execution synchronous.
        let sc = Scenario::nice(3, 1).rule(DelayRule::from_process(0, U));
        assert!(!sc.injects_failure());
        let out = sc.run::<TwoPc>();
        assert_eq!(out.metrics().class, ac_net::ExecutionClass::FailureFree);
    }

    #[test]
    fn chaos_marks_failure_injection() {
        let sc = Scenario::nice(3, 1).chaos(Chaos {
            gst_units: 4,
            max_units: 3,
            seed: 1,
        });
        assert!(sc.injects_failure());
    }

    #[test]
    #[should_panic(expected = "nice execution did not complete")]
    fn nice_complexity_panics_on_blocking_outcomes() {
        // A scenario that blocks (coordinator crash in 2PC) has no
        // completion time; nice_complexity must fail loudly, not return
        // garbage. We fake it by running the helper against a hand-built
        // scenario through the same code path.
        struct Stuck;
        impl ac_sim::Automaton for Stuck {
            type Msg = ();
            fn on_start(&mut self, _: &mut ac_sim::Ctx<()>) {}
            fn on_message(&mut self, _: usize, _: (), _: &mut ac_sim::Ctx<()>) {}
            fn on_timer(&mut self, _: u32, _: &mut ac_sim::Ctx<()>) {}
        }
        impl crate::problem::CommitProtocol for Stuck {
            const NAME: &'static str = "stuck";
            fn new(_: usize, n: usize, f: usize, _: bool) -> Self {
                crate::problem::validate_params(n, f);
                Stuck
            }
        }
        let _ = nice_complexity::<Stuck>(3, 1);
    }

    #[test]
    fn run_helper_respects_votes() {
        let out = run::<TwoPc>(&[true, false, true], 1);
        assert_eq!(out.decided_values(), vec![0]);
    }
}
