//! Executable lower-bound witnesses.
//!
//! The paper's lower bounds (Section 3, Lemmas 1, 5 and 6) are proved by
//! indistinguishability: assume a protocol that is faster/cheaper than the
//! bound, then construct a legitimate execution in which it must violate
//! agreement or validity. This module makes those constructions
//! *executable*: each witness is a deliberately broken protocol that cuts
//! exactly the corner the corresponding lemma forbids, together with the
//! adversarial [`Scenario`] from the proof. The tests then assert that
//!
//! 1. the broken protocol exhibits **exactly the predicted violation** on
//!    that schedule, and
//! 2. real INBAC, run on the **same schedule**, satisfies NBAC —
//!
//! which is as close as running code can get to the paper's tightness
//! arguments.
//!
//! | Witness | Cuts | Lemma/Theorem | Predicted failure |
//! |---|---|---|---|
//! | [`EagerNbac`] | decides after 1 delay | Theorem 1 (d ≥ 2) | agreement in a network-failure execution |
//! | [`NoBackupNbac`] | decides without backing up its knowledge | Lemma 1 (f backups) | agreement in a crash-failure execution |
//! | [`SilentCommit`] | acks carry no votes, silence ⇒ commit | Lemma 6 (bundled acks) | validity in a crash-failure execution |

use ac_consensus::{CtxHost, Paxos, PaxosMsg, CONS_TAG_BASE};
use ac_net::{Crash, DelayRule};
use ac_sim::{Automaton, Ctx, ProcessId, Time, U};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};
use crate::runner::Scenario;

const TAG1: u32 = 1;
const TAG2: u32 = 2;

// ---------------------------------------------------------------------
// Witness 1: EagerNbac — "one message delay must suffice".
// ---------------------------------------------------------------------

/// A protocol that decides after **one** message delay: all-to-all votes,
/// then `AND` of what arrived (missing votes are treated as failures and
/// decided 0, which gives termination in crash-failure executions).
///
/// In a synchronous world this actually solves NBAC. But Theorem 1 says a
/// protocol satisfying NBAC in crash-failure executions *and agreement in
/// network-failure executions* needs **two** delays: delay one process's
/// outbound messages and it decides 1 while everyone else decides 0
/// (see [`eager_schedule`]).
#[derive(Debug)]
pub struct EagerNbac {
    votes: bool,
    got: Vec<bool>,
}

impl CommitProtocol for EagerNbac {
    const NAME: &'static str = "EagerNBAC(broken)";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        let mut got = vec![false; n];
        got[me] = true;
        EagerNbac { votes: vote, got }
    }
}

impl Automaton for EagerNbac {
    type Msg = bool;

    fn on_start(&mut self, ctx: &mut Ctx<bool>) {
        ctx.broadcast_others(self.votes);
        ctx.set_timer(Time::units(1), TAG1);
    }

    fn on_message(&mut self, from: ProcessId, v: bool, _ctx: &mut Ctx<bool>) {
        self.votes &= v;
        self.got[from] = true;
    }

    fn on_timer(&mut self, _tag: u32, ctx: &mut Ctx<bool>) {
        // One delay has passed: decide. A missing vote means a failure, and
        // aborting is valid then — but deciding *now* is what Theorem 1
        // forbids for this robustness class.
        let all = self.got.iter().all(|&g| g);
        ctx.decide(decision_value(self.votes && all));
    }
}

/// Theorem 1's adversarial schedule: everyone votes 1; every message *from*
/// `slow` is delayed beyond the first-round deadline. `slow` hears everyone
/// and decides 1; the others are missing `slow`'s vote and decide 0.
pub fn eager_schedule(n: usize, slow: ProcessId) -> Scenario {
    Scenario::nice(n, 1).rule(DelayRule::from_process(slow, 3 * U))
}

// ---------------------------------------------------------------------
// Witness 2: NoBackupNbac — "deciding without backups".
// ---------------------------------------------------------------------

/// Message alphabet of [`NoBackupNbac`].
#[derive(Clone, Debug)]
pub enum NoBackupMsg {
    /// A vote, sent to the f collectors.
    V(bool),
    /// A collector's decision announcement.
    D(bool),
    /// Consensus sub-protocol traffic.
    Cons(PaxosMsg),
}

/// An INBAC-like protocol that skips the acknowledgement round entirely:
/// votes go to the `f` collectors `P1..Pf`; a collector knows all `n` votes
/// after one delay and **decides immediately**, announcing `[D, d]`;
/// everyone else adopts the announcement, or falls back to consensus
/// (proposing 0) if none arrives by `2U`.
///
/// One delay cheaper *and* `fn` messages cheaper than INBAC — and exactly
/// what Lemma 1 forbids: a collector's decision is backed up nowhere, so
/// crashing the collectors right after they decide (but truncating their
/// announcements) leaves survivors that must abort. Uniform agreement
/// breaks in a legitimate crash-failure execution ([`no_backup_schedule`]).
#[derive(Debug)]
pub struct NoBackupNbac {
    me: ProcessId,
    f: usize,
    votes: bool,
    got: Vec<bool>,
    decided: bool,
    proposed: bool,
    cons: Paxos,
}

impl CommitProtocol for NoBackupNbac {
    const NAME: &'static str = "NoBackupNBAC(broken)";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        let mut got = vec![false; n];
        got[me] = true;
        NoBackupNbac {
            me,
            f,
            votes: vote,
            got,
            decided: false,
            proposed: false,
            cons: Paxos::with_tag_base(me, n, CONS_TAG_BASE),
        }
    }
}

impl NoBackupNbac {
    fn is_collector(&self) -> bool {
        self.me < self.f
    }

    fn cons_decided(&mut self, d: Option<u64>, ctx: &mut Ctx<NoBackupMsg>) {
        if let Some(v) = d {
            if !self.decided {
                self.decided = true;
                ctx.decide(v);
            }
        }
    }
}

impl Automaton for NoBackupNbac {
    type Msg = NoBackupMsg;

    fn on_start(&mut self, ctx: &mut Ctx<NoBackupMsg>) {
        for q in 0..self.f {
            ctx.send(q, NoBackupMsg::V(self.votes));
        }
        if self.is_collector() {
            ctx.set_timer(Time::units(1), TAG1);
        } else {
            ctx.set_timer(Time::units(2), TAG2);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: NoBackupMsg, ctx: &mut Ctx<NoBackupMsg>) {
        match msg {
            NoBackupMsg::V(v) => {
                self.votes &= v;
                self.got[from] = true;
            }
            NoBackupMsg::D(d) => {
                if !self.decided {
                    self.decided = true;
                    ctx.decide(decision_value(d));
                }
            }
            NoBackupMsg::Cons(m) => {
                let mut host = CtxHost {
                    ctx,
                    wrap: NoBackupMsg::Cons,
                };
                let dec = self.cons.on_message(from, m, &mut host);
                self.cons_decided(dec, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<NoBackupMsg>) {
        if self.cons.owns_tag(tag) {
            let mut host = CtxHost {
                ctx,
                wrap: NoBackupMsg::Cons,
            };
            let dec = self.cons.on_timer(tag, &mut host);
            self.cons_decided(dec, ctx);
            return;
        }
        match tag {
            TAG1 => {
                // The fatal shortcut: decide the instant all votes are in,
                // with zero acknowledgements backing this knowledge up.
                if !self.decided {
                    let d = self.votes && self.got.iter().all(|&g| g);
                    self.decided = true;
                    ctx.decide(decision_value(d));
                    ctx.broadcast_others(NoBackupMsg::D(d));
                }
            }
            TAG2 => {
                if !self.decided && !self.proposed {
                    self.proposed = true;
                    // No announcement: something failed; propose abort.
                    let mut host = CtxHost {
                        ctx,
                        wrap: NoBackupMsg::Cons,
                    };
                    self.cons.propose(0, &mut host);
                }
            }
            other => unreachable!("unknown NoBackupNbac tag {other}"),
        }
    }
}

/// Lemma 1's adversarial schedule for `f = 2` collectors: both collectors
/// crash at `U` right after deciding 1, each having announced `[D,1]` to
/// nobody (send budget exhausted by their free self-sends — they die
/// mid-broadcast). Survivors hold no copy of any vote, time out, propose 0
/// and decide 0: uniform agreement is violated with only `f` crashes and
/// every message on time.
pub fn no_backup_schedule(n: usize) -> Scenario {
    // Budget 0 at U would kill them before the timer; budget 1 admits the
    // decide-then-first-send step: the first broadcast_others target is
    // P2/P1 respectively... to leak *nothing*, give collector P1 budget 0
    // sends *after* its decision by crashing it with budget 1 where action
    // order is [Decide, Send, Send, ...] — the kernel spends budget only on
    // sends, so budget 1 lets exactly one D out. To strand the survivors
    // completely we let that single copy go to the *other collector* (the
    // broadcast's first target), which also crashes.
    Scenario::nice(n, 2)
        .crash(0, Crash::partial(Time::units(1), 1))
        .crash(1, Crash::partial(Time::units(1), 1))
}

// ---------------------------------------------------------------------
// Witness 3: SilentCommit — "acks without votes".
// ---------------------------------------------------------------------

/// Message alphabet of [`SilentCommit`].
#[derive(Clone, Debug)]
pub enum SilentMsg {
    /// A 0-vote announcement (1-votes are implicit, like 0NBAC).
    V0,
    /// A backup's content-free acknowledgement — Lemma 6's forbidden
    /// shortcut: it confirms receipt but carries no votes.
    Ack,
}

/// A protocol in the style of INBAC crossed with 0NBAC: only 0-votes are
/// announced; backups `P1..Pf` acknowledge with a *content-free* `Ack`; a
/// process that saw no `[V,0]` and received its `f` acknowledgements
/// decides 1 at `2U`. Cheap — zero messages carry vote sets — but Lemma 6
/// says acknowledgements must carry the votes: a 0-voter that crashes
/// before announcing is indistinguishable from silence, and the remaining
/// processes **commit against a 0 vote** ([`silent_schedule`]).
#[derive(Debug)]
pub struct SilentCommit {
    me: ProcessId,
    f: usize,
    vote: bool,
    saw_zero: bool,
    acks: usize,
    decided: bool,
}

impl CommitProtocol for SilentCommit {
    const NAME: &'static str = "SilentCommit(broken)";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        SilentCommit {
            me,
            f,
            vote,
            saw_zero: false,
            acks: 0,
            decided: false,
        }
    }
}

impl Automaton for SilentCommit {
    type Msg = SilentMsg;

    fn on_start(&mut self, ctx: &mut Ctx<SilentMsg>) {
        if !self.vote {
            ctx.broadcast_others(SilentMsg::V0);
        }
        if self.me < self.f {
            ctx.set_timer(Time::units(1), TAG1);
        }
        ctx.set_timer(Time::units(2), TAG2);
    }

    fn on_message(&mut self, from: ProcessId, msg: SilentMsg, _ctx: &mut Ctx<SilentMsg>) {
        match msg {
            SilentMsg::V0 => self.saw_zero = true,
            SilentMsg::Ack => self.acks += 1,
        }
        let _ = from;
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<SilentMsg>) {
        match tag {
            TAG1 => {
                // Backups acknowledge... nothing in particular.
                ctx.broadcast_others(SilentMsg::Ack);
            }
            TAG2 => {
                if !self.decided {
                    self.decided = true;
                    let need = if self.me < self.f { self.f - 1 } else { self.f };
                    let commit = !self.saw_zero && self.vote && self.acks >= need;
                    ctx.decide(decision_value(commit));
                }
            }
            other => unreachable!("unknown SilentCommit tag {other}"),
        }
    }
}

/// Lemma 6's adversarial schedule: process `zero_voter` votes 0 and crashes
/// at time 0 before announcing anything. Its silence reads as a yes;
/// content-free acks confirm nothing; everyone commits against a 0 vote —
/// a commit-validity violation in a crash-failure execution. (Real INBAC
/// aborts here: the backups' vote sets visibly miss the crashed process.)
pub fn silent_schedule(n: usize, zero_voter: ProcessId) -> Scenario {
    Scenario::nice(n, 2)
        .vote_no(zero_voter)
        .crash(zero_voter, Crash::initially())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check, Violation};
    use crate::protocols::{Inbac, ProtocolKind};
    use crate::taxonomy::{Cell, PropSet};

    /// The robustness the witnesses (falsely) claim.
    fn claimed() -> Cell {
        Cell::new(PropSet::AVT, PropSet::A)
    }

    #[test]
    fn eager_nbac_is_fine_when_synchrony_holds() {
        let out = Scenario::nice(4, 1).run::<EagerNbac>();
        assert_eq!(out.decided_values(), vec![1]);
        assert_eq!(
            out.metrics().delays,
            Some(1),
            "that is the whole temptation"
        );
    }

    #[test]
    fn theorem1_schedule_breaks_the_one_delay_protocol() {
        let sc = eager_schedule(4, 0);
        let out = sc.run::<EagerNbac>();
        let report = check(&out, &sc.votes, claimed());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Agreement { .. })),
            "expected the agreement violation of Theorem 1, got {:?}",
            report.violations
        );
        // The slow process decided 1 alone.
        assert_eq!(out.decision_of(0), Some(1));
        assert_eq!(out.decision_of(1), Some(0));
    }

    #[test]
    fn inbac_survives_theorem1_schedule() {
        let sc = eager_schedule(4, 0);
        let out = sc.run::<Inbac>();
        check(&out, &sc.votes, ProtocolKind::Inbac.cell()).assert_ok("INBAC on Thm-1 schedule");
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn no_backup_nbac_is_fast_and_cheap_when_nothing_fails() {
        let out = Scenario::nice(5, 2).run::<NoBackupNbac>();
        assert_eq!(out.decided_values(), vec![1]);
        let m = out.metrics();
        // Collectors decide after ONE delay; and only votes + announcements
        // flow: fewer messages than INBAC's 2fn.
        assert!(m.messages < 2 * 2 * 5, "cheaper than INBAC: {}", m.messages);
    }

    #[test]
    fn lemma1_schedule_breaks_the_backup_free_protocol() {
        let sc = no_backup_schedule(5);
        let out = sc.run::<NoBackupNbac>();
        let report = check(&out, &sc.votes, claimed());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Agreement { .. })),
            "expected Lemma 1's agreement violation, got {:?} (decisions {:?})",
            report.violations,
            out.decisions
        );
        // The dead collectors decided 1; the survivors settled on 0.
        assert_eq!(out.decision_of(0), Some(1));
        assert!(out.crashed[0] && out.crashed[1]);
        for p in 2..5 {
            assert_eq!(out.decision_of(p), Some(0), "survivor P{}", p + 1);
        }
    }

    #[test]
    fn inbac_survives_lemma1_schedule() {
        let sc = no_backup_schedule(5);
        let out = sc.run::<Inbac>();
        check(&out, &sc.votes, ProtocolKind::Inbac.cell()).assert_ok("INBAC on Lemma-1 schedule");
        // Uniform agreement: whatever the dead processes decided (if
        // anything) matches the survivors.
        assert!(out.decided_values().len() <= 1);
    }

    #[test]
    fn silent_commit_is_cheap_when_everyone_is_honest_and_alive() {
        let out = Scenario::nice(5, 2).run::<SilentCommit>();
        assert_eq!(out.decided_values(), vec![1]);
        // Only the f acknowledgement broadcasts flow: 2(n-1) messages.
        assert_eq!(out.metrics().messages_total, 2 * 4);
    }

    #[test]
    fn lemma6_schedule_breaks_content_free_acks() {
        let sc = silent_schedule(5, 4);
        let out = sc.run::<SilentCommit>();
        let report = check(&out, &sc.votes, claimed());
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::CommitValidity { .. })),
            "expected Lemma 6's validity violation, got {:?}",
            report.violations
        );
    }

    #[test]
    fn inbac_survives_lemma6_schedule() {
        let sc = silent_schedule(5, 4);
        let out = sc.run::<Inbac>();
        check(&out, &sc.votes, ProtocolKind::Inbac.cell()).assert_ok("INBAC on Lemma-6 schedule");
        // INBAC must abort: the crashed 0-voter's vote is visibly missing.
        assert!(!out.decided_values().contains(&1));
    }
}
