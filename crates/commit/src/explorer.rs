//! Exhaustive small-model exploration.
//!
//! For small `n` the space of "interesting" executions — vote vectors ×
//! crash schedules (victim set, crash instants on the protocol's own grid,
//! partial-broadcast truncations) — is small enough to enumerate
//! completely. Each execution is run deterministically and checked against
//! the protocol's Table-1 cell. This is the strongest correctness evidence
//! this library produces: for the explored parameters, the guarantees are
//! not sampled, they are verified over the whole schedule space.
//!
//! The module is split into two independent halves:
//!
//! * [`ScheduleSpace`] — **pure enumeration**. An iterator over every
//!   [`Schedule`] (vote vector + crash schedule) of an [`ExplorerConfig`],
//!   in a fixed, documented order. It executes nothing.
//! * the **execution engine** — [`explore_jobs`] fans the enumerated
//!   schedules out over worker threads (chunked, via the crossbeam-channel
//!   pool in [`crate::runner::fan_out`]) and merges the per-chunk results
//!   back **in enumeration order**, so the report of a parallel exploration
//!   is byte-identical to the sequential one. `jobs = 1` runs inline with
//!   no threads at all.

use ac_net::Crash;
use ac_sim::Time;

use crate::checker::{check, Violation};
use crate::protocols::ProtocolKind;
use crate::runner::{fan_out_stream, Scenario};
use crate::taxonomy::Cell;

/// Exploration space configuration.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound (maximum tolerated crashes).
    pub f: usize,
    /// Crash instants, in delay units (the appendix protocols act on a
    /// unit grid, so unit-aligned crashes cover every interesting
    /// interleaving class).
    pub crash_times: Vec<u64>,
    /// Partial-broadcast send budgets to try at each crash instant, in
    /// addition to a full stop (`None`).
    pub partial_sends: Vec<usize>,
    /// Maximum number of simultaneous crash victims (capped at `f`).
    pub max_crashes: usize,
    /// Horizon per run, in delay units.
    pub horizon_units: u64,
}

impl ExplorerConfig {
    /// A small default: single crashes on a 0..6U grid with partial
    /// truncations 1 and 2.
    pub fn small(n: usize, f: usize) -> Self {
        ExplorerConfig {
            n,
            f,
            crash_times: (0..=6).collect(),
            partial_sends: vec![1, 2],
            max_crashes: 1,
            horizon_units: 400,
        }
    }
}

impl Default for ExplorerConfig {
    /// [`ExplorerConfig::small`] at the paper's minimal interesting system,
    /// `n = 3`, `f = 1`.
    fn default() -> Self {
        ExplorerConfig::small(3, 1)
    }
}

/// One point of the exploration space: a vote vector plus a crash schedule.
/// Pure data — building a `Schedule` executes nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Each process's vote.
    pub votes: Vec<bool>,
    /// The processes crashed in this execution, with their crash specs.
    pub crashes: Vec<(usize, Crash)>,
}

impl Schedule {
    /// The runnable [`Scenario`] for this schedule under `cfg`.
    pub fn scenario(&self, cfg: &ExplorerConfig) -> Scenario {
        let mut sc = Scenario::nice(cfg.n, cfg.f)
            .votes(&self.votes)
            .horizon(cfg.horizon_units);
        for &(victim, crash) in &self.crashes {
            sc = sc.crash(victim, crash);
        }
        sc
    }
}

/// One counterexample found by the explorer.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterExample {
    /// Human-readable description of the failing schedule.
    pub scenario: String,
    /// The guarantees the execution violated.
    pub violations: Vec<Violation>,
}

/// Aggregate result of an exploration.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExplorationReport {
    /// Total executions explored.
    pub executions: usize,
    /// Executions that violated the protocol's cell, in enumeration order.
    pub counterexamples: Vec<CounterExample>,
}

impl ExplorationReport {
    /// Whether every explored execution satisfied its guarantees.
    pub fn ok(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Panic with a readable message if any counterexample was found.
    pub fn assert_ok(&self, context: &str) {
        assert!(
            self.ok(),
            "{context}: {}/{} executions violated guarantees; first: {:?}",
            self.counterexamples.len(),
            self.executions,
            self.counterexamples.first()
        );
    }
}

fn crash_options(cfg: &ExplorerConfig) -> Vec<Crash> {
    let mut opts = Vec::new();
    for &t in &cfg.crash_times {
        opts.push(Crash::at(Time::units(t)));
        for &k in &cfg.partial_sends {
            opts.push(Crash::partial(Time::units(t), k));
        }
    }
    opts
}

/// All crash schedules of `cfg`: the failure-free schedule first, then every
/// single-victim schedule (victim-major, crash options in
/// [`crash_options`] order), then every victim pair. Shared by every vote
/// vector, so it is computed once per exploration.
fn crash_schedules(cfg: &ExplorerConfig) -> Vec<Vec<(usize, Crash)>> {
    let crash_opts = crash_options(cfg);
    let max_crashes = cfg.max_crashes.min(cfg.f);
    let mut schedules: Vec<Vec<(usize, Crash)>> = vec![vec![]];
    if max_crashes >= 1 {
        for victim in 0..cfg.n {
            for &c in &crash_opts {
                schedules.push(vec![(victim, c)]);
            }
        }
    }
    if max_crashes >= 2 {
        for v1 in 0..cfg.n {
            for v2 in (v1 + 1)..cfg.n {
                for &c1 in &crash_opts {
                    for &c2 in &crash_opts {
                        schedules.push(vec![(v1, c1), (v2, c2)]);
                    }
                }
            }
        }
    }
    schedules
}

/// Pure enumeration of an [`ExplorerConfig`]'s schedule space.
///
/// Iterates every vote vector × crash schedule in a fixed order — vote
/// bitmask-major (mask `0` = all-No first), crash schedules within a vote
/// vector as produced by the config (failure-free, then singles, then
/// pairs). [`ScheduleSpace::len`] gives the exact space size without
/// iterating.
///
/// ```
/// use ac_commit::explorer::{ExplorerConfig, ScheduleSpace};
///
/// let cfg = ExplorerConfig { crash_times: vec![0, 1], partial_sends: vec![1],
///                            ..ExplorerConfig::small(2, 1) };
/// let space = ScheduleSpace::new(&cfg);
/// // 4 vote vectors x (1 no-crash + 2 victims x 2 times x 2 modes).
/// assert_eq!(space.len(), 4 * (1 + 2 * 2 * 2));
/// let first = space.clone().next().unwrap();
/// assert_eq!(first.votes, vec![false, false]); // mask 0, failure-free
/// assert!(first.crashes.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct ScheduleSpace {
    n: usize,
    schedules: Vec<Vec<(usize, Crash)>>,
    votes_mask: u32,
    schedule_idx: usize,
}

impl ScheduleSpace {
    /// Enumerate the space of `cfg`.
    pub fn new(cfg: &ExplorerConfig) -> Self {
        assert!(cfg.n < 32, "vote vectors are enumerated as u32 bitmasks");
        ScheduleSpace {
            n: cfg.n,
            schedules: crash_schedules(cfg),
            votes_mask: 0,
            schedule_idx: 0,
        }
    }

    /// Exact number of schedules in the *whole* space (independent of how
    /// far this iterator has advanced).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        (1usize << self.n) * self.schedules.len()
    }
}

impl Iterator for ScheduleSpace {
    type Item = Schedule;

    fn next(&mut self) -> Option<Schedule> {
        if self.votes_mask >= (1u32 << self.n) {
            return None;
        }
        let votes = (0..self.n)
            .map(|p| self.votes_mask & (1 << p) != 0)
            .collect();
        let crashes = self.schedules[self.schedule_idx].clone();
        self.schedule_idx += 1;
        if self.schedule_idx == self.schedules.len() {
            self.schedule_idx = 0;
            self.votes_mask += 1;
        }
        Some(Schedule { votes, crashes })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let done = self.votes_mask as usize * self.schedules.len() + self.schedule_idx;
        let left = self.len().saturating_sub(done);
        (left, Some(left))
    }
}

/// Run and check one schedule; `Some` iff it violates `cell`.
fn run_one(
    kind: ProtocolKind,
    cell: Cell,
    cfg: &ExplorerConfig,
    schedule: &Schedule,
) -> Option<CounterExample> {
    let out = kind.run(&schedule.scenario(cfg));
    let r = check(&out, &schedule.votes, cell);
    if r.ok() {
        None
    } else {
        Some(CounterExample {
            scenario: format!(
                "{} n={} f={} votes={:?} crashes={:?}",
                kind.name(),
                cfg.n,
                cfg.f,
                schedule.votes,
                schedule.crashes,
            ),
            violations: r.violations,
        })
    }
}

/// Schedules per work item handed to the pool. Runs take tens to hundreds
/// of microseconds, so a chunk amortizes channel traffic to a few
/// milliseconds of work while staying small enough for dynamic balancing.
const CHUNK: usize = 64;

/// Exhaustively explore `kind` under `cfg` against an explicit `cell`, over
/// `jobs` worker threads. The parallel report is byte-identical to the
/// sequential (`jobs = 1`) one: chunks are checked in parallel but merged
/// back in enumeration order.
pub fn explore_against_jobs(
    kind: ProtocolKind,
    cell: Cell,
    cfg: &ExplorerConfig,
    jobs: usize,
) -> ExplorationReport {
    let space = ScheduleSpace::new(cfg);
    let executions = space.len();

    let counterexamples = if jobs <= 1 {
        space.filter_map(|s| run_one(kind, cell, cfg, &s)).collect()
    } else {
        // Chunks are drawn from the space lazily — the pool keeps only
        // O(jobs) chunks in flight, so parallel exploration costs no more
        // memory than sequential even on exponentially large spaces.
        let mut space = space.peekable();
        let chunks = std::iter::from_fn(move || {
            space.peek()?;
            Some(space.by_ref().take(CHUNK).collect::<Vec<Schedule>>())
        });
        fan_out_stream(chunks, jobs, |chunk| {
            chunk
                .iter()
                .filter_map(|s| run_one(kind, cell, cfg, s))
                .collect::<Vec<CounterExample>>()
        })
        .into_iter()
        .flatten()
        .collect()
    };

    ExplorationReport {
        executions,
        counterexamples,
    }
}

/// Exhaustively explore `kind` under `cfg`, checking each execution against
/// `cell` (defaults to the protocol's own cell via [`explore`]). Sequential;
/// see [`explore_against_jobs`] for the parallel engine.
pub fn explore_against(kind: ProtocolKind, cell: Cell, cfg: &ExplorerConfig) -> ExplorationReport {
    explore_against_jobs(kind, cell, cfg, 1)
}

/// Explore `kind` against its own declared cell over `jobs` worker threads.
pub fn explore_jobs(kind: ProtocolKind, cfg: &ExplorerConfig, jobs: usize) -> ExplorationReport {
    explore_against_jobs(kind, kind.cell(), cfg, jobs)
}

/// Explore `kind` against its own declared cell, sequentially.
pub fn explore(kind: ProtocolKind, cfg: &ExplorerConfig) -> ExplorationReport {
    explore_jobs(kind, cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::PropSet;

    #[test]
    fn explorer_counts_the_expected_space() {
        let cfg = ExplorerConfig {
            n: 2,
            f: 1,
            crash_times: vec![0, 1],
            partial_sends: vec![1],
            max_crashes: 1,
            horizon_units: 300,
        };
        let report = explore(ProtocolKind::TwoPc, &cfg);
        // 4 vote vectors x (1 no-crash + 2 victims x 2 times x 2 modes).
        assert_eq!(report.executions, 4 * (1 + 2 * 2 * 2));
        report.assert_ok("2PC small space");
    }

    #[test]
    fn explorer_catches_false_claims() {
        // 2PC does NOT provide termination under crashes; exploring it
        // against a cell that demands T must produce counterexamples.
        let cfg = ExplorerConfig::small(3, 1);
        let too_strong = Cell::new(PropSet::AVT, PropSet::AV);
        let report = explore_against(ProtocolKind::TwoPc, too_strong, &cfg);
        assert!(
            !report.ok(),
            "2PC cannot satisfy termination under crashes; the explorer must notice"
        );
        assert!(report.counterexamples.iter().all(|c| c
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Termination { .. }))));
    }

    #[test]
    fn space_len_matches_iteration() {
        for cfg in [
            ExplorerConfig::default(),
            ExplorerConfig {
                max_crashes: 2,
                crash_times: vec![0, 2],
                ..ExplorerConfig::small(4, 2)
            },
        ] {
            let space = ScheduleSpace::new(&cfg);
            let len = space.len();
            assert_eq!(space.size_hint(), (len, Some(len)));
            assert_eq!(space.count(), len);
        }
    }

    #[test]
    fn space_enumeration_is_deterministic_and_unique() {
        let cfg = ExplorerConfig {
            crash_times: vec![0, 1, 2],
            ..ExplorerConfig::small(3, 1)
        };
        let a: Vec<Schedule> = ScheduleSpace::new(&cfg).collect();
        let b: Vec<Schedule> = ScheduleSpace::new(&cfg).collect();
        assert_eq!(a, b);
        for (i, s) in a.iter().enumerate() {
            for t in &a[i + 1..] {
                assert_ne!(s, t, "duplicate schedule in the space");
            }
        }
    }

    // Parallel-vs-sequential byte-identity is pinned by the cross-crate
    // suite in `tests/parallel_explorer.rs` (every protocol, violating
    // spaces, oversubscribed pools, proptest over random configs).

    #[test]
    fn schedule_scenario_reproduces_builder_construction() {
        let cfg = ExplorerConfig::small(3, 1);
        let schedule = Schedule {
            votes: vec![true, false, true],
            crashes: vec![(1, Crash::partial(Time::units(2), 1))],
        };
        let sc = schedule.scenario(&cfg);
        assert_eq!(sc.votes, vec![true, false, true]);
        assert_eq!(sc.crashes, vec![(1, Crash::partial(Time::units(2), 1))]);
        assert_eq!(sc.horizon_units, cfg.horizon_units);
        assert!(sc.injects_failure());
    }
}
