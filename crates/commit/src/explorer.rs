//! Exhaustive small-model exploration.
//!
//! For small `n` the space of "interesting" executions — vote vectors ×
//! crash schedules (victim set, crash instants on the protocol's own grid,
//! partial-broadcast truncations) — is small enough to enumerate
//! completely. Each execution is run deterministically and checked against
//! the protocol's Table-1 cell. This is the strongest correctness evidence
//! this library produces: for the explored parameters, the guarantees are
//! not sampled, they are verified over the whole schedule space.

use ac_net::Crash;
use ac_sim::Time;

use crate::checker::{check, Violation};
use crate::protocols::ProtocolKind;
use crate::runner::Scenario;
use crate::taxonomy::Cell;

/// Exploration space configuration.
#[derive(Clone, Debug)]
pub struct ExplorerConfig {
    /// Number of processes.
    pub n: usize,
    /// Resilience bound (maximum tolerated crashes).
    pub f: usize,
    /// Crash instants, in delay units (the appendix protocols act on a
    /// unit grid, so unit-aligned crashes cover every interesting
    /// interleaving class).
    pub crash_times: Vec<u64>,
    /// Partial-broadcast send budgets to try at each crash instant, in
    /// addition to a full stop (`None`).
    pub partial_sends: Vec<usize>,
    /// Maximum number of simultaneous crash victims (capped at `f`).
    pub max_crashes: usize,
    /// Horizon per run, in delay units.
    pub horizon_units: u64,
}

impl ExplorerConfig {
    /// A small default: single crashes on a 0..6U grid with partial
    /// truncations 1 and 2.
    pub fn small(n: usize, f: usize) -> Self {
        ExplorerConfig {
            n,
            f,
            crash_times: (0..=6).collect(),
            partial_sends: vec![1, 2],
            max_crashes: 1,
            horizon_units: 400,
        }
    }
}

/// One counterexample found by the explorer.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// Human-readable description of the failing schedule.
    pub scenario: String,
    /// The guarantees the execution violated.
    pub violations: Vec<Violation>,
}

/// Aggregate result of an exploration.
#[derive(Clone, Debug, Default)]
pub struct ExplorationReport {
    /// Total executions explored.
    pub executions: usize,
    /// Executions that violated the protocol's cell.
    pub counterexamples: Vec<CounterExample>,
}

impl ExplorationReport {
    /// Whether every explored execution satisfied its guarantees.
    pub fn ok(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Panic with a readable message if any counterexample was found.
    pub fn assert_ok(&self, context: &str) {
        assert!(
            self.ok(),
            "{context}: {}/{} executions violated guarantees; first: {:?}",
            self.counterexamples.len(),
            self.executions,
            self.counterexamples.first()
        );
    }
}

fn crash_options(cfg: &ExplorerConfig) -> Vec<Crash> {
    let mut opts = Vec::new();
    for &t in &cfg.crash_times {
        opts.push(Crash::at(Time::units(t)));
        for &k in &cfg.partial_sends {
            opts.push(Crash::partial(Time::units(t), k));
        }
    }
    opts
}

/// Exhaustively explore `kind` under `cfg`, checking each execution against
/// `cell` (defaults to the protocol's own cell via [`explore`]).
pub fn explore_against(kind: ProtocolKind, cell: Cell, cfg: &ExplorerConfig) -> ExplorationReport {
    let mut report = ExplorationReport::default();
    let crash_opts = crash_options(cfg);
    let max_crashes = cfg.max_crashes.min(cfg.f);

    // Enumerate vote vectors as bitmasks.
    for votes_mask in 0..(1u32 << cfg.n) {
        let votes: Vec<bool> = (0..cfg.n).map(|p| votes_mask & (1 << p) != 0).collect();

        // Crash schedules: none, then every victim set of size <= max.
        let mut schedules: Vec<Vec<(usize, Crash)>> = vec![vec![]];
        if max_crashes >= 1 {
            for victim in 0..cfg.n {
                for &c in &crash_opts {
                    schedules.push(vec![(victim, c)]);
                }
            }
        }
        if max_crashes >= 2 {
            for v1 in 0..cfg.n {
                for v2 in (v1 + 1)..cfg.n {
                    for &c1 in &crash_opts {
                        for &c2 in &crash_opts {
                            schedules.push(vec![(v1, c1), (v2, c2)]);
                        }
                    }
                }
            }
        }

        for schedule in &schedules {
            let mut sc = Scenario::nice(cfg.n, cfg.f)
                .votes(&votes)
                .horizon(cfg.horizon_units);
            for &(victim, crash) in schedule {
                sc = sc.crash(victim, crash);
            }
            let out = kind.run(&sc);
            report.executions += 1;
            let r = check(&out, &votes, cell);
            if !r.ok() {
                report.counterexamples.push(CounterExample {
                    scenario: format!(
                        "{} n={} f={} votes={votes:?} crashes={schedule:?}",
                        kind.name(),
                        cfg.n,
                        cfg.f
                    ),
                    violations: r.violations,
                });
            }
        }
    }
    report
}

/// Explore `kind` against its own declared cell.
pub fn explore(kind: ProtocolKind, cfg: &ExplorerConfig) -> ExplorationReport {
    explore_against(kind, kind.cell(), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::PropSet;

    #[test]
    fn explorer_counts_the_expected_space() {
        let cfg = ExplorerConfig {
            n: 2,
            f: 1,
            crash_times: vec![0, 1],
            partial_sends: vec![1],
            max_crashes: 1,
            horizon_units: 300,
        };
        let report = explore(ProtocolKind::TwoPc, &cfg);
        // 4 vote vectors x (1 no-crash + 2 victims x 2 times x 2 modes).
        assert_eq!(report.executions, 4 * (1 + 2 * 2 * 2));
        report.assert_ok("2PC small space");
    }

    #[test]
    fn explorer_catches_false_claims() {
        // 2PC does NOT provide termination under crashes; exploring it
        // against a cell that demands T must produce counterexamples.
        let cfg = ExplorerConfig::small(3, 1);
        let too_strong = Cell::new(PropSet::AVT, PropSet::AV);
        let report = explore_against(ProtocolKind::TwoPc, too_strong, &cfg);
        assert!(
            !report.ok(),
            "2PC cannot satisfy termination under crashes; the explorer must notice"
        );
        assert!(report.counterexamples.iter().all(|c| c
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Termination { .. }))));
    }
}
