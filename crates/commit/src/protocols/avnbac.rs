//! avNBAC — the two optimal protocols for the (AV, AV) cell.
//!
//! The paper reuses one name for two protocols ("Name avNBAC is abused as
//! the meaning is clear in the context", Table 3):
//!
//! * [`AvNbacDelayOpt`] (§4.1): all-to-all votes; a process decides at the
//!   end of the first delay iff it collected all `n` votes. 1 delay,
//!   `n(n−1)` messages — delay-optimal.
//! * [`AvNbacMsgOpt`] (Appendix E.5): votes converge on `Pn`, which
//!   broadcasts their AND. 2 delays, `2n−2` messages — message-optimal.
//!
//! Neither requires termination when a failure occurs; both preserve
//! agreement and validity in every execution, because any decision equals
//! the AND of all `n` votes.

use ac_sim::{Automaton, Ctx, ProcessId, Time};

use super::etime;
use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG: u32 = 1;

/// avNBAC's message alphabet.
#[derive(Clone, Debug)]
pub enum AvMsg {
    /// A vote.
    V(bool),
    /// A backup relay of a learnt vote conjunction.
    B(bool),
}

/// Delay-optimal avNBAC (§4.1): decide after one message delay iff all
/// votes arrived.
#[derive(Debug)]
pub struct AvNbacDelayOpt {
    votes: bool,
    got: Vec<bool>,
}

impl CommitProtocol for AvNbacDelayOpt {
    const NAME: &'static str = "avNBAC(delay)";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        let mut got = vec![false; n];
        got[me] = true;
        AvNbacDelayOpt { votes: vote, got }
    }
}

impl Automaton for AvNbacDelayOpt {
    type Msg = AvMsg;

    fn on_start(&mut self, ctx: &mut Ctx<AvMsg>) {
        ctx.broadcast_others(AvMsg::V(self.votes));
        ctx.set_timer(Time::units(1), TAG);
    }

    fn on_message(&mut self, from: ProcessId, msg: AvMsg, _ctx: &mut Ctx<AvMsg>) {
        if let AvMsg::V(v) = msg {
            self.votes &= v;
            self.got[from] = true;
        }
    }

    fn on_timer(&mut self, _tag: u32, ctx: &mut Ctx<AvMsg>) {
        // Decide iff every vote arrived within the synchrony bound;
        // otherwise never decide (no termination is promised on failure).
        if self.got.iter().all(|&g| g) {
            ctx.decide(decision_value(self.votes));
        }
    }
}

/// Message-optimal avNBAC (Appendix E.5): star topology through `Pn`.
#[derive(Debug)]
pub struct AvNbacMsgOpt {
    me: ProcessId,
    n: usize,
    votes: bool,
    received_b: bool,
    got: Vec<bool>,
}

impl AvNbacMsgOpt {
    fn is_hub(&self) -> bool {
        self.me == self.n - 1
    }
}

impl CommitProtocol for AvNbacMsgOpt {
    const NAME: &'static str = "avNBAC(msg)";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        let mut got = vec![false; n];
        got[me] = true;
        AvNbacMsgOpt {
            me,
            n,
            votes: vote,
            received_b: false,
            got,
        }
    }
}

impl Automaton for AvNbacMsgOpt {
    type Msg = AvMsg;

    fn on_start(&mut self, ctx: &mut Ctx<AvMsg>) {
        if self.is_hub() {
            ctx.set_timer(etime(2), TAG);
        } else {
            ctx.send(self.n - 1, AvMsg::V(self.votes));
            ctx.set_timer(etime(3), TAG);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: AvMsg, _ctx: &mut Ctx<AvMsg>) {
        match msg {
            AvMsg::V(v) => {
                self.votes &= v;
                self.got[from] = true;
            }
            AvMsg::B(v) => {
                self.received_b = true;
                self.votes = v;
            }
        }
    }

    fn on_timer(&mut self, _tag: u32, ctx: &mut Ctx<AvMsg>) {
        if self.is_hub() {
            if self.got.iter().all(|&g| g) {
                ctx.broadcast_others(AvMsg::B(self.votes));
                ctx.decide(decision_value(self.votes));
            }
        } else if self.received_b {
            ctx.decide(decision_value(self.votes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::Crash;

    #[test]
    fn delay_opt_is_one_delay_n2_messages() {
        for n in 2..=7 {
            let (d, m) = nice_complexity::<AvNbacDelayOpt>(n, 1);
            assert_eq!((d, m), (1, (n * n - n) as u64), "n={n}");
        }
    }

    #[test]
    fn msg_opt_is_two_delays_2n2_messages() {
        for n in 2..=7 {
            let (d, m) = nice_complexity::<AvNbacMsgOpt>(n, 1);
            assert_eq!((d, m), (2, 2 * n as u64 - 2), "n={n}");
        }
    }

    #[test]
    fn both_abort_on_a_no_vote_without_failures() {
        let out = Scenario::nice(5, 2).vote_no(2).run::<AvNbacDelayOpt>();
        assert_eq!(out.decided_values(), vec![0]);
        let out = Scenario::nice(5, 2).vote_no(2).run::<AvNbacMsgOpt>();
        assert_eq!(out.decided_values(), vec![0]);
    }

    #[test]
    fn crash_blocks_but_never_contradicts() {
        for kind in [ProtocolKind::AvNbacDelayOpt, ProtocolKind::AvNbacMsgOpt] {
            let sc = Scenario::nice(4, 1).crash(0, Crash::initially());
            let out = kind.run(&sc);
            let report = check(&out, &sc.votes, kind.cell());
            report.assert_ok(kind.name());
            // With a missing vote nobody can decide in either variant.
            assert!(out.decisions.iter().all(|d| d.is_none()), "{}", kind.name());
        }
    }

    #[test]
    fn hub_crash_blocks_msg_opt_only() {
        // If Pn crashes at time 0, the delay-optimal variant still decides
        // nothing is wrong? No: its vote is missing everywhere -> nobody
        // decides. For the message-optimal variant the hub never
        // broadcasts -> nobody decides either.
        let sc = Scenario::nice(4, 1).crash(3, Crash::initially());
        let out = sc.run::<AvNbacMsgOpt>();
        assert!(out.decisions.iter().all(|d| d.is_none()));
    }

    #[test]
    fn partial_hub_broadcast_keeps_agreement() {
        use ac_sim::Time;
        // The hub decides and reaches only one process with [B,·]: both
        // deciders agree; the rest never decide (allowed: no T).
        let sc = Scenario::nice(5, 1).crash(4, Crash::partial(Time::units(1), 1));
        let out = sc.run::<AvNbacMsgOpt>();
        let vals = out.decided_values();
        assert!(vals.len() <= 1, "{vals:?}");
    }
}
