//! aNBAC — the message-optimal protocol for cell (AV, A) (Appendix E.3):
//! agreement and validity in crash-failure executions, agreement in
//! network-failure executions, `n−1+f` messages in nice executions.
//!
//! Structure: the (n−1+f)NBAC chain decides commit; an overlay of explicit
//! abort notifications (`[V,0]`, `[B,0]` with acknowledgements) decides
//! abort *early* (at 2 or 3 delays) when some process votes 0. A process
//! whose acknowledgements are incomplete sets `noop` and never decides —
//! termination is not promised once a failure occurs, which is exactly what
//! buys the low message count.

// Index ranges deliberately mirror the paper's pseudocode (e.g. `f+1 <= i`).
#![allow(clippy::int_plus_one)]

use ac_sim::{Automaton, Ctx, ProcessId};

use super::etime;
use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG_CHAIN: u32 = 1;
const TAG_OVERLAY: u32 = 2;

/// aNBAC's message alphabet.
#[derive(Clone, Debug)]
pub enum ANbacMsg {
    /// Chain message carrying the AND so far.
    Chain(bool),
    /// Explicit abort vote.
    V0,
    /// Abort backup by a 1-voter that learnt of a 0.
    B0,
    /// Acknowledgement of a `[V,0]`.
    AckV,
    /// Acknowledgement of a `[B,0]`.
    AckB,
}

/// One process of aNBAC.
#[derive(Debug)]
pub struct ANbac {
    me: ProcessId,
    n: usize,
    f: usize,
    // Chain state (as in `ChainNbac`).
    decision: bool,
    decided: bool,
    delivered: bool,
    phase: u8,
    echoed: bool,
    // Overlay state.
    vote: bool,
    delivered_v: bool,
    collection_v: Vec<bool>,
    collection_b: Vec<bool>,
    noop: bool,
    phase0: u8,
}

impl ANbac {
    #[inline]
    fn i(&self) -> u64 {
        self.me as u64 + 1
    }

    #[inline]
    fn pred(&self) -> ProcessId {
        (self.me + self.n - 1) % self.n
    }

    #[inline]
    fn succ(&self) -> ProcessId {
        (self.me + 1) % self.n
    }

    fn broadcast_zero(&mut self, ctx: &mut Ctx<ANbacMsg>) {
        if !self.echoed {
            self.echoed = true;
            ctx.broadcast_others(ANbacMsg::Chain(false));
        }
    }
}

impl CommitProtocol for ANbac {
    const NAME: &'static str = "aNBAC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        ANbac {
            me,
            n,
            f,
            decision: vote,
            decided: false,
            delivered: false,
            phase: 0,
            echoed: false,
            vote,
            delivered_v: false,
            collection_v: vec![false; n],
            collection_b: vec![false; n],
            noop: false,
            phase0: 0,
        }
    }
}

impl Automaton for ANbac {
    type Msg = ANbacMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ANbacMsg>) {
        let (n, i) = (self.n as u64, self.i());
        // Chain part.
        if i == 1 {
            ctx.send(1, ANbacMsg::Chain(self.decision));
            ctx.set_timer(etime(n + 1), TAG_CHAIN);
            self.phase = 2;
        } else {
            ctx.set_timer(etime(i), TAG_CHAIN);
            self.phase = 1;
        }
        // Overlay part.
        if !self.vote {
            ctx.broadcast(ANbacMsg::V0);
            ctx.set_timer(etime(3), TAG_OVERLAY);
        } else {
            ctx.set_timer(etime(2), TAG_OVERLAY);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: ANbacMsg, ctx: &mut Ctx<ANbacMsg>) {
        match msg {
            ANbacMsg::Chain(v) => {
                self.decision &= v;
                if self.phase <= 2 {
                    if from == self.pred() {
                        self.delivered = true;
                    }
                } else if !self.decided && !v {
                    self.broadcast_zero(ctx);
                }
            }
            ANbacMsg::V0 => {
                self.decision = false;
                self.delivered_v = true;
                ctx.send(from, ANbacMsg::AckV);
            }
            ANbacMsg::B0 => {
                self.decision = false;
                ctx.send(from, ANbacMsg::AckB);
            }
            ANbacMsg::AckV => {
                self.collection_v[from] = true;
            }
            ANbacMsg::AckB => {
                self.collection_b[from] = true;
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<ANbacMsg>) {
        match tag {
            TAG_CHAIN => self.on_chain_timer(ctx),
            TAG_OVERLAY => self.on_overlay_timer(ctx),
            other => unreachable!("unknown aNBAC timer tag {other}"),
        }
    }
}

impl ANbac {
    fn on_chain_timer(&mut self, ctx: &mut Ctx<ANbacMsg>) {
        let (n, f, i) = (self.n as u64, self.f as u64, self.i());
        match self.phase {
            1 => {
                if !self.delivered {
                    self.decision = false;
                }
                if self.decision {
                    ctx.send(self.succ(), ANbacMsg::Chain(true));
                } else if i == n {
                    self.broadcast_zero(ctx);
                }
                self.delivered = false;
                if i >= f + 1 {
                    ctx.set_timer(etime(n + 2 * f + 1), TAG_CHAIN);
                    self.phase = 3;
                } else {
                    ctx.set_timer(etime(n + i), TAG_CHAIN);
                    self.phase = 2;
                }
            }
            2 => {
                if !self.delivered {
                    self.decision = false;
                }
                if self.decision && i != f {
                    ctx.send(self.succ(), ANbacMsg::Chain(true));
                }
                if !self.decision {
                    self.broadcast_zero(ctx);
                }
                self.delivered = false;
                ctx.set_timer(etime(n + 2 * f + 1), TAG_CHAIN);
                self.phase = 3;
            }
            3 => {
                // Decide 1 only if the chain completed and the overlay never
                // stalled; otherwise stay undecided (no termination
                // guarantee under failures).
                if self.decision && !self.noop && !self.decided {
                    self.decided = true;
                    ctx.decide(decision_value(true));
                }
            }
            other => unreachable!("aNBAC chain timer in phase {other}"),
        }
    }

    fn on_overlay_timer(&mut self, ctx: &mut Ctx<ANbacMsg>) {
        if !self.vote {
            // Our own [V,0] round: decide 0 iff everyone acknowledged.
            if self.collection_v.iter().all(|&a| a) && !self.decided {
                self.decided = true;
                ctx.decide(decision_value(false));
            } else {
                self.noop = true;
            }
        } else if self.delivered_v && self.phase0 == 0 {
            // We learnt of a 0: back it up and poll acknowledgements.
            ctx.broadcast(ANbacMsg::B0);
            ctx.set_timer(etime(4), TAG_OVERLAY);
            self.phase0 = 1;
        } else if self.delivered_v && self.phase0 == 1 {
            if self.collection_b.iter().all(|&a| a) && !self.decided {
                self.decided = true;
                ctx.decide(decision_value(false));
            } else {
                self.noop = true;
            }
        }
        // vote = 1 without any [V,0]: the overlay stays silent.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::{Time, U};

    #[test]
    fn nice_execution_matches_n_1_f_messages() {
        for n in 2..=8 {
            for f in 1..n {
                let (d, m) = nice_complexity::<ANbac>(n, f);
                assert_eq!(m, (n - 1 + f) as u64, "n={n} f={f}");
                assert_eq!(d, (n + 2 * f) as u64, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn failure_free_abort_is_fast() {
        // With a 0-voter and no failures, 0-voters decide at 2 delays and
        // 1-voters at 3 delays — far earlier than the chain's end.
        let sc = Scenario::nice(5, 2).vote_no(2);
        let out = sc.run::<ANbac>();
        check(&out, &sc.votes, ProtocolKind::ANbac.cell()).assert_ok("one no");
        assert_eq!(out.decided_values(), vec![0]);
        assert_eq!(out.decisions[2].unwrap().0, Time::units(2));
        assert_eq!(out.decisions[0].unwrap().0, Time::units(3));
    }

    #[test]
    fn crash_executions_keep_agreement_and_validity() {
        let n = 4;
        for victim in 0..n {
            for t in 0..5u64 {
                let sc = Scenario::nice(n, 1).crash(victim, Crash::at(Time::units(t)));
                let out = sc.run::<ANbac>();
                check(&out, &sc.votes, ProtocolKind::ANbac.cell())
                    .assert_ok(&format!("victim={victim} t={t}"));
            }
        }
    }

    #[test]
    fn crash_with_no_vote_never_commits() {
        // 0-voter crashes mid-[V,0]-broadcast: anyone that saw the 0 blocks
        // or aborts; nobody may commit... unless nobody saw it and the
        // chain also carried only 1s — impossible since the 0-voter's chain
        // slot is empty after the crash. Agreement must hold regardless.
        let n = 4;
        for reached in 0..=2 {
            let sc = Scenario::nice(n, 1)
                .vote_no(2)
                .crash(2, Crash::partial(Time::ZERO, reached));
            let out = sc.run::<ANbac>();
            let report = check(&out, &sc.votes, ProtocolKind::ANbac.cell());
            report.assert_ok(&format!("reached={reached}"));
            assert!(!out.decided_values().contains(&1), "reached={reached}");
        }
    }

    #[test]
    fn network_failure_keeps_agreement_only() {
        // Delay one ack: the 0-voter noops (never decides); the B0 round
        // still aborts the 1-voters consistently, or everyone noops.
        let sc = Scenario::nice(4, 1).vote_no(0).rule(DelayRule::link(
            1,
            0,
            Time::ZERO,
            Time::units(10),
            8 * U,
        ));
        let out = sc.run::<ANbac>();
        let report = check(&out, &sc.votes, ProtocolKind::ANbac.cell());
        report.assert_ok("delayed ack");
        assert!(out.decided_values().len() <= 1);
    }
}
