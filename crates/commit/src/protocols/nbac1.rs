//! 1NBAC — the delay-optimal protocol for cell (AVT, VT) (§4.1, Appendix D):
//! NBAC in every crash-failure execution, validity and termination in every
//! network-failure execution, and decision after **one** message delay in
//! every failure-free execution.
//!
//! Every process sends its vote to every process; at the end of the first
//! delay a process that collected all `n` votes sends their AND (`[D, d]`)
//! to everyone and decides. A process that did not collect all votes waits
//! one more delay for a `[D, d]` message, then proposes `d` (or 0 if none
//! arrived) to uniform consensus and adopts its decision.
//!
//! Nice-execution complexity: 1 delay, `n²−n` messages (the `[D]` round is
//! still in flight when everyone has decided — see the paper's message
//! accounting and `ac_net::Metrics`).

use ac_consensus::{CtxHost, Paxos, PaxosMsg, CONS_TAG_BASE};
use ac_sim::{Automaton, Ctx, ProcessId, Time};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG1: u32 = 1;
const TAG2: u32 = 2;

/// 1NBAC's message alphabet.
#[derive(Clone, Debug)]
pub enum Nbac1Msg {
    /// A vote.
    V(bool),
    /// A relayed decision proposal.
    D(bool),
    /// Consensus sub-protocol traffic.
    Cons(PaxosMsg),
}

/// One process of 1NBAC.
#[derive(Debug)]
pub struct Nbac1 {
    phase: u8,
    proposed: bool,
    decided: bool,
    decision: bool,
    collection0: Vec<bool>,
    collection1_any: bool,
    cons: Paxos,
}

impl CommitProtocol for Nbac1 {
    const NAME: &'static str = "1NBAC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        Nbac1 {
            phase: 0,
            proposed: false,
            decided: false,
            decision: vote,
            collection0: vec![false; n],
            collection1_any: false,
            cons: Paxos::with_tag_base(me, n, CONS_TAG_BASE),
        }
    }
}

impl Nbac1 {
    fn cons_decided(&mut self, d: Option<u64>, ctx: &mut Ctx<Nbac1Msg>) {
        if let Some(v) = d {
            if !self.decided {
                self.decided = true;
                ctx.decide(v);
            }
        }
    }
}

impl Automaton for Nbac1 {
    type Msg = Nbac1Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Nbac1Msg>) {
        ctx.broadcast(Nbac1Msg::V(self.decision));
        ctx.set_timer(Time::units(1), TAG1);
    }

    fn on_message(&mut self, from: ProcessId, msg: Nbac1Msg, ctx: &mut Ctx<Nbac1Msg>) {
        match msg {
            Nbac1Msg::V(v) => {
                self.collection0[from] = true;
                self.decision &= v;
            }
            Nbac1Msg::D(d) => {
                self.collection1_any = true;
                self.decision = d;
            }
            Nbac1Msg::Cons(m) => {
                let mut host = CtxHost {
                    ctx,
                    wrap: Nbac1Msg::Cons,
                };
                let dec = self.cons.on_message(from, m, &mut host);
                self.cons_decided(dec, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<Nbac1Msg>) {
        if self.cons.owns_tag(tag) {
            let mut host = CtxHost {
                ctx,
                wrap: Nbac1Msg::Cons,
            };
            let dec = self.cons.on_timer(tag, &mut host);
            self.cons_decided(dec, ctx);
            return;
        }
        match tag {
            TAG1 => {
                debug_assert_eq!(self.phase, 0);
                if self.collection0.iter().all(|&g| g) {
                    ctx.broadcast(Nbac1Msg::D(self.decision));
                    if !self.decided {
                        self.decided = true;
                        ctx.decide(decision_value(self.decision));
                    }
                } else {
                    self.phase = 1;
                    ctx.set_timer(Time::units(2), TAG2);
                }
            }
            TAG2 => {
                debug_assert_eq!(self.phase, 1);
                if !self.decided {
                    if !self.collection1_any {
                        self.decision = false;
                    }
                    self.proposed = true;
                    let v = decision_value(self.decision);
                    let mut host = CtxHost {
                        ctx,
                        wrap: Nbac1Msg::Cons,
                    };
                    self.cons.propose(v, &mut host);
                }
            }
            other => unreachable!("unknown 1NBAC timer tag {other}"),
        }
        let _ = self.proposed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::U;

    #[test]
    fn one_delay_n_squared_messages() {
        for n in 2..=8 {
            let (d, m) = nice_complexity::<Nbac1>(n, 1);
            assert_eq!((d, m), (1, (n * n - n) as u64), "n={n}");
        }
    }

    #[test]
    fn no_vote_aborts_in_one_delay() {
        let sc = Scenario::nice(4, 1).vote_no(2);
        let out = sc.run::<Nbac1>();
        assert_eq!(out.decided_values(), vec![0]);
        let m = out.metrics();
        assert_eq!(m.delays, Some(1));
    }

    #[test]
    fn crash_failure_executions_solve_nbac() {
        // One crash (minority of n=4): consensus can terminate, so the full
        // NBAC triple must hold in every crash-failure execution.
        let n = 4;
        for victim in 0..n {
            for t in 0..3u64 {
                for partial in [None, Some(1)] {
                    let crash = match partial {
                        None => Crash::at(Time::units(t)),
                        Some(k) => Crash::partial(Time::units(t), k),
                    };
                    let sc = Scenario::nice(n, 1).crash(victim, crash);
                    let out = sc.run::<Nbac1>();
                    check(&out, &sc.votes, ProtocolKind::Nbac1.cell())
                        .assert_ok(&format!("victim {victim} t={t} partial={partial:?}"));
                    assert!(out.quiescent || out.decisions.iter().all(|d| d.is_some()));
                }
            }
        }
    }

    #[test]
    fn network_failure_keeps_validity_and_termination() {
        // Delay every vote from P1 beyond U: deciders must abort (votes
        // missing) or all commit; agreement is NOT promised here, but V and
        // T are.
        let sc = Scenario::nice(4, 1).rule(DelayRule::from_process(0, 3 * U));
        let out = sc.run::<Nbac1>();
        let report = check(&out, &sc.votes, ProtocolKind::Nbac1.cell());
        report.assert_ok("delayed votes");
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn decision_broadcast_rescues_slow_collectors() {
        // P1's vote reaches everyone but P4 in time; P4 waits for a [D,d]
        // and decides from it without consensus.
        let sc =
            Scenario::nice(4, 1).rule(DelayRule::link(0, 3, Time::ZERO, Time::units(1), 2 * U));
        let out = sc.run::<Nbac1>();
        // All must decide 1: three processes decide at 1 delay; P4 receives
        // the [D,1] broadcast, proposes 1 to consensus and adopts its
        // decision (several delays later, once a proposer-owned ballot
        // comes around).
        assert_eq!(out.decided_values(), vec![1]);
        let (t4, _) = out.decisions[3].unwrap();
        assert!(t4 > Time::units(2), "P4 decides via consensus, after 2U");
        for p in 0..3 {
            assert_eq!(out.decisions[p].unwrap().0, Time::units(1));
        }
    }
}
