//! [`Wire`] encodings for every protocol's message alphabet.
//!
//! One module implements the codec for all twelve `Msg` types so the tag
//! assignments live side by side; the format rules are in
//! [`ac_sim::wire`]. Each enum encodes as a leading tag byte followed by
//! the variant's fields; the tags are part of the wire contract and must
//! never be renumbered (append-only).

use ac_consensus::PaxosMsg;
use ac_sim::{Wire, WireError};

use super::anbac::ANbacMsg;
use super::avnbac::AvMsg;
use super::chain_nbac::ChainMsg;
use super::d1cc::D1ccMsg;
use super::inbac::InbacMsg;
use super::nbac0::Nbac0Msg;
use super::nbac1::Nbac1Msg;
use super::nbac_2n2::B2n2Msg;
use super::nbac_2n2f::C2n2fMsg;
use super::paxos_commit::PcMsg;
use super::three_pc::ThreePcMsg;
use super::two_pc::TwoPcMsg;

impl Wire for InbacMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            InbacMsg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            InbacMsg::C(set) => {
                buf.push(1);
                set.encode(buf);
            }
            InbacMsg::Help => buf.push(2),
            InbacMsg::Helped(set) => {
                buf.push(3);
                set.encode(buf);
            }
            InbacMsg::Abort0 => buf.push(4),
            InbacMsg::Cons(m) => {
                buf.push(5);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(InbacMsg::V(bool::decode(buf)?)),
            1 => Ok(InbacMsg::C(Vec::decode(buf)?)),
            2 => Ok(InbacMsg::Help),
            3 => Ok(InbacMsg::Helped(Vec::decode(buf)?)),
            4 => Ok(InbacMsg::Abort0),
            5 => Ok(InbacMsg::Cons(PaxosMsg::decode(buf)?)),
            _ => Err(WireError::Invalid("InbacMsg tag")),
        }
    }
}

impl Wire for ANbacMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ANbacMsg::Chain(v) => {
                buf.push(0);
                v.encode(buf);
            }
            ANbacMsg::V0 => buf.push(1),
            ANbacMsg::B0 => buf.push(2),
            ANbacMsg::AckV => buf.push(3),
            ANbacMsg::AckB => buf.push(4),
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ANbacMsg::Chain(bool::decode(buf)?)),
            1 => Ok(ANbacMsg::V0),
            2 => Ok(ANbacMsg::B0),
            3 => Ok(ANbacMsg::AckV),
            4 => Ok(ANbacMsg::AckB),
            _ => Err(WireError::Invalid("ANbacMsg tag")),
        }
    }
}

impl Wire for AvMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            AvMsg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            AvMsg::B(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(AvMsg::V(bool::decode(buf)?)),
            1 => Ok(AvMsg::B(bool::decode(buf)?)),
            _ => Err(WireError::Invalid("AvMsg tag")),
        }
    }
}

impl Wire for ChainMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(ChainMsg(bool::decode(buf)?))
    }
}

impl Wire for D1ccMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            D1ccMsg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            D1ccMsg::D(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(D1ccMsg::V(bool::decode(buf)?)),
            1 => Ok(D1ccMsg::D(bool::decode(buf)?)),
            _ => Err(WireError::Invalid("D1ccMsg tag")),
        }
    }
}

impl Wire for Nbac0Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Nbac0Msg::V0 => buf.push(0),
            Nbac0Msg::B0 => buf.push(1),
            Nbac0Msg::Ack => buf.push(2),
            Nbac0Msg::Cons(m) => {
                buf.push(3);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Nbac0Msg::V0),
            1 => Ok(Nbac0Msg::B0),
            2 => Ok(Nbac0Msg::Ack),
            3 => Ok(Nbac0Msg::Cons(PaxosMsg::decode(buf)?)),
            _ => Err(WireError::Invalid("Nbac0Msg tag")),
        }
    }
}

impl Wire for Nbac1Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Nbac1Msg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            Nbac1Msg::D(v) => {
                buf.push(1);
                v.encode(buf);
            }
            Nbac1Msg::Cons(m) => {
                buf.push(2);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(Nbac1Msg::V(bool::decode(buf)?)),
            1 => Ok(Nbac1Msg::D(bool::decode(buf)?)),
            2 => Ok(Nbac1Msg::Cons(PaxosMsg::decode(buf)?)),
            _ => Err(WireError::Invalid("Nbac1Msg tag")),
        }
    }
}

impl Wire for B2n2Msg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            B2n2Msg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            B2n2Msg::B(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(B2n2Msg::V(bool::decode(buf)?)),
            1 => Ok(B2n2Msg::B(bool::decode(buf)?)),
            _ => Err(WireError::Invalid("B2n2Msg tag")),
        }
    }
}

impl Wire for C2n2fMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            C2n2fMsg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            C2n2fMsg::B(v) => {
                buf.push(1);
                v.encode(buf);
            }
            C2n2fMsg::Z(v) => {
                buf.push(2);
                v.encode(buf);
            }
            C2n2fMsg::Help => buf.push(3),
            C2n2fMsg::Helped(v) => {
                buf.push(4);
                v.encode(buf);
            }
            C2n2fMsg::Cons(m) => {
                buf.push(5);
                m.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(C2n2fMsg::V(bool::decode(buf)?)),
            1 => Ok(C2n2fMsg::B(bool::decode(buf)?)),
            2 => Ok(C2n2fMsg::Z(bool::decode(buf)?)),
            3 => Ok(C2n2fMsg::Help),
            4 => Ok(C2n2fMsg::Helped(bool::decode(buf)?)),
            5 => Ok(C2n2fMsg::Cons(PaxosMsg::decode(buf)?)),
            _ => Err(WireError::Invalid("C2n2fMsg tag")),
        }
    }
}

impl Wire for PcMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PcMsg::Vote2a { rm, vote } => {
                buf.push(0);
                rm.encode(buf);
                vote.encode(buf);
            }
            PcMsg::Bundle0 { vals } => {
                buf.push(1);
                vals.encode(buf);
            }
            PcMsg::Prepare { bal } => {
                buf.push(2);
                bal.encode(buf);
            }
            PcMsg::Promise { bal, accepted } => {
                buf.push(3);
                bal.encode(buf);
                accepted.encode(buf);
            }
            PcMsg::Accept { bal, vals } => {
                buf.push(4);
                bal.encode(buf);
                vals.encode(buf);
            }
            PcMsg::Accepted { bal } => {
                buf.push(5);
                bal.encode(buf);
            }
            PcMsg::Outcome { commit } => {
                buf.push(6);
                commit.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(PcMsg::Vote2a {
                rm: usize::decode(buf)?,
                vote: bool::decode(buf)?,
            }),
            1 => Ok(PcMsg::Bundle0 {
                vals: Vec::decode(buf)?,
            }),
            2 => Ok(PcMsg::Prepare {
                bal: u64::decode(buf)?,
            }),
            3 => Ok(PcMsg::Promise {
                bal: u64::decode(buf)?,
                accepted: Vec::decode(buf)?,
            }),
            4 => Ok(PcMsg::Accept {
                bal: u64::decode(buf)?,
                vals: Vec::decode(buf)?,
            }),
            5 => Ok(PcMsg::Accepted {
                bal: u64::decode(buf)?,
            }),
            6 => Ok(PcMsg::Outcome {
                commit: bool::decode(buf)?,
            }),
            _ => Err(WireError::Invalid("PcMsg tag")),
        }
    }
}

impl Wire for ThreePcMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ThreePcMsg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            ThreePcMsg::PreCommit => buf.push(1),
            ThreePcMsg::AckPc => buf.push(2),
            ThreePcMsg::DoCommit => buf.push(3),
            ThreePcMsg::DoAbort => buf.push(4),
            ThreePcMsg::States(mask) => {
                buf.push(5);
                mask.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(ThreePcMsg::V(bool::decode(buf)?)),
            1 => Ok(ThreePcMsg::PreCommit),
            2 => Ok(ThreePcMsg::AckPc),
            3 => Ok(ThreePcMsg::DoCommit),
            4 => Ok(ThreePcMsg::DoAbort),
            5 => Ok(ThreePcMsg::States(u8::decode(buf)?)),
            _ => Err(WireError::Invalid("ThreePcMsg tag")),
        }
    }
}

impl Wire for TwoPcMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TwoPcMsg::V(v) => {
                buf.push(0);
                v.encode(buf);
            }
            TwoPcMsg::D(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(TwoPcMsg::V(bool::decode(buf)?)),
            1 => Ok(TwoPcMsg::D(bool::decode(buf)?)),
            _ => Err(WireError::Invalid("TwoPcMsg tag")),
        }
    }
}
