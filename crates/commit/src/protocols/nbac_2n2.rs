//! (2n−2)NBAC — the message-optimal protocol for cell (AVT, VT)
//! (Appendix E.4): NBAC in every crash-failure execution, validity and
//! termination in every network-failure execution, `2n−2` messages in nice
//! executions.
//!
//! Every process sends its vote to `Pn`; `Pn` broadcasts the AND; everyone
//! noops for `f+1` delays and decides. While nooping, a process that got no
//! `[B,·]` from `Pn` (or saw a 0) broadcasts `[B,0]`; nooping for `f+1`
//! delays guarantees some correct process succeeds in notifying every
//! correct process despite up to `f` crashes.

use ac_sim::{Automaton, Ctx, ProcessId};

use super::etime;
use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG: u32 = 1;

/// (2n−2)NBAC's message alphabet.
#[derive(Clone, Debug)]
pub enum B2n2Msg {
    /// A vote sent to the hub P1.
    V(bool),
    /// The hub's broadcast of the conjunction.
    B(bool),
}

/// One process of (2n−2)NBAC.
#[derive(Debug)]
pub struct Nbac2n2 {
    me: ProcessId,
    n: usize,
    f: usize,
    votes: bool,
    received_b: bool,
    phase: u8,
    got: Vec<bool>,
    /// Broadcast `[B,0]` at most once (see `ChainNbac` for the rationale of
    /// bounding the pseudocode's unconditional re-broadcast).
    sent_b0: bool,
}

impl Nbac2n2 {
    fn is_hub(&self) -> bool {
        self.me == self.n - 1
    }

    fn broadcast_zero(&mut self, ctx: &mut Ctx<B2n2Msg>) {
        if !self.sent_b0 {
            self.sent_b0 = true;
            ctx.broadcast_others(B2n2Msg::B(false));
        }
    }
}

impl CommitProtocol for Nbac2n2 {
    const NAME: &'static str = "(2n-2)NBAC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        let mut got = vec![false; n];
        got[me] = true;
        Nbac2n2 {
            me,
            n,
            f,
            votes: vote,
            received_b: false,
            phase: 0,
            got,
            sent_b0: false,
        }
    }
}

impl Automaton for Nbac2n2 {
    type Msg = B2n2Msg;

    fn on_start(&mut self, ctx: &mut Ctx<B2n2Msg>) {
        if self.is_hub() {
            ctx.set_timer(etime(2), TAG);
        } else {
            ctx.send(self.n - 1, B2n2Msg::V(self.votes));
            ctx.set_timer(etime(3), TAG);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: B2n2Msg, ctx: &mut Ctx<B2n2Msg>) {
        match msg {
            B2n2Msg::V(v) => {
                self.votes &= v;
                self.got[from] = true;
            }
            B2n2Msg::B(v) => {
                self.received_b = true;
                self.votes = v;
                if !v {
                    self.broadcast_zero(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, _tag: u32, ctx: &mut Ctx<B2n2Msg>) {
        let f = self.f as u64;
        match self.phase {
            0 => {
                if self.is_hub() {
                    if self.votes && self.got.iter().all(|&g| g) {
                        ctx.broadcast(B2n2Msg::B(true));
                    } else {
                        self.votes = false;
                        self.sent_b0 = true;
                        ctx.broadcast(B2n2Msg::B(false));
                    }
                } else if !self.received_b {
                    self.votes = false;
                    self.broadcast_zero(ctx);
                }
                ctx.set_timer(etime(3 + f), TAG);
                self.phase = 1;
            }
            1 => ctx.decide(decision_value(self.votes)),
            other => unreachable!("(2n-2)NBAC timer in phase {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::{Time, U};

    #[test]
    fn nice_execution_uses_2n_minus_2_messages() {
        for n in 2..=8 {
            for f in 1..n {
                let (d, m) = nice_complexity::<Nbac2n2>(n, f);
                assert_eq!(m, 2 * n as u64 - 2, "n={n} f={f}");
                assert_eq!(d, f as u64 + 2, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn no_vote_aborts_everyone() {
        for dissenter in 0..4 {
            let sc = Scenario::nice(4, 2).vote_no(dissenter);
            let out = sc.run::<Nbac2n2>();
            check(&out, &sc.votes, ProtocolKind::Nbac2n2.cell()).assert_ok("no vote");
            assert_eq!(out.decided_values(), vec![0]);
        }
    }

    #[test]
    fn hub_crash_mid_broadcast_is_repaired() {
        // The agreement proof's adversarial scenario: Pn crashes while
        // sending [B,1]; receivers that got nothing broadcast [B,0]; f+1
        // nooping delays let the 0 flood win everywhere.
        let n = 5;
        for reached in 0..n {
            for f in 1..n {
                let sc = Scenario::nice(n, f).crash(n - 1, Crash::partial(Time::units(1), reached));
                let out = sc.run::<Nbac2n2>();
                check(&out, &sc.votes, ProtocolKind::Nbac2n2.cell())
                    .assert_ok(&format!("reached={reached} f={f}"));
                let vals = out.decided_values();
                assert_eq!(vals.len(), 1, "reached={reached} f={f}: {vals:?}");
            }
        }
    }

    #[test]
    fn participant_crash_before_vote_aborts() {
        let sc = Scenario::nice(4, 1).crash(0, Crash::initially());
        let out = sc.run::<Nbac2n2>();
        check(&out, &sc.votes, ProtocolKind::Nbac2n2.cell()).assert_ok("silent P1");
        assert_eq!(out.decided_values(), vec![0]);
    }

    #[test]
    fn termination_and_validity_survive_network_failure() {
        // Delay the hub's broadcast: everyone still decides at the nooping
        // deadline (T), and nobody commits without evidence (V). Agreement
        // may break — cell (AVT, VT) does not promise it here.
        let sc = Scenario::nice(4, 1).rule(DelayRule::from_process(3, 4 * U));
        let out = sc.run::<Nbac2n2>();
        let report = check(&out, &sc.votes, ProtocolKind::Nbac2n2.cell());
        report.assert_ok("delayed hub");
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }
}
