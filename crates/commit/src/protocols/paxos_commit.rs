//! PaxosCommit and Faster PaxosCommit (Gray & Lamport 2006), the indulgent
//! baselines of the paper's Table 5.
//!
//! Every process is a resource manager (RM) running one Paxos instance on
//! its own vote. Following the Gray–Lamport normal-case optimization that
//! the paper's message accounting implies, acceptors are co-located with
//! processes `P1..P_{min(2f+1, n)}`; only the first `f+1` ("active")
//! acceptors participate in a failure-free run, the rest are spares engaged
//! by recovery ballots. The recovery leader for ballot `b ≥ 1` is process
//! `(b−1) mod n`, driven by growing timeouts — the same indulgent-liveness
//! scheme as `ac-consensus`.
//!
//! Nice executions (spontaneous start, Table 5 footnote 13):
//!
//! * **PaxosCommit**: RMs send ballot-0 *phase 2a* votes to the `f+1`
//!   active acceptors; acceptors bundle *phase 2b* for all instances to the
//!   leader `P1`; the leader announces the outcome. 3 delays,
//!   `nf + 2n − 2` messages.
//! * **Faster PaxosCommit**: acceptors broadcast their bundles to everyone;
//!   each process learns the outcome directly. 2 delays,
//!   `2fn + 2n − 2f − 2` messages.

use ac_sim::{Automaton, Ctx, ProcessId, U};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

/// Recovery-ballot timeout base/growth (see `ac_consensus` for rationale).
const ROUND_TICKS: u64 = 8 * U;
const ROUND_GROWTH: u64 = 4 * U;
const TAG_ROUND_BASE: u32 = 16;

/// PaxosCommit's message alphabet.
#[derive(Clone, Debug)]
pub enum PcMsg {
    /// Ballot-0 phase 2a: RM `rm` registers its vote at an acceptor.
    Vote2a {
        /// The resource manager whose vote this is.
        rm: ProcessId,
        /// The vote.
        vote: bool,
    },
    /// An acceptor's bundled ballot-0 phase 2b covering all instances.
    Bundle0 {
        /// `(instance, vote)` pairs the acceptor accepted at ballot 0.
        vals: Vec<(ProcessId, bool)>,
    },
    /// Recovery phase 1a for all instances.
    Prepare {
        /// The recovery ballot.
        bal: u64,
    },
    /// Recovery phase 1b: per-instance highest accepted (instance, ballot,
    /// value).
    Promise {
        /// The ballot being promised.
        bal: u64,
        /// Per-instance `(instance, ballot, value)` of the highest accept.
        accepted: Vec<(ProcessId, u64, bool)>,
    },
    /// Recovery phase 2a with a value for every instance.
    Accept {
        /// The recovery ballot.
        bal: u64,
        /// A value for every instance.
        vals: Vec<(ProcessId, bool)>,
    },
    /// Recovery phase 2b.
    Accepted {
        /// The ballot that was accepted.
        bal: u64,
    },
    /// The commit/abort outcome announcement.
    Outcome {
        /// Whether the transaction committed.
        commit: bool,
    },
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum LeaderPhase {
    Idle,
    Preparing {
        promises: Vec<ProcessId>,
        best: Vec<(ProcessId, u64, bool)>,
    },
    Accepting {
        accepts: Vec<ProcessId>,
        commit: bool,
    },
}

/// Shared machinery of both variants.
#[derive(Debug)]
pub struct PaxosCommitCore {
    me: ProcessId,
    n: usize,
    f: usize,
    vote: bool,
    faster: bool,
    // --- acceptor state (me < acceptor_count) ---
    /// Highest promised recovery ballot (0 = only ballot 0 seen).
    promised: u64,
    /// Per RM instance: highest accepted (ballot, value).
    accepted: Vec<Option<(u64, bool)>>,
    sent_bundle: bool,
    // --- learner state ---
    /// Ballot-0 bundles received, by acceptor.
    bundles: Vec<Option<Vec<(ProcessId, bool)>>>,
    decided: bool,
    /// The decided outcome, kept to short-circuit stragglers.
    outcome_cache: bool,
    // --- recovery proposer state ---
    round: u64,
    phase: LeaderPhase,
}

impl PaxosCommitCore {
    fn new(me: ProcessId, n: usize, f: usize, vote: Vote, faster: bool) -> Self {
        validate_params(n, f);
        PaxosCommitCore {
            me,
            n,
            f,
            vote,
            faster,
            promised: 0,
            accepted: vec![None; n],
            sent_bundle: false,
            bundles: vec![None; n],
            decided: false,
            outcome_cache: false,
            round: 0,
            phase: LeaderPhase::Idle,
        }
    }

    /// Total acceptors: `2f+1` when the cluster is big enough.
    #[inline]
    fn acceptor_count(&self) -> usize {
        (2 * self.f + 1).min(self.n)
    }

    /// Active (normal-case) acceptors: the first `f+1`.
    #[inline]
    fn active_count(&self) -> usize {
        self.f + 1
    }

    #[inline]
    fn is_acceptor(&self) -> bool {
        self.me < self.acceptor_count()
    }

    #[inline]
    fn recovery_majority(&self) -> usize {
        self.acceptor_count() / 2 + 1
    }

    #[inline]
    fn leader_of(&self, bal: u64) -> ProcessId {
        ((bal - 1) % self.n as u64) as usize
    }

    fn decide(&mut self, commit: bool, ctx: &mut Ctx<PcMsg>) {
        if !self.decided {
            self.decided = true;
            self.outcome_cache = commit;
            ctx.decide(decision_value(commit));
        }
    }

    /// Try to conclude from complete ballot-0 bundles of all active
    /// acceptors.
    fn try_fast_learn(&mut self, ctx: &mut Ctx<PcMsg>) {
        if self.decided {
            return;
        }
        let mut commit = true;
        for a in 0..self.active_count() {
            match &self.bundles[a] {
                Some(vals) if vals.len() == self.n => {
                    commit &= vals.iter().all(|&(_, v)| v);
                }
                _ => return,
            }
        }
        // Basic variant: the leader learnt; announce to everyone.
        if !self.faster && self.me == 0 {
            ctx.broadcast_others(PcMsg::Outcome { commit });
        }
        ctx.trace(|| format!("ballot-0 outcome: commit={commit}"));
        self.decide(commit, ctx);
    }

    fn maybe_send_bundle(&mut self, ctx: &mut Ctx<PcMsg>) {
        if self.sent_bundle || !self.is_acceptor() || self.promised > 0 {
            return;
        }
        if self.accepted.iter().any(|a| a.is_none()) {
            return;
        }
        self.sent_bundle = true;
        let vals: Vec<(ProcessId, bool)> = self
            .accepted
            .iter()
            .enumerate()
            .map(|(rm, a)| (rm, a.unwrap().1))
            .collect();
        if self.faster {
            // Everyone is a learner.
            ctx.broadcast(PcMsg::Bundle0 { vals });
        } else {
            ctx.send(0, PcMsg::Bundle0 { vals });
        }
    }

    fn arm_round_timer(&mut self, ctx: &mut Ctx<PcMsg>) {
        let deadline = ctx.now() + ROUND_TICKS + self.round * ROUND_GROWTH;
        ctx.set_timer(deadline, TAG_ROUND_BASE + self.round as u32);
    }

    fn start_recovery(&mut self, ctx: &mut Ctx<PcMsg>) {
        let bal = self.round;
        debug_assert!(bal >= 1 && self.leader_of(bal) == self.me);
        self.phase = LeaderPhase::Preparing {
            promises: Vec::new(),
            best: Vec::new(),
        };
        for a in 0..self.acceptor_count() {
            ctx.send(a, PcMsg::Prepare { bal });
        }
    }

    fn on_start(&mut self, ctx: &mut Ctx<PcMsg>) {
        // Ballot-0 phase 2a to the active acceptors.
        for a in 0..self.active_count() {
            ctx.send(
                a,
                PcMsg::Vote2a {
                    rm: self.me,
                    vote: self.vote,
                },
            );
        }
        self.arm_round_timer(ctx);
    }

    fn on_message(&mut self, from: ProcessId, msg: PcMsg, ctx: &mut Ctx<PcMsg>) {
        match msg {
            PcMsg::Vote2a { rm, vote } => {
                if self.is_acceptor() && self.promised == 0 && self.accepted[rm].is_none() {
                    self.accepted[rm] = Some((0, vote));
                    self.maybe_send_bundle(ctx);
                }
            }
            PcMsg::Bundle0 { vals } => {
                if from < self.active_count() && self.bundles[from].is_none() {
                    self.bundles[from] = Some(vals);
                    if self.faster || self.me == 0 {
                        self.try_fast_learn(ctx);
                    }
                }
            }
            PcMsg::Prepare { bal } => {
                if self.decided {
                    // Short-circuit stragglers: the outcome is enough for
                    // them to decide, no per-instance state needed.
                    ctx.send(
                        from,
                        PcMsg::Outcome {
                            commit: self.outcome_cache,
                        },
                    );
                } else if self.is_acceptor() && bal > self.promised {
                    self.promised = bal;
                    let accepted: Vec<(ProcessId, u64, bool)> = self
                        .accepted
                        .iter()
                        .enumerate()
                        .filter_map(|(rm, a)| a.map(|(b, v)| (rm, b, v)))
                        .collect();
                    ctx.send(from, PcMsg::Promise { bal, accepted });
                }
            }
            PcMsg::Promise { bal, accepted } => {
                if self.decided || bal != self.round || self.leader_of(bal) != self.me {
                    return;
                }
                let majority = self.recovery_majority();
                let n = self.n;
                if let LeaderPhase::Preparing { promises, best } = &mut self.phase {
                    if promises.contains(&from) {
                        return;
                    }
                    promises.push(from);
                    for (rm, b, v) in accepted {
                        match best.iter_mut().find(|(r, _, _)| *r == rm) {
                            Some(entry) if entry.1 < b => *entry = (rm, b, v),
                            Some(_) => {}
                            None => best.push((rm, b, v)),
                        }
                    }
                    if promises.len() >= majority {
                        // Instances with no accepted value anywhere in the
                        // quorum are aborted (the RM never registered in
                        // time): the Gray–Lamport rule.
                        let vals: Vec<(ProcessId, bool)> = (0..n)
                            .map(|rm| {
                                let v = best
                                    .iter()
                                    .find(|(r, _, _)| *r == rm)
                                    .map(|&(_, _, v)| v)
                                    .unwrap_or(false);
                                (rm, v)
                            })
                            .collect();
                        let commit = vals.iter().all(|&(_, v)| v);
                        self.phase = LeaderPhase::Accepting {
                            accepts: Vec::new(),
                            commit,
                        };
                        for a in 0..self.acceptor_count() {
                            ctx.send(
                                a,
                                PcMsg::Accept {
                                    bal,
                                    vals: vals.clone(),
                                },
                            );
                        }
                    }
                }
            }
            PcMsg::Accept { bal, vals } => {
                if self.is_acceptor() && bal >= self.promised && bal > 0 {
                    self.promised = bal;
                    for (rm, v) in vals {
                        self.accepted[rm] = Some((bal, v));
                    }
                    ctx.send(from, PcMsg::Accepted { bal });
                }
            }
            PcMsg::Accepted { bal } => {
                if self.decided || bal != self.round || self.leader_of(bal) != self.me {
                    return;
                }
                let majority = self.recovery_majority();
                if let LeaderPhase::Accepting { accepts, commit } = &mut self.phase {
                    if accepts.contains(&from) {
                        return;
                    }
                    accepts.push(from);
                    if accepts.len() >= majority {
                        let commit = *commit;
                        ctx.broadcast_others(PcMsg::Outcome { commit });
                        self.decide(commit, ctx);
                    }
                }
            }
            PcMsg::Outcome { commit } => {
                self.decide(commit, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<PcMsg>) {
        debug_assert!(tag >= TAG_ROUND_BASE);
        let fired = (tag - TAG_ROUND_BASE) as u64;
        if self.decided || fired != self.round {
            return;
        }
        self.round += 1;
        self.phase = LeaderPhase::Idle;
        if self.leader_of(self.round) == self.me {
            self.start_recovery(ctx);
        }
        self.arm_round_timer(ctx);
    }
}

macro_rules! pc_flavor {
    ($name:ident, $disp:expr, $faster:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name(PaxosCommitCore);

        impl CommitProtocol for $name {
            const NAME: &'static str = $disp;

            fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
                $name(PaxosCommitCore::new(me, n, f, vote, $faster))
            }
        }

        impl Automaton for $name {
            type Msg = PcMsg;

            fn on_start(&mut self, ctx: &mut Ctx<PcMsg>) {
                self.0.on_start(ctx);
            }
            fn on_message(&mut self, from: ProcessId, msg: PcMsg, ctx: &mut Ctx<PcMsg>) {
                self.0.on_message(from, msg, ctx);
            }
            fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<PcMsg>) {
                self.0.on_timer(tag, ctx);
            }
        }
    };
}

pc_flavor!(
    PaxosCommit,
    "PaxosCommit",
    false,
    "Gray–Lamport PaxosCommit: 3 delays, `nf+2n−2` messages in nice executions."
);
pc_flavor!(
    FasterPaxosCommit,
    "FasterPaxosCommit",
    true,
    "Faster PaxosCommit: acceptors broadcast phase 2b; 2 delays, `2fn+2n−2f−2` messages."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::Time;

    #[test]
    fn paxos_commit_nice_matches_table5() {
        for n in 3..=8 {
            for f in 1..=(n - 1) / 2 {
                let (d, m) = nice_complexity::<PaxosCommit>(n, f);
                assert_eq!(d, 3, "n={n} f={f}");
                assert_eq!(m, (n * f + 2 * n - 2) as u64, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn faster_paxos_commit_nice_matches_table5() {
        for n in 3..=8 {
            for f in 1..=(n - 1) / 2 {
                let (d, m) = nice_complexity::<FasterPaxosCommit>(n, f);
                assert_eq!(d, 2, "n={n} f={f}");
                assert_eq!(m, (2 * f * n + 2 * n - 2 * f - 2) as u64, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn no_vote_aborts_both_variants() {
        for dissenter in 0..5 {
            let sc = Scenario::nice(5, 2).vote_no(dissenter);
            let a = sc.run::<PaxosCommit>();
            assert_eq!(a.decided_values(), vec![0], "basic, dissenter {dissenter}");
            let b = sc.run::<FasterPaxosCommit>();
            assert_eq!(b.decided_values(), vec![0], "faster, dissenter {dissenter}");
        }
    }

    #[test]
    fn rm_crash_recovers_to_abort() {
        // An RM crashes before registering its vote: ballot 0 never
        // completes; the recovery leader aborts its instance.
        let sc = Scenario::nice(5, 2).crash(4, Crash::initially());
        for (nm, out) in [
            ("basic", sc.run::<PaxosCommit>()),
            ("faster", sc.run::<FasterPaxosCommit>()),
        ] {
            check(&out, &sc.votes, ProtocolKind::PaxosCommit.cell()).assert_ok(nm);
            assert_eq!(out.decided_values(), vec![0], "{nm}");
            for p in 0..4 {
                assert!(out.decisions[p].is_some(), "{nm}: P{} undecided", p + 1);
            }
        }
    }

    #[test]
    fn leader_crash_rotates_recovery() {
        // P1 is both active acceptor and leader; crashing it forces a later
        // recovery ballot led by another process. n=5, f=1 keeps a majority
        // of the 3 acceptors alive.
        let sc = Scenario::nice(5, 1).crash(0, Crash::at(Time::units(1)));
        let out = sc.run::<PaxosCommit>();
        check(&out, &sc.votes, ProtocolKind::PaxosCommit.cell()).assert_ok("leader crash");
        for p in 1..5 {
            assert!(out.decisions[p].is_some(), "P{} undecided", p + 1);
        }
        let vals = out.decided_values();
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn delayed_bundle_is_indulgently_survived() {
        use ac_sim::U;
        // The leader's bundle path is delayed: recovery kicks in, agreement
        // and termination still hold (NBAC in a network-failure execution).
        let sc =
            Scenario::nice(5, 1).rule(DelayRule::link(1, 0, Time::ZERO, Time::units(30), 25 * U));
        let out = sc.run::<PaxosCommit>();
        check(&out, &sc.votes, ProtocolKind::PaxosCommit.cell()).assert_ok("delayed bundle");
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }
}
