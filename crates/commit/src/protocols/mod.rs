//! Protocol automata.
//!
//! Every module implements one protocol from the paper as a deterministic
//! automaton over the `ac-sim` kernel. Timer conventions follow the
//! appendix: INBAC, 1NBAC and 0NBAC use an absolute clock with propose at
//! time 0 (`time k` = `k·U`); the Appendix E protocols state "the timer
//! starts at time 1 when the first sending event happens", i.e.
//! `time k` = `(k−1)·U`. A private helper `etime` encodes the latter.

use ac_sim::Time;

pub mod anbac;
pub mod avnbac;
pub mod chain_nbac;
pub mod d1cc;
pub mod inbac;
pub mod nbac0;
pub mod nbac1;
pub mod nbac_2n2;
pub mod nbac_2n2f;
pub mod paxos_commit;
pub mod three_pc;
pub mod two_pc;
mod wire;

pub use anbac::ANbac;
pub use avnbac::{AvNbacDelayOpt, AvNbacMsgOpt};
pub use chain_nbac::ChainNbac;
pub use d1cc::D1cc;
pub use inbac::{Inbac, InbacFastAbort, InbacUnbundledAck};
pub use nbac0::Nbac0;
pub use nbac1::Nbac1;
pub use nbac_2n2::Nbac2n2;
pub use nbac_2n2f::Nbac2n2f;
pub use paxos_commit::{FasterPaxosCommit, PaxosCommit};
pub use three_pc::ThreePc;
pub use two_pc::TwoPc;

use crate::problem::CommitProtocol;
use crate::runner::Scenario;
use crate::taxonomy::{Cell, PropSet};
use ac_net::Outcome;

/// Appendix-E timer convention: "set timer to time k" where the timer
/// starts at time 1 when the first sending event happens — i.e. absolute
/// virtual time `(k−1)·U`.
#[inline]
pub(crate) fn etime(k: u64) -> Time {
    debug_assert!(k >= 1);
    Time::units(k - 1)
}

/// Every protocol in the suite, for uniform dispatch by harness/benches.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// INBAC (§5) — the paper's new indulgent protocol.
    Inbac,
    /// INBAC with the §5.2 fast-abort optimization.
    InbacFastAbort,
    /// 1NBAC — one-delay, consensus-backed (Theorem 3).
    Nbac1,
    /// D1CC — logless decentralized one-phase commit (Cornus/EasyCommit
    /// lineage): vote replication before the decision point, no consensus
    /// module, no coordinator log.
    D1cc,
    /// 0NBAC — zero-delay in the all-Yes nice execution.
    Nbac0,
    /// aNBAC — asynchronous, always runs consensus.
    ANbac,
    /// avNBAC, delay-optimal variant.
    AvNbacDelayOpt,
    /// avNBAC, message-optimal variant.
    AvNbacMsgOpt,
    /// (n−1+f)NBAC — chain broadcast.
    ChainNbac,
    /// (2n−2)NBAC — star broadcast, no fault tolerance on termination.
    Nbac2n2,
    /// (2n−2+f)NBAC — star broadcast plus HELP round.
    Nbac2n2f,
    /// Two-phase commit (blocking baseline).
    TwoPc,
    /// Three-phase commit (non-blocking synchronous baseline).
    ThreePc,
    /// PaxosCommit (Gray & Lamport).
    PaxosCommit,
    /// Faster PaxosCommit — phase-2a pre-assignment.
    FasterPaxosCommit,
}

impl ProtocolKind {
    /// Every protocol, in Table-1 presentation order.
    pub fn all() -> [ProtocolKind; 15] {
        use ProtocolKind::*;
        [
            Inbac,
            InbacFastAbort,
            Nbac1,
            D1cc,
            Nbac0,
            ANbac,
            AvNbacDelayOpt,
            AvNbacMsgOpt,
            ChainNbac,
            Nbac2n2,
            Nbac2n2f,
            TwoPc,
            ThreePc,
            PaxosCommit,
            FasterPaxosCommit,
        ]
    }

    /// The seven protocols of Table 5's head-to-head sweep, in
    /// presentation order. The single source of truth for that list: the
    /// harness's bench baseline, its validator and `ac-bench` all derive
    /// from it.
    pub fn table5() -> [ProtocolKind; 7] {
        [
            ProtocolKind::Nbac1,
            ProtocolKind::D1cc,
            ProtocolKind::ChainNbac,
            ProtocolKind::Inbac,
            ProtocolKind::TwoPc,
            ProtocolKind::PaxosCommit,
            ProtocolKind::FasterPaxosCommit,
        ]
    }

    /// The paper's display name for this protocol.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::Inbac => Inbac::NAME,
            ProtocolKind::InbacFastAbort => InbacFastAbort::NAME,
            ProtocolKind::Nbac1 => Nbac1::NAME,
            ProtocolKind::D1cc => D1cc::NAME,
            ProtocolKind::Nbac0 => Nbac0::NAME,
            ProtocolKind::ANbac => ANbac::NAME,
            ProtocolKind::AvNbacDelayOpt => AvNbacDelayOpt::NAME,
            ProtocolKind::AvNbacMsgOpt => AvNbacMsgOpt::NAME,
            ProtocolKind::ChainNbac => ChainNbac::NAME,
            ProtocolKind::Nbac2n2 => Nbac2n2::NAME,
            ProtocolKind::Nbac2n2f => Nbac2n2f::NAME,
            ProtocolKind::TwoPc => TwoPc::NAME,
            ProtocolKind::ThreePc => ThreePc::NAME,
            ProtocolKind::PaxosCommit => PaxosCommit::NAME,
            ProtocolKind::FasterPaxosCommit => FasterPaxosCommit::NAME,
        }
    }

    /// The Table-1 cell whose guarantees this protocol provides.
    pub fn cell(self) -> Cell {
        use PropSet as P;
        match self {
            ProtocolKind::Inbac | ProtocolKind::InbacFastAbort => Cell::new(P::AVT, P::AVT),
            ProtocolKind::Nbac1 | ProtocolKind::D1cc => Cell::new(P::AVT, P::VT),
            ProtocolKind::Nbac0 => Cell::new(P::AT, P::AT),
            ProtocolKind::ANbac => Cell::new(P::AV, P::A),
            ProtocolKind::AvNbacDelayOpt | ProtocolKind::AvNbacMsgOpt => Cell::new(P::AV, P::AV),
            ProtocolKind::ChainNbac => Cell::new(P::AVT, P::T),
            ProtocolKind::Nbac2n2 => Cell::new(P::AVT, P::VT),
            ProtocolKind::Nbac2n2f => Cell::new(P::AVT, P::AVT),
            ProtocolKind::TwoPc => Cell::new(P::AV, P::AV),
            ProtocolKind::ThreePc => Cell::new(P::AVT, P::VT),
            ProtocolKind::PaxosCommit | ProtocolKind::FasterPaxosCommit => {
                Cell::new(P::AVT, P::AVT)
            }
        }
    }

    /// Whether the protocol's termination guarantee leans on the consensus
    /// module (and therefore on a correct majority), as the paper notes in
    /// Appendix B.
    pub fn needs_majority_for_termination(self) -> bool {
        matches!(
            self,
            ProtocolKind::Inbac
                | ProtocolKind::InbacFastAbort
                | ProtocolKind::Nbac1
                | ProtocolKind::Nbac0
                | ProtocolKind::Nbac2n2f
                | ProtocolKind::PaxosCommit
                | ProtocolKind::FasterPaxosCommit
        )
    }

    /// Whether the protocol is **logless**: the decision is reconstructable
    /// from votes replicated to peers, so a recovering participant asks the
    /// cluster instead of reading a local prepare record. The live service
    /// skips the critical-path `Prepare` WAL force for these protocols and
    /// journals the vote only alongside the decision (off the commit path).
    pub fn logless(self) -> bool {
        matches!(self, ProtocolKind::D1cc)
    }

    /// Expected nice-execution complexity `(delays, messages)` per the
    /// paper's tables (Tables 2, 3, 5 and the Appendix protocol text),
    /// under this library's measurement conventions (see EXPERIMENTS.md
    /// for the ±1 normalization notes on Table 5).
    pub fn nice_complexity_formula(self, n: u64, f: u64) -> (u64, u64) {
        match self {
            ProtocolKind::Inbac | ProtocolKind::InbacFastAbort => (2, 2 * f * n),
            ProtocolKind::Nbac1 | ProtocolKind::D1cc => (1, n * n - n),
            ProtocolKind::Nbac0 => (1, 0),
            ProtocolKind::ANbac => (n + 2 * f, n - 1 + f),
            ProtocolKind::AvNbacDelayOpt => (1, n * n - n),
            ProtocolKind::AvNbacMsgOpt => (2, 2 * n - 2),
            ProtocolKind::ChainNbac => (n + 2 * f, n - 1 + f),
            ProtocolKind::Nbac2n2 => (f + 2, 2 * n - 2),
            ProtocolKind::Nbac2n2f => {
                let d = if f == 1 { 2 * n - 1 } else { 2 * n + f - 2 };
                (d, 2 * n - 2 + f)
            }
            ProtocolKind::TwoPc => (2, 2 * n - 2),
            ProtocolKind::ThreePc => (4, 4 * n - 4),
            ProtocolKind::PaxosCommit => (3, n * f + 2 * n - 2),
            ProtocolKind::FasterPaxosCommit => (2, 2 * f * n + 2 * n - 2 * f - 2),
        }
    }

    /// Recommend protocols for a desired robustness: every protocol whose
    /// cell dominates `wanted` (after canonicalization), cheapest first —
    /// ordered by nice-execution messages, then delays, at the given
    /// `(n, f)`. This is the taxonomy turned into an API: ask for the
    /// guarantees you need, get the protocols that provide them at the
    /// lowest best-case cost.
    pub fn recommend(wanted: Cell, n: usize, f: usize) -> Vec<ProtocolKind> {
        let wanted = wanted.canonicalize();
        let mut fits: Vec<ProtocolKind> = ProtocolKind::all()
            .into_iter()
            .filter(|k| wanted.le(k.cell()))
            // Accelerated variants share their base cell; recommend the
            // canonical implementations.
            .filter(|k| !matches!(k, ProtocolKind::InbacFastAbort))
            .collect();
        fits.sort_by_key(|k| {
            let (d, m) = k.nice_complexity_formula(n as u64, f as u64);
            (m, d)
        });
        fits
    }

    /// Run `scenario` under this protocol.
    pub fn run(self, scenario: &Scenario) -> Outcome {
        match self {
            ProtocolKind::Inbac => scenario.run::<Inbac>(),
            ProtocolKind::InbacFastAbort => scenario.run::<InbacFastAbort>(),
            ProtocolKind::Nbac1 => scenario.run::<Nbac1>(),
            ProtocolKind::D1cc => scenario.run::<D1cc>(),
            ProtocolKind::Nbac0 => scenario.run::<Nbac0>(),
            ProtocolKind::ANbac => scenario.run::<ANbac>(),
            ProtocolKind::AvNbacDelayOpt => scenario.run::<AvNbacDelayOpt>(),
            ProtocolKind::AvNbacMsgOpt => scenario.run::<AvNbacMsgOpt>(),
            ProtocolKind::ChainNbac => scenario.run::<ChainNbac>(),
            ProtocolKind::Nbac2n2 => scenario.run::<Nbac2n2>(),
            ProtocolKind::Nbac2n2f => scenario.run::<Nbac2n2f>(),
            ProtocolKind::TwoPc => scenario.run::<TwoPc>(),
            ProtocolKind::ThreePc => scenario.run::<ThreePc>(),
            ProtocolKind::PaxosCommit => scenario.run::<PaxosCommit>(),
            ProtocolKind::FasterPaxosCommit => scenario.run::<FasterPaxosCommit>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommend_indulgent_prefers_the_message_optimum() {
        let recs = ProtocolKind::recommend(Cell::INDULGENT, 6, 2);
        // Only the indulgent protocols qualify; (2n-2+f)NBAC is cheapest in
        // messages, then PaxosCommit, INBAC, FasterPaxosCommit.
        assert_eq!(
            recs,
            vec![
                ProtocolKind::Nbac2n2f,
                ProtocolKind::PaxosCommit,
                ProtocolKind::Inbac,
                ProtocolKind::FasterPaxosCommit,
            ]
        );
    }

    #[test]
    fn recommend_weak_cells_include_cheap_protocols() {
        let recs = ProtocolKind::recommend(Cell::new(PropSet::AT, PropSet::AT), 6, 2);
        assert_eq!(recs.first(), Some(&ProtocolKind::Nbac0), "0 messages wins");
        // Indulgent protocols also qualify (their cells dominate).
        assert!(recs.contains(&ProtocolKind::Inbac));
        // 2PC does not: its cell (AV, AV) lacks termination.
        assert!(!recs.contains(&ProtocolKind::TwoPc));
    }

    #[test]
    fn recommend_canonicalizes_empty_cells() {
        // (A, V) is an empty cell; it reduces to (AV, V), which e.g.
        // avNBAC and 1NBAC dominate.
        let recs = ProtocolKind::recommend(Cell::new(PropSet::A, PropSet::V), 5, 1);
        assert!(recs.contains(&ProtocolKind::AvNbacMsgOpt));
        assert!(recs.contains(&ProtocolKind::Nbac1));
        assert!(
            !recs.contains(&ProtocolKind::Nbac0),
            "0NBAC has no validity"
        );
    }

    #[test]
    fn every_protocol_dominates_its_own_cell() {
        for kind in ProtocolKind::all() {
            let recs = ProtocolKind::recommend(kind.cell(), 5, 2);
            assert!(
                recs.contains(&kind) || matches!(kind, ProtocolKind::InbacFastAbort),
                "{} missing from its own cell's recommendations",
                kind.name()
            );
        }
    }

    #[test]
    fn cells_and_formulas_are_consistent_with_bounds() {
        // No protocol may claim a nice execution cheaper than its cell's
        // lower bound (that would contradict the paper's Theorems 1/2).
        for kind in ProtocolKind::all() {
            for (n, f) in [(4usize, 1usize), (6, 2), (8, 5)] {
                let b = kind.cell().bounds(n, f);
                let (d, m) = kind.nice_complexity_formula(n as u64, f as u64);
                assert!(d >= b.delays, "{}: d {d} < bound {}", kind.name(), b.delays);
                assert!(
                    m >= b.messages,
                    "{}: m {m} < bound {}",
                    kind.name(),
                    b.messages
                );
            }
        }
    }
}
