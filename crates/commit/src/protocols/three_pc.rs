//! Three-phase commit (Skeen 1981), the classical non-blocking fix for 2PC
//! (paper §6.2): it adds a *prepare-to-commit* round so that no process
//! commits before everyone is able to commit, plus a termination protocol
//! run when the coordinator is suspected.
//!
//! This implementation uses state flooding for termination: undecided
//! processes exchange their state sets for `f+1` rounds and then apply the
//! classical rule (any *committed* → commit; any *aborted* → abort; any
//! *prepared* → commit; all *uncertain* → abort). In a synchronous system
//! this solves NBAC; under network failures the prepared/uncertain split
//! across a partition produces the well-known disagreement (§6.2: 3PC "does
//! not solve the potential conflict" — demonstrated in this module's
//! tests), which is precisely what INBAC and PaxosCommit repair.
//!
//! Nice-execution complexity: 4 delays, `4n−4` messages (votes, pre-commit,
//! acks, do-commit). The paper's "+1 delay, +2n−2 messages over 2PC"
//! summary counts the decision point of the coordinator; see EXPERIMENTS.md.

use ac_sim::{Automaton, Ctx, ProcessId, Time};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG_COLLECT: u32 = 1;
const TAG_ACKS: u32 = 2;
const TAG_WATCHDOG: u32 = 3;
const TAG_TERM_ROUND: u32 = 4;

/// Local commit state, as in Skeen's protocol.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PcState {
    /// Decided abort (or never voted yes).
    Aborted,
    /// Voted yes, has not seen pre-commit.
    Uncertain,
    /// Received pre-commit, not yet committed.
    Prepared,
    /// Decided commit.
    Committed,
}

/// Bitmask of states observed during termination flooding.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StateMask(u8);

impl StateMask {
    fn add(&mut self, s: PcState) {
        self.0 |= match s {
            PcState::Aborted => 1,
            PcState::Uncertain => 2,
            PcState::Prepared => 4,
            PcState::Committed => 8,
        };
    }
    fn merge(&mut self, other: StateMask) {
        self.0 |= other.0;
    }
    fn committed(self) -> bool {
        self.0 & 8 != 0
    }
    fn prepared(self) -> bool {
        self.0 & 4 != 0
    }
    fn aborted(self) -> bool {
        self.0 & 1 != 0
    }
}

/// 3PC's message alphabet.
#[derive(Clone, Debug)]
pub enum ThreePcMsg {
    /// A participant's vote.
    V(bool),
    /// Coordinator: prepare to commit.
    PreCommit,
    /// Participant acknowledges the pre-commit.
    AckPc,
    /// Coordinator: commit.
    DoCommit,
    /// Coordinator: abort.
    DoAbort,
    /// Termination protocol: the sender's accumulated state mask.
    States(u8),
}

/// One process of 3PC. Coordinator is `Pn`.
#[derive(Debug)]
pub struct ThreePc {
    me: ProcessId,
    n: usize,
    f: usize,
    vote: bool,
    state: PcState,
    decided: bool,
    // Coordinator.
    votes_all: bool,
    got_vote: Vec<bool>,
    acks: Vec<bool>,
    // Termination protocol.
    seen: StateMask,
    term_round: u64,
}

impl ThreePc {
    fn coordinator(&self) -> ProcessId {
        self.n - 1
    }

    fn is_coordinator(&self) -> bool {
        self.me == self.coordinator()
    }

    fn decide(&mut self, commit: bool, ctx: &mut Ctx<ThreePcMsg>) {
        if !self.decided {
            self.decided = true;
            self.state = if commit {
                PcState::Committed
            } else {
                PcState::Aborted
            };
            ctx.decide(decision_value(commit));
        }
    }

    /// Watchdog deadline: normal flow ends by 4U.
    fn watchdog_at(&self) -> Time {
        Time::units(5)
    }

    fn term_round_at(&self, r: u64) -> Time {
        Time::units(5 + r)
    }
}

impl CommitProtocol for ThreePc {
    const NAME: &'static str = "3PC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        ThreePc {
            me,
            n,
            f,
            vote,
            state: if vote {
                PcState::Uncertain
            } else {
                PcState::Aborted
            },
            decided: false,
            votes_all: true,
            got_vote: vec![false; n],
            acks: vec![false; n],
            seen: StateMask::default(),
            term_round: 0,
        }
    }
}

impl Automaton for ThreePc {
    type Msg = ThreePcMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ThreePcMsg>) {
        if self.is_coordinator() {
            self.votes_all = self.vote;
            self.got_vote[self.me] = true;
            ctx.set_timer(Time::units(1), TAG_COLLECT);
        } else {
            ctx.send(self.coordinator(), ThreePcMsg::V(self.vote));
        }
        // A unilateral no-vote aborts right away (Skeen's rule).
        if !self.vote {
            self.decide(false, ctx);
        } else {
            ctx.set_timer(self.watchdog_at(), TAG_WATCHDOG);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: ThreePcMsg, ctx: &mut Ctx<ThreePcMsg>) {
        match msg {
            ThreePcMsg::V(v) => {
                self.votes_all &= v;
                self.got_vote[from] = true;
            }
            ThreePcMsg::PreCommit => {
                if self.state == PcState::Uncertain {
                    self.state = PcState::Prepared;
                    ctx.send(self.coordinator(), ThreePcMsg::AckPc);
                }
            }
            ThreePcMsg::AckPc => {
                self.acks[from] = true;
            }
            ThreePcMsg::DoCommit => self.decide(true, ctx),
            ThreePcMsg::DoAbort => self.decide(false, ctx),
            ThreePcMsg::States(mask) => {
                self.seen.merge(StateMask(mask));
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<ThreePcMsg>) {
        match tag {
            TAG_COLLECT => {
                debug_assert!(self.is_coordinator());
                if self.votes_all && self.got_vote.iter().all(|&g| g) {
                    self.state = PcState::Prepared;
                    self.acks[self.me] = true;
                    ctx.broadcast_others(ThreePcMsg::PreCommit);
                    ctx.set_timer(Time::units(3), TAG_ACKS);
                } else {
                    ctx.broadcast_others(ThreePcMsg::DoAbort);
                    self.decide(false, ctx);
                }
            }
            TAG_ACKS => {
                debug_assert!(self.is_coordinator());
                if self.decided {
                    return;
                }
                if self.acks.iter().all(|&a| a) {
                    ctx.broadcast_others(ThreePcMsg::DoCommit);
                    self.decide(true, ctx);
                }
                // Missing acks: stay prepared; the termination protocol
                // (watchdog) resolves it together with everyone else.
            }
            TAG_WATCHDOG => {
                if self.decided {
                    return;
                }
                // Enter termination: flood states for f+1 rounds.
                self.seen.add(self.state);
                ctx.broadcast_others(ThreePcMsg::States(self.seen.0));
                self.term_round = 1;
                ctx.set_timer(self.term_round_at(1), TAG_TERM_ROUND);
            }
            TAG_TERM_ROUND => {
                if self.decided {
                    return;
                }
                self.seen.add(self.state);
                if self.term_round <= self.f as u64 {
                    ctx.broadcast_others(ThreePcMsg::States(self.seen.0));
                    self.term_round += 1;
                    ctx.set_timer(self.term_round_at(self.term_round), TAG_TERM_ROUND);
                } else {
                    // Classical 3PC termination rule.
                    let commit = if self.seen.committed() {
                        true
                    } else if self.seen.aborted() {
                        false
                    } else {
                        self.seen.prepared()
                    };
                    self.decide(commit, ctx);
                }
            }
            other => unreachable!("unknown 3PC timer tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::U;

    #[test]
    fn nice_execution_is_4_delays_4n4_messages() {
        for n in 3..=7 {
            let (d, m) = nice_complexity::<ThreePc>(n, 1);
            assert_eq!((d, m), (4, (4 * n - 4) as u64), "n={n}");
        }
    }

    #[test]
    fn commit_and_abort_paths() {
        let out = Scenario::nice(4, 1).run::<ThreePc>();
        assert_eq!(out.decided_values(), vec![1]);
        let out = Scenario::nice(4, 1).vote_no(1).run::<ThreePc>();
        assert_eq!(out.decided_values(), vec![0]);
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn coordinator_crash_is_nonblocking() {
        // Unlike 2PC, participants decide via the termination protocol.
        let n = 4;
        for t in 0..5u64 {
            for partial in [None, Some(1), Some(2)] {
                let crash = match partial {
                    None => Crash::at(Time::units(t)),
                    Some(k) => Crash::partial(Time::units(t), k),
                };
                let sc = Scenario::nice(n, 1).crash(n - 1, crash);
                let out = sc.run::<ThreePc>();
                check(&out, &sc.votes, ProtocolKind::ThreePc.cell())
                    .assert_ok(&format!("t={t} partial={partial:?}"));
                for p in 0..n - 1 {
                    assert!(
                        out.decisions[p].is_some(),
                        "t={t} partial={partial:?}: P{} blocked",
                        p + 1
                    );
                }
            }
        }
    }

    #[test]
    fn participant_crash_keeps_nbac() {
        let n = 4;
        for victim in 0..n - 1 {
            for t in 0..5u64 {
                let sc = Scenario::nice(n, 1).crash(victim, Crash::at(Time::units(t)));
                let out = sc.run::<ThreePc>();
                check(&out, &sc.votes, ProtocolKind::ThreePc.cell())
                    .assert_ok(&format!("victim={victim} t={t}"));
            }
        }
    }

    #[test]
    fn partition_splits_the_brain() {
        // The classic 3PC disagreement (why indulgent protocols exist):
        // the coordinator pre-commits with P1 and is then partitioned away
        // together with it. {coord, P1} are prepared and the termination
        // rule commits them; {P2, P3} stay uncertain and abort.
        let n = 4;
        let big = 40 * U;
        let mut sc = Scenario::nice(n, 1);
        // Cut links between {P1, coord} and {P2, P3} from 2U on (after
        // PreCommit reached P1 but before anything reached P2/P3), both
        // directions, long enough to outlast the termination protocol.
        let cut_from = Time::units(2);
        let cut_to = Time::units(30);
        for a in [0usize, 3] {
            for b in [1usize, 2] {
                sc = sc
                    .rule(DelayRule::link(a, b, cut_from, cut_to, big))
                    .rule(DelayRule::link(b, a, cut_from, cut_to, big));
            }
        }
        // Also delay the coordinator's PreCommit to P2/P3 (sent at 1U).
        sc = sc
            .rule(DelayRule::link(3, 1, Time::units(1), cut_from, big))
            .rule(DelayRule::link(3, 2, Time::units(1), cut_from, big));
        let sc = sc.horizon(100);
        let out = sc.run::<ThreePc>();
        let vals = out.decided_values();
        assert_eq!(vals, vec![0, 1], "expected split-brain, got {vals:?}");
        // Validity and termination still hold in this NF execution, which
        // is exactly the (AVT, VT) cell.
        check(&out, &sc.votes, ProtocolKind::ThreePc.cell()).assert_ok("partition");
    }
}
