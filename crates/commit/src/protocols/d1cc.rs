//! D1CC — logless decentralized one-phase commit (cell (AVT, VT)).
//!
//! The protocol transplants the "to vote before decide" idea
//! (Cornus/EasyCommit lineage, see PAPERS.md) into the paper's model:
//! every participant **replicates its vote to all peers before the
//! decision point**, each process decides locally from the assembled vote
//! vector, and the decision is reconstructed from surviving replicated
//! votes rather than from a coordinator log. There is no consensus module
//! and no coordinator: the vote broadcast *is* the commit protocol.
//!
//! * On propose, every process broadcasts `[V, vote]` and arms a single
//!   timeout at time `f + 1`.
//! * A process that assembles all `n` votes broadcasts `[D, AND(votes)]`
//!   and decides that value — one message delay in the nice execution,
//!   with the `[D]` round still in flight (same accounting as 1NBAC).
//! * A process that receives a `[D, d]` first **relays it to everyone and
//!   then decides** `d`. The relay is the classic reliable-broadcast step:
//!   a crashing decider can truncate its own `[D]` broadcast, but each
//!   truncation consumes one of the `f` tolerated crashes and delays the
//!   value by one unit, so with at most `f` crashes some correct process
//!   relays the decision to everyone by time `f + 1`.
//! * A process that reaches the timeout with neither a full vote vector
//!   nor a `[D, d]` decides Abort — some vote was never replicated to it,
//!   so (in a crash-failure execution) that vote died with its sender and
//!   no process can have committed.
//!
//! This yields the full NBAC triple in every crash-failure execution with
//! at most `f` crashes and validity + termination in every network-failure
//! execution — cell (AVT, VT), the same as 1NBAC — but, unlike 1NBAC,
//! termination never leans on a correct majority: the timeout alone
//! terminates, whatever `f` is. The price is indulgence: a delayed `[D]`
//! can land after the timeout, so agreement is forfeited under network
//! failures (see `crate::explorer` — checking D1CC against the indulgent
//! cell produces counterexamples).
//!
//! Nice-execution complexity: 1 delay, `n²−n` messages.

use ac_sim::{Automaton, Ctx, ProcessId, Time};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TIMEOUT: u32 = 1;

/// D1CC's message alphabet.
#[derive(Clone, Debug)]
pub enum D1ccMsg {
    /// A replicated vote.
    V(bool),
    /// A decision, broadcast by the first full collector and relayed by
    /// every adopter before it decides.
    D(bool),
}

/// One process of D1CC.
#[derive(Debug)]
pub struct D1cc {
    f: usize,
    decided: bool,
    decision: bool,
    got: Vec<bool>,
}

impl CommitProtocol for D1cc {
    const NAME: &'static str = "D1CC";

    fn new(_me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        D1cc {
            f,
            decided: false,
            decision: vote,
            got: vec![false; n],
        }
    }
}

impl D1cc {
    /// Adopt `d`: relay it to everyone, then decide. Relay-before-decide
    /// is what makes agreement survive partial-broadcast crashes of
    /// earlier deciders.
    fn adopt(&mut self, d: bool, ctx: &mut Ctx<D1ccMsg>) {
        debug_assert!(!self.decided);
        self.decided = true;
        self.decision = d;
        ctx.broadcast_others(D1ccMsg::D(d));
        ctx.decide(decision_value(d));
    }
}

impl Automaton for D1cc {
    type Msg = D1ccMsg;

    fn on_start(&mut self, ctx: &mut Ctx<D1ccMsg>) {
        ctx.broadcast(D1ccMsg::V(self.decision));
        ctx.set_timer(Time::units(self.f as u64 + 1), TIMEOUT);
    }

    fn on_message(&mut self, from: ProcessId, msg: D1ccMsg, ctx: &mut Ctx<D1ccMsg>) {
        match msg {
            D1ccMsg::V(v) => {
                if self.decided {
                    // A vote arriving after the decision is a straggler
                    // (delayed link, or a confused recovering peer):
                    // answer with the decision so its sender can
                    // reconstruct the outcome (the logless substitute
                    // for reading a coordinator log).
                    if from != ctx.me() {
                        ctx.send(from, D1ccMsg::D(self.decision));
                    }
                    return;
                }
                if self.got[from] {
                    // First vote binds. A sender whose vote is already in
                    // the vector must not mutate it: folding a duplicate
                    // — in the live service, a crash-restarted peer
                    // re-voting differently after losing its volatile
                    // vote — into a partially assembled vector would let
                    // this process decide Abort from a `no` while a peer
                    // holding the original all-yes vector decides Commit.
                    return;
                }
                self.got[from] = true;
                self.decision &= v;
                if self.got.iter().all(|&g| g) {
                    let d = self.decision;
                    self.adopt(d, ctx);
                }
            }
            D1ccMsg::D(d) => {
                if !self.decided {
                    self.adopt(d, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<D1ccMsg>) {
        debug_assert_eq!(tag, TIMEOUT);
        if !self.decided {
            // Some vote was never replicated to us: its sender is crashed
            // (or the network is misbehaving) and nobody can prove Commit.
            self.decided = true;
            self.decision = false;
            ctx.decide(decision_value(false));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::U;

    #[test]
    fn one_delay_n_squared_messages() {
        for n in 2..=8 {
            let (d, m) = nice_complexity::<D1cc>(n, 1);
            assert_eq!((d, m), (1, (n * n - n) as u64), "n={n}");
        }
    }

    #[test]
    fn no_vote_aborts_in_one_delay() {
        let sc = Scenario::nice(4, 1).vote_no(2);
        let out = sc.run::<D1cc>();
        assert_eq!(out.decided_values(), vec![0]);
        assert_eq!(out.metrics().delays, Some(1));
    }

    #[test]
    fn single_crash_matrix_solves_nbac() {
        let n = 4;
        for victim in 0..n {
            for t in 0..3u64 {
                for partial in [None, Some(1), Some(2)] {
                    let crash = match partial {
                        None => Crash::at(Time::units(t)),
                        Some(k) => Crash::partial(Time::units(t), k),
                    };
                    let sc = Scenario::nice(n, 1).crash(victim, crash);
                    let out = sc.run::<D1cc>();
                    check(&out, &sc.votes, ProtocolKind::D1cc.cell())
                        .assert_ok(&format!("victim {victim} t={t} partial={partial:?}"));
                }
            }
        }
    }

    #[test]
    fn commit_proceeds_through_a_crash_without_blocking() {
        // P4's vote reaches only P1 (partial broadcast, then crash). P1 is
        // the sole full collector: it commits at 1 delay and its [D]
        // broadcast rescues P2 and P3 one delay later — no blocking window,
        // no consensus round, no coordinator log.
        let sc = Scenario::nice(4, 1).crash(3, Crash::partial(Time::ZERO, 1));
        let out = sc.run::<D1cc>();
        assert_eq!(out.decided_values(), vec![1]);
        assert_eq!(out.decisions[0].unwrap().0, Time::units(1));
        assert_eq!(out.decisions[1].unwrap().0, Time::units(2));
        assert_eq!(out.decisions[2].unwrap().0, Time::units(2));
    }

    #[test]
    fn relay_chain_survives_two_partial_crashes() {
        // The adversarial chain the relay exists for (f = 2): P4's vote
        // reaches only P1; P1 (the sole collector) truncates its [D]
        // broadcast to one peer and crashes. P2 relays before deciding, so
        // P3 still learns Commit by the f+1 timeout instead of aborting
        // against P2's commit.
        let sc = Scenario::nice(4, 2)
            .crash(3, Crash::partial(Time::ZERO, 1))
            .crash(0, Crash::partial(Time::units(1), 1));
        let out = sc.run::<D1cc>();
        assert_eq!(out.decided_values(), vec![1], "survivors must agree");
        assert_eq!(out.decisions[1].unwrap().0, Time::units(2));
        assert_eq!(out.decisions[2].unwrap().0, Time::units(3));
        check(&out, &sc.votes, ProtocolKind::D1cc.cell()).assert_ok("relay chain");
    }

    #[test]
    fn unreplicated_vote_aborts_at_the_timeout() {
        // P1 crashes before sending anything: its vote is unrecoverable,
        // so every survivor times out to Abort at f+1 — uniformly.
        let sc = Scenario::nice(4, 1).crash(0, Crash::at(Time::ZERO));
        let out = sc.run::<D1cc>();
        assert_eq!(out.decided_values(), vec![0]);
        for p in 1..4 {
            assert_eq!(out.decisions[p].unwrap().0, Time::units(2));
        }
    }

    #[test]
    fn duplicate_vote_from_one_sender_cannot_flip_an_assembled_vector() {
        // P1 of 3 holds yes-votes from itself and P2 when a
        // crash-restarted P2 re-votes no (its volatile yes died with it).
        // First vote binds: the duplicate is ignored, so when P3's yes
        // lands the vector is still all-yes and P1 commits — the same
        // decision a peer reached from the original votes. Folding the
        // re-vote in would decide Abort here against that peer's Commit.
        let mut p = D1cc::new(0, 3, 1, true);
        let mut ctx = Ctx::new(Time::ZERO, 0, 3, false);
        p.on_start(&mut ctx);
        p.on_message(0, D1ccMsg::V(true), &mut ctx);
        p.on_message(1, D1ccMsg::V(true), &mut ctx);
        p.on_message(1, D1ccMsg::V(false), &mut ctx); // contradictory re-vote
        assert!(!p.decided, "two distinct senders so far, not three");
        p.on_message(2, D1ccMsg::V(true), &mut ctx);
        assert!(p.decided);
        assert!(p.decision, "the re-vote must not poison the vector");
    }

    #[test]
    fn late_vote_is_answered_with_the_decision() {
        // P4's vote to P1 is delayed past the decision: P1 adopts the [D]
        // broadcast of the on-time collectors, and when the stale vote
        // finally lands it answers P4 with the decision — the reply a
        // recovering process depends on in the live service.
        let sc =
            Scenario::nice(4, 1).rule(DelayRule::link(3, 0, Time::ZERO, Time::units(1), 3 * U));
        let out = sc.run::<D1cc>();
        assert_eq!(out.decided_values(), vec![1]);
        assert!(
            out.records
                .iter()
                .any(|r| r.from == 0 && r.to == 3 && r.sent == Time::units(3)),
            "P1 must answer the late vote with a [D] reply"
        );
        assert!(out.quiescent);
    }

    #[test]
    fn network_failure_keeps_validity_and_termination() {
        // Delay everything P1 sends: deciders can split (agreement is not
        // promised under network failure) but V and T must hold.
        let sc = Scenario::nice(4, 1).rule(DelayRule::from_process(0, 3 * U));
        let out = sc.run::<D1cc>();
        check(&out, &sc.votes, ProtocolKind::D1cc.cell()).assert_ok("delayed sender");
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }
}
