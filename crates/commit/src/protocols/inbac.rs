//! INBAC — indulgent non-blocking atomic commit (§5, Appendix A).
//!
//! The paper's main protocol: solves NBAC in **every network-failure
//! execution** (Definition 3) and is optimal on both axes — 2 message
//! delays (Theorem 1) and, given 2 delays, `2fn` messages (Theorem 5) in
//! nice executions.
//!
//! Mechanics, following Lemmas 1 and 5:
//!
//! * at time 0 every process `P` sends its vote to its `f` **backup
//!   processes** `B_P` (`B_P = {P1..Pf}` for `P ∈ {P_{f+1}..P_n}`,
//!   `B_P = {P1..P_{f+1}} \ {P}` otherwise);
//! * at time `U` each backup acknowledges *the whole set* of votes it holds
//!   in one `[C, collection]` message (Lemma 6 makes bundled
//!   acknowledgements of other processes' votes necessary);
//! * at time `2U` a process holding `f` complete acknowledgements knows all
//!   `n` votes are backed up `f` times and decides their AND — without ever
//!   invoking consensus;
//! * otherwise it proposes to an indulgent uniform consensus (1 if it can
//!   see all `n` votes, else 0), first asking `P_{f+1}..P_n` for help
//!   (`[HELP]`/`[HELPED]`) if it received no acknowledgement at all.
//!
//! [`InbacFastAbort`] adds the §5.2 acceleration: a 0-voter broadcasts its
//! vote and decides immediately, making failure-free aborts terminate after
//! one message delay.

use ac_consensus::{CtxHost, Paxos, PaxosMsg, CONS_TAG_BASE};
use ac_sim::{Automaton, Ctx, ProcessId, Time};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG1: u32 = 1;
const TAG2: u32 = 2;

/// A set of (process, vote) pairs, kept sorted by process id.
pub type VoteSet = Vec<(ProcessId, bool)>;

fn vs_insert(set: &mut VoteSet, p: ProcessId, v: bool) {
    match set.binary_search_by_key(&p, |&(q, _)| q) {
        Ok(i) => debug_assert_eq!(set[i].1, v, "a process cannot vote twice differently"),
        Err(i) => set.insert(i, (p, v)),
    }
}

fn vs_merge(dst: &mut VoteSet, src: &VoteSet) {
    for &(p, v) in src {
        vs_insert(dst, p, v);
    }
}

/// AND of all `n` votes if the set covers `0..n`.
fn vs_and_complete(set: &VoteSet, n: usize) -> Option<bool> {
    if set.len() == n {
        Some(set.iter().all(|&(_, v)| v))
    } else {
        None
    }
}

/// INBAC's message alphabet (Appendix A pseudocode).
#[derive(Clone, Debug)]
pub enum InbacMsg {
    /// `[V, v]` — a vote sent to its backups.
    V(bool),
    /// `[C, collection]` — a backup's bundled acknowledgement.
    C(VoteSet),
    /// `[HELP]` — solicit acknowledged state from `P_{f+1}..P_n`.
    Help,
    /// `[HELPED, collection0]` — reply to `[HELP]`.
    Helped(VoteSet),
    /// Fast-abort announcement (`InbacFastAbort` only).
    Abort0,
    /// Consensus sub-protocol traffic.
    Cons(PaxosMsg),
}

/// One process of INBAC. Generic flavour shared by [`Inbac`] and
/// [`InbacFastAbort`].
#[derive(Debug)]
pub struct InbacCore {
    me: ProcessId,
    n: usize,
    f: usize,
    fast_abort: bool,
    /// Bundle all backed-up votes into one `[C, V]` acknowledgement (the
    /// paper's design, "a necessary design … summarized in Lemma 6").
    /// The unbundled ablation sends one `[C, {(p,v)}]` per vote instead.
    bundle_acks: bool,
    phase: u8,
    proposed: bool,
    decided: bool,
    /// Votes directly received (plus, after 2U, everything learnt).
    collection0: VoteSet,
    /// Acknowledgements: sender -> the vote set it acknowledged.
    collection1: Vec<(ProcessId, VoteSet)>,
    collection_help: VoteSet,
    wait: bool,
    val: bool,
    cnt: usize,
    cnt_help: usize,
    /// Help requests that arrived before we reached phase 2 (Appendix A
    /// remark (c): queue a message until its guard is satisfiable).
    pending_help: Vec<ProcessId>,
    cons: Paxos,
}

impl InbacCore {
    fn with_bundling(
        me: ProcessId,
        n: usize,
        f: usize,
        vote: Vote,
        fast_abort: bool,
        bundle_acks: bool,
    ) -> Self {
        validate_params(n, f);
        InbacCore {
            me,
            n,
            f,
            fast_abort,
            bundle_acks,
            phase: 0,
            proposed: false,
            decided: false,
            collection0: Vec::new(),
            collection1: Vec::new(),
            collection_help: Vec::new(),
            wait: false,
            val: vote,
            cnt: 0,
            cnt_help: 0,
            pending_help: Vec::new(),
            cons: Paxos::with_tag_base(me, n, CONS_TAG_BASE),
        }
    }

    /// Whether this process is in `{P1..Pf}` (1-based), i.e. a primary
    /// backup that broadcasts acknowledgements to everyone.
    #[inline]
    fn is_primary_backup(&self) -> bool {
        self.me < self.f
    }

    /// Whether this process is `P_{f+1}`, the secondary backup serving only
    /// `{P1..Pf}`.
    #[inline]
    fn is_secondary_backup(&self) -> bool {
        self.me == self.f
    }

    fn decide(&mut self, v: bool, ctx: &mut Ctx<InbacMsg>) {
        if !self.decided {
            self.decided = true;
            ctx.decide(decision_value(v));
        }
    }

    fn cons_propose(&mut self, v: bool, ctx: &mut Ctx<InbacMsg>) {
        if !self.proposed && !self.decided {
            self.proposed = true;
            ctx.trace(|| format!("cons-propose {}", v as u8));
            let mut host = CtxHost {
                ctx,
                wrap: InbacMsg::Cons,
            };
            self.cons.propose(decision_value(v), &mut host);
        }
    }

    fn cons_decided(&mut self, d: Option<u64>, ctx: &mut Ctx<InbacMsg>) {
        if let Some(v) = d {
            if !self.decided {
                self.decided = true;
                ctx.decide(v);
            }
        }
    }

    /// All votes learnt through acknowledgements.
    fn ack_union(&self) -> VoteSet {
        let mut u = VoteSet::new();
        for (_, c) in &self.collection1 {
            vs_merge(&mut u, c);
        }
        u
    }

    /// The "f correct acks? n votes in the acks?" test of Figure 1,
    /// verbatim from the Appendix A pseudocode.
    ///
    /// * For `P ∈ {P_{f+1}..P_n}`: `collection1` must hold an entry from
    ///   every primary `P1..Pf`, each covering all `n` votes.
    /// * For `P ∈ {P1..Pf}`: additionally an entry from the secondary
    ///   `P_{f+1}` covering the `f` votes of `P1..Pf`. The entry from `P`
    ///   itself arrives through its own (free) self-broadcast.
    fn acks_complete(&self) -> Option<bool> {
        let find = |p: ProcessId| {
            self.collection1
                .iter()
                .find(|(q, _)| *q == p)
                .map(|(_, c)| c)
        };
        let mut union = VoteSet::new();
        for p in 0..self.f {
            let c = find(p)?;
            if c.len() != self.n {
                return None;
            }
            vs_merge(&mut union, c);
        }
        if self.me < self.f {
            let c = find(self.f)?;
            if c.len() != self.f {
                return None;
            }
            vs_merge(&mut union, c);
        }
        vs_and_complete(&union, self.n)
    }

    /// Figure 1's left column once acknowledgements are in: decide if the
    /// `f` backups confirmed everything, else propose to consensus.
    fn decide_or_propose(&mut self, ctx: &mut Ctx<InbacMsg>) {
        if let Some(and) = self.acks_complete() {
            ctx.trace(|| format!("all {} acks complete -> decide {}", self.f, and as u8));
            self.decide(and, ctx);
            return;
        }
        if self.cnt >= 1 {
            match vs_and_complete(&self.ack_union(), self.n) {
                Some(and) => self.cons_propose(and, ctx),
                None => self.cons_propose(false, ctx),
            }
        } else {
            // No acknowledgement at all (only reachable for P_{f+1}..P_n;
            // primaries always hold their own self-acknowledgement):
            // ask {P_{f+1}..P_n} for the acknowledged state they hold.
            ctx.trace(|| "no ack at all -> HELP".to_string());
            self.wait = true;
            for q in self.f..self.n {
                ctx.send(q, InbacMsg::Help);
            }
        }
    }

    /// The condition-triggered handler `upon cnt + cnt_help >= n - f and
    /// wait ...` — re-evaluated after every state change.
    fn maybe_complete_wait(&mut self, ctx: &mut Ctx<InbacMsg>) {
        if !self.wait || self.proposed || self.decided || self.me < self.f {
            return;
        }
        if self.cnt + self.cnt_help < self.n - self.f {
            return;
        }
        self.wait = false;
        if let Some(and) = self.acks_complete() {
            self.decide(and, ctx);
            return;
        }
        if self.cnt >= 1 {
            match vs_and_complete(&self.ack_union(), self.n) {
                Some(and) => self.cons_propose(and, ctx),
                None => self.cons_propose(false, ctx),
            }
        } else {
            match vs_and_complete(&self.collection_help, self.n) {
                Some(and) => self.cons_propose(and, ctx),
                None => self.cons_propose(false, ctx),
            }
        }
    }

    fn serve_help(&mut self, to: ProcessId, ctx: &mut Ctx<InbacMsg>) {
        ctx.send(to, InbacMsg::Helped(self.collection0.clone()));
    }

    fn on_start(&mut self, ctx: &mut Ctx<InbacMsg>) {
        if self.fast_abort && !self.val {
            // §5.2: a 0-voter broadcasts its vote and decides immediately;
            // the rest of the protocol still runs for everyone else.
            ctx.broadcast_others(InbacMsg::Abort0);
            self.decide(false, ctx);
        }
        for q in 0..self.f {
            ctx.send(q, InbacMsg::V(self.val));
        }
        if self.me < self.f {
            ctx.send(self.f, InbacMsg::V(self.val));
        }
        if self.me <= self.f {
            ctx.set_timer(Time::units(1), TAG1);
        } else {
            ctx.set_timer(Time::units(2), TAG2);
            self.phase = 1;
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: InbacMsg, ctx: &mut Ctx<InbacMsg>) {
        match msg {
            InbacMsg::V(v) => {
                if self.phase == 0 {
                    vs_insert(&mut self.collection0, from, v);
                }
            }
            InbacMsg::C(collection) => {
                // Merge per sender: with bundled acks there is exactly one
                // [C,·] per backup; the unbundled ablation splits them.
                match self.collection1.iter_mut().find(|(q, _)| *q == from) {
                    Some((_, c)) => vs_merge(c, &collection),
                    None => self.collection1.push((from, collection)),
                }
                self.cnt += 1;
                self.maybe_complete_wait(ctx);
            }
            InbacMsg::Help => {
                if self.phase == 2 && self.me >= self.f {
                    self.serve_help(from, ctx);
                } else {
                    self.pending_help.push(from);
                }
            }
            InbacMsg::Helped(collection) => {
                if self.me >= self.f {
                    vs_merge(&mut self.collection_help, &collection);
                    self.cnt_help += 1;
                    self.maybe_complete_wait(ctx);
                }
            }
            InbacMsg::Abort0 => {
                debug_assert!(self.fast_abort);
                self.decide(false, ctx);
            }
            InbacMsg::Cons(m) => {
                let mut host = CtxHost {
                    ctx,
                    wrap: InbacMsg::Cons,
                };
                let dec = self.cons.on_message(from, m, &mut host);
                self.cons_decided(dec, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<InbacMsg>) {
        if self.cons.owns_tag(tag) {
            let mut host = CtxHost {
                ctx,
                wrap: InbacMsg::Cons,
            };
            let dec = self.cons.on_timer(tag, &mut host);
            self.cons_decided(dec, ctx);
            return;
        }
        match tag {
            TAG1 => {
                debug_assert!(self.me <= self.f && self.phase == 0);
                // Acknowledge the backed-up votes.
                let acks: Vec<InbacMsg> = if self.bundle_acks {
                    vec![InbacMsg::C(self.collection0.clone())]
                } else {
                    self.collection0
                        .iter()
                        .map(|&(p, v)| InbacMsg::C(vec![(p, v)]))
                        .collect()
                };
                for c in acks {
                    if self.is_primary_backup() {
                        ctx.broadcast(c);
                    } else {
                        debug_assert!(self.is_secondary_backup());
                        for q in 0..self.f {
                            ctx.send(q, c.clone());
                        }
                    }
                }
                self.phase = 1;
                ctx.set_timer(Time::units(2), TAG2);
            }
            TAG2 => {
                if self.me >= self.f {
                    // Progress to phase 2 even when already decided (the
                    // fast-abort path can decide before 2U): help requests
                    // must still be served or a process that missed the
                    // abort broadcast of a crashed 0-voter waits forever —
                    // found by the exhaustive explorer.
                    self.phase = 2;
                    // Fold everything learnt into collection0 so later
                    // [HELPED] replies carry it (key to the agreement
                    // proof in Appendix B).
                    let union = self.ack_union();
                    vs_merge(&mut self.collection0, &union);
                    vs_insert(&mut self.collection0, self.me, self.val);
                    let pending = std::mem::take(&mut self.pending_help);
                    for p in pending {
                        self.serve_help(p, ctx);
                    }
                    if !self.decided && !self.proposed {
                        self.decide_or_propose(ctx);
                    }
                } else if !self.decided && !self.proposed {
                    // P1..Pf can always conclude at 2U.
                    if let Some(and) = self.acks_complete() {
                        self.decide(and, ctx);
                        return;
                    }
                    match vs_and_complete(&self.ack_union(), self.n) {
                        Some(and) => self.cons_propose(and, ctx),
                        None => self.cons_propose(false, ctx),
                    }
                }
            }
            other => unreachable!("unknown INBAC timer tag {other}"),
        }
    }
}

macro_rules! inbac_flavor {
    ($name:ident, $disp:expr, $fast:expr, $bundle:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug)]
        pub struct $name(InbacCore);

        impl CommitProtocol for $name {
            const NAME: &'static str = $disp;

            fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
                $name(InbacCore::with_bundling(me, n, f, vote, $fast, $bundle))
            }
        }

        impl Automaton for $name {
            type Msg = InbacMsg;

            fn on_start(&mut self, ctx: &mut Ctx<InbacMsg>) {
                self.0.on_start(ctx);
            }
            fn on_message(&mut self, from: ProcessId, msg: InbacMsg, ctx: &mut Ctx<InbacMsg>) {
                self.0.on_message(from, msg, ctx);
            }
            fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<InbacMsg>) {
                self.0.on_timer(tag, ctx);
            }
        }
    };
}

inbac_flavor!(
    Inbac,
    "INBAC",
    false,
    true,
    "INBAC exactly as in Appendix A: 2 delays, `2fn` messages in nice executions."
);
inbac_flavor!(
    InbacFastAbort,
    "INBAC+fast-abort",
    true,
    true,
    "INBAC with the §5.2 acceleration: failure-free aborts decide after one delay."
);
inbac_flavor!(
    InbacUnbundledAck,
    "INBAC(unbundled)",
    false,
    false,
    "Ablation: one acknowledgement per backed-up vote instead of the bundled \
     `[C, V]` — still 2 delays but `nf + fn(n−1) + f²` messages, demonstrating \
     why Lemma 6's bundled design is necessary for the `2fn` optimum."
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::U;

    #[test]
    fn nice_execution_is_2_delays_2fn_messages() {
        for n in 2..=8 {
            for f in 1..n {
                let (d, m) = nice_complexity::<Inbac>(n, f);
                assert_eq!(d, 2, "n={n} f={f}");
                assert_eq!(m, (2 * f * n) as u64, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn everyone_commits_without_consensus_in_nice_runs() {
        let out = Scenario::nice(5, 2).run::<Inbac>();
        assert_eq!(out.decided_values(), vec![1]);
        // All decisions at exactly 2U.
        for d in &out.decisions {
            assert_eq!(d.unwrap().0, Time::units(2));
        }
    }

    #[test]
    fn failure_free_abort_also_takes_two_delays() {
        // §5.2: without the fast path, an all-correct execution with a 0
        // vote has the same complexity as a nice execution.
        let sc = Scenario::nice(5, 2).vote_no(3);
        let out = sc.run::<Inbac>();
        assert_eq!(out.decided_values(), vec![0]);
        for d in &out.decisions {
            assert_eq!(d.unwrap().0, Time::units(2));
        }
        assert_eq!(out.metrics().messages, 2 * 2 * 5);
    }

    #[test]
    fn fast_abort_terminates_in_one_delay() {
        let sc = Scenario::nice(5, 2).vote_no(3);
        let out = sc.run::<InbacFastAbort>();
        assert_eq!(out.decided_values(), vec![0]);
        assert_eq!(
            out.decisions[3].unwrap().0,
            Time::ZERO,
            "0-voter decides instantly"
        );
        for p in [0usize, 1, 2, 4] {
            assert_eq!(out.decisions[p].unwrap().0, Time::units(1), "P{}", p + 1);
        }
    }

    #[test]
    fn fast_abort_nice_runs_unchanged() {
        for n in 3..=6 {
            assert_eq!(
                nice_complexity::<InbacFastAbort>(n, 2.min(n - 1)),
                nice_complexity::<Inbac>(n, 2.min(n - 1)),
                "n={n}"
            );
        }
    }

    #[test]
    fn crash_executions_solve_nbac() {
        // f=1, n=4: any single crash at any interesting time, full or
        // partial — NBAC (AVT) must hold.
        let n = 4;
        for victim in 0..n {
            for t in 0..4u64 {
                for partial in [None, Some(1), Some(2)] {
                    let crash = match partial {
                        None => Crash::at(Time::units(t)),
                        Some(k) => Crash::partial(Time::units(t), k),
                    };
                    let sc = Scenario::nice(n, 1).crash(victim, crash);
                    let out = sc.run::<Inbac>();
                    check(&out, &sc.votes, ProtocolKind::Inbac.cell())
                        .assert_ok(&format!("victim={victim} t={t}U partial={partial:?}"));
                }
            }
        }
    }

    #[test]
    fn network_failure_executions_solve_nbac() {
        // Indulgence: delayed acknowledgements push processes into the
        // consensus path but NBAC still holds (this is Definition 3).
        for delayed in 0..4usize {
            let sc = Scenario::nice(4, 1).rule(DelayRule::from_process(delayed, 5 * U));
            let out = sc.run::<Inbac>();
            check(&out, &sc.votes, ProtocolKind::Inbac.cell())
                .assert_ok(&format!("delayed={delayed}"));
            assert!(
                out.decisions.iter().all(|d| d.is_some()),
                "delayed={delayed}"
            );
        }
    }

    #[test]
    fn help_path_is_exercised_when_primaries_are_slow() {
        // Delay all primary backups' acknowledgements to P4 (n=4, f=1):
        // P4 gets no ack at 2U, asks P2..P4 for help, and completes via
        // [HELPED] replies.
        let n = 4;
        let sc = Scenario::nice(n, 1).traced().rule(DelayRule::link(
            0,
            3,
            Time::units(1),
            Time::units(2),
            6 * U,
        ));
        let out = sc.run::<Inbac>();
        check(&out, &sc.votes, ProtocolKind::Inbac.cell()).assert_ok("slow primary");
        assert!(out.decisions.iter().all(|d| d.is_some()));
        let notes: Vec<String> = out
            .trace
            .iter()
            .filter_map(|e| match &e.kind {
                ac_sim::TraceKind::Note { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert!(
            notes.iter().any(|t| t.contains("HELP")),
            "help path not taken: {notes:?}"
        );
    }

    #[test]
    fn primary_crash_before_ack_is_tolerated() {
        // The only primary backup (f=1) crashes right before acknowledging:
        // nobody can decide fast; consensus must settle it. n=5 keeps a
        // correct majority.
        let sc = Scenario::nice(5, 1).crash(0, Crash::at(Time::units(1)));
        let out = sc.run::<Inbac>();
        check(&out, &sc.votes, ProtocolKind::Inbac.cell()).assert_ok("primary crash");
        assert!(out
            .decisions
            .iter()
            .enumerate()
            .all(|(p, d)| p == 0 || d.is_some()));
    }

    #[test]
    fn unbundled_acks_blow_up_the_message_count() {
        for (n, f) in [(4usize, 1usize), (5, 2), (6, 3)] {
            let (d, m) = nice_complexity::<InbacUnbundledAck>(n, f);
            assert_eq!(d, 2, "still two delays");
            let expected = n * f + f * n * (n - 1) + f * f;
            assert_eq!(m, expected as u64, "n={n} f={f}");
            assert!(m > (2 * f * n) as u64, "bundling is what achieves 2fn");
        }
    }

    #[test]
    fn vote_set_helpers() {
        let mut s = VoteSet::new();
        vs_insert(&mut s, 2, true);
        vs_insert(&mut s, 0, false);
        vs_insert(&mut s, 1, true);
        vs_insert(&mut s, 1, true); // duplicate is a no-op
        assert_eq!(s, vec![(0, false), (1, true), (2, true)]);
        assert_eq!(vs_and_complete(&s, 3), Some(false));
        assert_eq!(vs_and_complete(&s, 4), None);
        let mut d = VoteSet::new();
        vs_merge(&mut d, &s);
        assert_eq!(d, s);
    }
}
