//! (n−1+f)NBAC — the message-optimal synchronous NBAC protocol
//! (Appendix E.2), cell (AVT, T).
//!
//! Communication in a nice execution is totally ordered along the chain
//! `P1 → P2 → … → Pn → P1 → … → Pf` (`n−1+f` messages), after which every
//! process noops for `f+1` message delays and decides 1. A broken chain or
//! a 0 vote is repaired by the suffix processes broadcasting 0; during the
//! nooping window any received 0 is echoed once, which guarantees every
//! correct process learns of the abort despite up to `f` crashes.
//!
//! The paper's Table 5 reports `2f+n−1` delays under its spontaneous-start
//! normalization; measured end-to-end from propose the protocol takes
//! `n+2f` delays (see EXPERIMENTS.md for the convention note).

// Index ranges deliberately mirror the paper's pseudocode (e.g. `f+1 <= i`).
#![allow(clippy::int_plus_one)]

use ac_sim::{Automaton, Ctx, ProcessId};

use super::etime;
use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG: u32 = 1;

/// The chain message: the AND of all votes seen so far.
#[derive(Clone, Debug)]
pub struct ChainMsg(pub bool);

/// One process of (n−1+f)NBAC. `i` below is the paper's 1-based index.
#[derive(Debug)]
pub struct ChainNbac {
    me: ProcessId,
    n: usize,
    f: usize,
    decision: bool,
    decided: bool,
    delivered: bool,
    /// 0 = before first timer, 1/2 = chain phases, 3 = nooping.
    phase: u8,
    /// A process broadcasts 0 at most once (the pseudocode's unbounded
    /// re-broadcast is collapsed to once per process, which the agreement
    /// argument — at most f crashes, one correct echoer suffices — needs).
    echoed: bool,
}

impl ChainNbac {
    #[inline]
    fn i(&self) -> u64 {
        self.me as u64 + 1
    }

    #[inline]
    fn pred(&self) -> ProcessId {
        (self.me + self.n - 1) % self.n
    }

    #[inline]
    fn succ(&self) -> ProcessId {
        (self.me + 1) % self.n
    }

    fn broadcast_zero(&mut self, ctx: &mut Ctx<ChainMsg>) {
        if !self.echoed {
            self.echoed = true;
            ctx.broadcast_others(ChainMsg(false));
        }
    }
}

impl CommitProtocol for ChainNbac {
    const NAME: &'static str = "(n-1+f)NBAC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        ChainNbac {
            me,
            n,
            f,
            decision: vote,
            decided: false,
            delivered: false,
            phase: 0,
            echoed: false,
        }
    }
}

impl Automaton for ChainNbac {
    type Msg = ChainMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ChainMsg>) {
        let (n, i) = (self.n as u64, self.i());
        if i == 1 {
            ctx.send(1, ChainMsg(self.decision));
            ctx.set_timer(etime(n + 1), TAG);
            self.phase = 2;
        } else {
            ctx.set_timer(etime(i), TAG);
            self.phase = 1;
        }
    }

    fn on_message(&mut self, from: ProcessId, ChainMsg(v): ChainMsg, ctx: &mut Ctx<ChainMsg>) {
        self.decision &= v;
        if self.phase <= 2 {
            if from == self.pred() {
                self.delivered = true;
            }
        } else if !self.decided && !v {
            // Nooping phase: echo an abort so it floods to everyone.
            self.broadcast_zero(ctx);
        }
    }

    fn on_timer(&mut self, _tag: u32, ctx: &mut Ctx<ChainMsg>) {
        let (n, f, i) = (self.n as u64, self.f as u64, self.i());
        match self.phase {
            1 => {
                // Chain position i (2 ≤ i ≤ n), at the paper's time i.
                if !self.delivered {
                    self.decision = false;
                }
                if self.decision {
                    ctx.send(self.succ(), ChainMsg(true));
                } else if i == n {
                    self.broadcast_zero(ctx);
                }
                self.delivered = false;
                if i >= f + 1 {
                    ctx.set_timer(etime(n + 2 * f + 1), TAG);
                    self.phase = 3;
                } else {
                    ctx.set_timer(etime(n + i), TAG);
                    self.phase = 2;
                }
            }
            2 => {
                // Suffix position i (1 ≤ i ≤ f), at the paper's time n+i.
                if !self.delivered {
                    self.decision = false;
                }
                if self.decision && i != f {
                    ctx.send(self.succ(), ChainMsg(true));
                }
                if !self.decision {
                    self.broadcast_zero(ctx);
                }
                self.delivered = false;
                ctx.set_timer(etime(n + 2 * f + 1), TAG);
                self.phase = 3;
            }
            3 => {
                self.decided = true;
                ctx.decide(decision_value(self.decision));
            }
            _ => unreachable!("chain timer in phase {}", self.phase),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::Crash;
    use ac_sim::Time;

    #[test]
    fn nice_execution_is_message_optimal() {
        for n in 2..=8 {
            for f in 1..n {
                let (d, m) = nice_complexity::<ChainNbac>(n, f);
                assert_eq!(m, (n - 1 + f) as u64, "n={n} f={f}");
                assert_eq!(d, (n + 2 * f) as u64, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn commits_unanimously_in_nice_runs() {
        let out = Scenario::nice(5, 2).run::<ChainNbac>();
        assert_eq!(out.decided_values(), vec![1]);
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn a_no_vote_aborts_everyone() {
        for dissenter in 0..5 {
            let out = Scenario::nice(5, 2).vote_no(dissenter).run::<ChainNbac>();
            assert_eq!(out.decided_values(), vec![0], "dissenter {dissenter}");
            assert!(out.decisions.iter().all(|d| d.is_some()));
        }
    }

    #[test]
    fn chain_break_by_crash_aborts_with_agreement_and_termination() {
        let n = 5;
        for victim in 0..n {
            for t in 0..4u64 {
                let sc = Scenario::nice(n, 2).crash(victim, Crash::at(Time::units(t)));
                let out = sc.run::<ChainNbac>();
                let report = check(&out, &sc.votes, ProtocolKind::ChainNbac.cell());
                report.assert_ok(&format!("victim {victim} at {t}U"));
                // NBAC in crash executions: all live processes decide the
                // same value.
                assert!(out.decided_values().len() == 1 || out.decided_values().is_empty());
            }
        }
    }

    #[test]
    fn partial_zero_broadcast_is_repaired_by_echo() {
        // Pn votes 0... rather: P3 never gets the chain message because P2
        // crashes right before sending, then the suffix repairs. Verify
        // agreement + termination with a mid-broadcast crash of Pn.
        let n = 4;
        // Pn broadcasts 0 at time n-1 (it got no chain message because P2
        // crashed at its slot); it reaches only 1 process, then crashes.
        let sc = Scenario::nice(n, 2)
            .crash(1, Crash::at(Time::units(1)))
            .crash(3, Crash::partial(Time::units(3), 1));
        let out = sc.run::<ChainNbac>();
        let report = check(&out, &sc.votes, ProtocolKind::ChainNbac.cell());
        report.assert_ok("partial zero broadcast");
        let vals = out.decided_values();
        assert_eq!(vals, vec![0]);
    }

    #[test]
    fn termination_holds_even_under_message_delay() {
        use ac_net::DelayRule;
        use ac_sim::U;
        // Cell (AVT, T): under a network failure only termination is
        // promised. Delay the whole chain: everyone still decides at the
        // nooping deadline.
        let sc = Scenario::nice(4, 1).rule(DelayRule::from_process(0, 20 * U));
        let out = sc.run::<ChainNbac>();
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }
}
