//! 0NBAC — the protocol exchanging **zero** messages in nice executions
//! (§4.2, Appendix E.1), cell (AT, AT): agreement and termination in every
//! execution (crash or network failure), NBAC in failure-free ones.
//!
//! Votes are *implicit*: a process voting 1 sends nothing; a process voting
//! 0 broadcasts `[V,0]`. After one delay the processes split into three
//! categories: (1) 0-voters, (2) 1-voters that received `[V,0]`, (3)
//! 1-voters that received nothing — category (3) decides 1 immediately.
//! Categories (1) and (2) solicit acknowledgements (`[V,0]`/`[B,0]` are
//! acked by everyone that has not already decided 1) and propose to uniform
//! consensus: 0 if *all* `n` acks arrived (nobody decided fast), 1
//! otherwise.
//!
//! 0NBAC achieves both optima of its cell simultaneously — 1 delay and 0
//! messages — so no delay/message trade-off exists there.

use ac_consensus::{CtxHost, Paxos, PaxosMsg, CONS_TAG_BASE};
use ac_sim::{Automaton, Ctx, ProcessId, Time};

use crate::problem::{validate_params, CommitProtocol, Vote};

const TAG1: u32 = 1;
const TAG2: u32 = 2;

/// 0NBAC's message alphabet.
#[derive(Clone, Debug)]
pub enum Nbac0Msg {
    /// An explicit abort vote.
    V0,
    /// Abort backup by a 1-voter that learnt of a 0.
    B0,
    /// Acknowledgement of a vote broadcast.
    Ack,
    /// Consensus sub-protocol traffic.
    Cons(PaxosMsg),
}

/// One process of 0NBAC.
#[derive(Debug)]
pub struct Nbac0 {
    myvote: bool,
    myack: Vec<bool>,
    decided: bool,
    zero: bool,
    phase: u8,
    proposed: bool,
    cons: Paxos,
}

impl CommitProtocol for Nbac0 {
    const NAME: &'static str = "0NBAC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        Nbac0 {
            myvote: vote,
            myack: vec![false; n],
            decided: false,
            zero: false,
            phase: 0,
            proposed: false,
            cons: Paxos::with_tag_base(me, n, CONS_TAG_BASE),
        }
    }
}

impl Nbac0 {
    fn cons_decided(&mut self, d: Option<u64>, ctx: &mut Ctx<Nbac0Msg>) {
        if let Some(v) = d {
            if !self.decided {
                self.decided = true;
                ctx.decide(v);
            }
        }
    }
}

impl Automaton for Nbac0 {
    type Msg = Nbac0Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Nbac0Msg>) {
        if !self.myvote {
            ctx.broadcast(Nbac0Msg::V0);
        }
        ctx.set_timer(Time::units(1), TAG1);
        self.phase = 1;
    }

    fn on_message(&mut self, from: ProcessId, msg: Nbac0Msg, ctx: &mut Ctx<Nbac0Msg>) {
        match msg {
            Nbac0Msg::V0 => {
                if self.phase == 1 {
                    self.zero = true;
                    ctx.send(from, Nbac0Msg::Ack);
                }
            }
            Nbac0Msg::B0 => {
                if self.phase == 2 && !(self.myvote && self.decided) {
                    ctx.send(from, Nbac0Msg::Ack);
                }
            }
            Nbac0Msg::Ack => {
                self.myack[from] = true;
            }
            Nbac0Msg::Cons(m) => {
                let mut host = CtxHost {
                    ctx,
                    wrap: Nbac0Msg::Cons,
                };
                let dec = self.cons.on_message(from, m, &mut host);
                self.cons_decided(dec, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<Nbac0Msg>) {
        if self.cons.owns_tag(tag) {
            let mut host = CtxHost {
                ctx,
                wrap: Nbac0Msg::Cons,
            };
            let dec = self.cons.on_timer(tag, &mut host);
            self.cons_decided(dec, ctx);
            return;
        }
        match tag {
            TAG1 => {
                debug_assert_eq!(self.phase, 1);
                self.phase = 2;
                if !self.zero && self.myvote {
                    // Category (3): silence means everybody voted 1.
                    self.decided = true;
                    ctx.decide(1);
                } else if self.zero && self.myvote {
                    // Category (2): back the abort, then poll acks.
                    ctx.broadcast(Nbac0Msg::B0);
                    ctx.set_timer(Time::units(3), TAG2);
                } else {
                    // Category (1): poll acks for our own [V,0].
                    ctx.set_timer(Time::units(2), TAG2);
                }
            }
            TAG2 => {
                debug_assert_eq!(self.phase, 2);
                if !self.decided && !self.proposed {
                    self.proposed = true;
                    // Anyone silent may have decided 1 at time U; in that
                    // case agreement forces us toward 1.
                    let v = if self.myack.iter().all(|&a| a) { 0 } else { 1 };
                    let mut host = CtxHost {
                        ctx,
                        wrap: Nbac0Msg::Cons,
                    };
                    self.cons.propose(v, &mut host);
                }
            }
            other => unreachable!("unknown 0NBAC timer tag {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::U;

    #[test]
    fn nice_execution_is_zero_messages_one_delay() {
        for n in 2..=8 {
            for f in [1, n - 1] {
                let (d, m) = nice_complexity::<Nbac0>(n, f);
                assert_eq!((d, m), (1, 0), "n={n} f={f}");
            }
        }
    }

    #[test]
    fn failure_free_abort_solves_nbac() {
        let sc = Scenario::nice(4, 1).vote_no(1);
        let out = sc.run::<Nbac0>();
        check(&out, &sc.votes, ProtocolKind::Nbac0.cell()).assert_ok("one no-vote");
        assert_eq!(out.decided_values(), vec![0]);
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn all_vote_no_aborts() {
        let sc = Scenario::nice(3, 1).votes(&[false, false, false]);
        let out = sc.run::<Nbac0>();
        check(&out, &sc.votes, ProtocolKind::Nbac0.cell()).assert_ok("all no");
        assert_eq!(out.decided_values(), vec![0]);
    }

    #[test]
    fn zero_voter_crash_keeps_agreement_and_termination() {
        // A 0-voter crashes mid-broadcast: some processes saw [V,0], some
        // did not and decide 1 fast. Agreement forces the 0-receivers to 1
        // via the missing-ack rule. Validity is (correctly) not promised.
        let n = 4;
        for reached in 0..n {
            let sc = Scenario::nice(n, 1)
                .vote_no(1)
                .crash(1, Crash::partial(Time::ZERO, reached));
            let out = sc.run::<Nbac0>();
            check(&out, &sc.votes, ProtocolKind::Nbac0.cell())
                .assert_ok(&format!("reached={reached}"));
        }
    }

    #[test]
    fn delayed_v0_is_survived() {
        // [V,0] from P2 reaches P4 late (network failure): P4 decides 1
        // fast; the others must follow via agreement.
        let sc = Scenario::nice(4, 1).vote_no(1).rule(DelayRule::link(
            1,
            3,
            Time::ZERO,
            Time::units(1),
            3 * U,
        ));
        let out = sc.run::<Nbac0>();
        check(&out, &sc.votes, ProtocolKind::Nbac0.cell()).assert_ok("delayed V0");
        assert_eq!(
            out.decided_values(),
            vec![1],
            "fast decider drags everyone to 1"
        );
    }

    #[test]
    fn crash_of_one_voter_in_all_yes_run_changes_nothing() {
        let sc = Scenario::nice(5, 2).crash(2, Crash::at(Time::units(0)));
        let out = sc.run::<Nbac0>();
        check(&out, &sc.votes, ProtocolKind::Nbac0.cell()).assert_ok("silent crash");
        // Silence is a yes: everyone else still decides 1 at U.
        assert_eq!(out.decided_values(), vec![1]);
        let m = out.metrics();
        assert_eq!(m.messages_total, 0);
    }
}
