//! (2n−2+f)NBAC — the message-optimal protocol for **indulgent atomic
//! commit** (cell (AVT, AVT), Appendix E.6): `2n−2+f` messages in nice
//! executions, matching Theorem 2's last bound. (INBAC instead optimizes
//! delays first; this protocol is the other end of the trade-off.)
//!
//! Nice execution: a vote chain `P1→…→Pn` (`n−1` messages), a confirmation
//! chain `Pn→P1→…→P_{n−1}→Pn` carrying the AND (`n` messages), and for
//! `f ≥ 2` a third chain `Pn→P1→…→P_{f−1}` (`f−1` messages). Processes
//! decide as the second (resp. third) chain passes through them. On any
//! timeout the process falls back to indulgent uniform consensus; processes
//! `P_{f+1}..P_{n−1}` first query `{P1..Pf, Pn}` with `[HELP]`.

// Index ranges deliberately mirror the paper's pseudocode (e.g. `f+1 <= i`).
#![allow(clippy::int_plus_one)]

use ac_consensus::{CtxHost, Paxos, PaxosMsg, CONS_TAG_BASE};
use ac_sim::{Automaton, Ctx, ProcessId};

use super::etime;
use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

const TAG: u32 = 1;

/// (2n−2+f)NBAC's message alphabet.
#[derive(Clone, Debug)]
pub enum C2n2fMsg {
    /// A vote sent to the hub P1.
    V(bool),
    /// The hub's broadcast of the conjunction.
    B(bool),
    /// The hub's backup broadcast to the f witnesses.
    Z(bool),
    /// Solicit a witness's learnt state.
    Help,
    /// Reply to `Help`.
    Helped(bool),
    /// Consensus sub-protocol traffic.
    Cons(PaxosMsg),
}

/// One process of (2n−2+f)NBAC.
#[derive(Debug)]
pub struct Nbac2n2f {
    me: ProcessId,
    n: usize,
    f: usize,
    votes: bool,
    received_v: bool,
    received_b: bool,
    received_z: bool,
    phase: u8,
    decided: bool,
    proposed: bool,
    /// Help requests arriving before this process can serve them
    /// (remark (c) queueing).
    pending_help: Vec<ProcessId>,
    cons: Paxos,
}

impl Nbac2n2f {
    #[inline]
    fn i(&self) -> u64 {
        self.me as u64 + 1
    }

    fn decide(&mut self, v: bool, ctx: &mut Ctx<C2n2fMsg>) {
        if !self.decided {
            self.decided = true;
            ctx.decide(decision_value(v));
        }
    }

    fn cons_propose(&mut self, v: bool, ctx: &mut Ctx<C2n2fMsg>) {
        if !self.proposed {
            self.proposed = true;
            let mut host = CtxHost {
                ctx,
                wrap: C2n2fMsg::Cons,
            };
            self.cons.propose(decision_value(v), &mut host);
        }
    }

    fn cons_decided(&mut self, d: Option<u64>, ctx: &mut Ctx<C2n2fMsg>) {
        if let Some(v) = d {
            if !self.decided {
                self.decided = true;
                ctx.decide(v);
            }
        }
    }

    /// Whether a `[HELP]` can be served right now (`Pn` from phase 1,
    /// `P1..Pf` from phase 2).
    fn can_serve_help(&self) -> bool {
        let i = self.i();
        let (n, f) = (self.n as u64, self.f as u64);
        (i == n && self.phase >= 1) || (i <= f && self.phase >= 2)
    }
}

impl CommitProtocol for Nbac2n2f {
    const NAME: &'static str = "(2n-2+f)NBAC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        Nbac2n2f {
            me,
            n,
            f,
            votes: vote,
            received_v: false,
            received_b: false,
            received_z: false,
            phase: 0,
            decided: false,
            proposed: false,
            pending_help: Vec::new(),
            cons: Paxos::with_tag_base(me, n, CONS_TAG_BASE),
        }
    }
}

impl Automaton for Nbac2n2f {
    type Msg = C2n2fMsg;

    fn on_start(&mut self, ctx: &mut Ctx<C2n2fMsg>) {
        let (n, i) = (self.n as u64, self.i());
        if i == 1 {
            ctx.send(1, C2n2fMsg::V(self.votes));
            ctx.set_timer(etime(n + 1), TAG);
            self.phase = 1;
        } else {
            ctx.set_timer(etime(i), TAG);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: C2n2fMsg, ctx: &mut Ctx<C2n2fMsg>) {
        match msg {
            C2n2fMsg::V(v) => {
                if self.phase == 0 {
                    self.votes &= v;
                    self.received_v = true;
                }
            }
            C2n2fMsg::B(b) => {
                if self.phase == 1 {
                    self.votes &= b;
                    self.received_b = true;
                }
            }
            C2n2fMsg::Z(z) => {
                if self.phase == 2 {
                    self.votes &= z;
                    self.received_z = true;
                }
            }
            C2n2fMsg::Help => {
                if self.can_serve_help() {
                    ctx.send(from, C2n2fMsg::Helped(self.votes));
                } else {
                    self.pending_help.push(from);
                }
            }
            C2n2fMsg::Helped(v) => {
                if !self.proposed {
                    self.cons_propose(v, ctx);
                }
            }
            C2n2fMsg::Cons(m) => {
                let mut host = CtxHost {
                    ctx,
                    wrap: C2n2fMsg::Cons,
                };
                let dec = self.cons.on_message(from, m, &mut host);
                self.cons_decided(dec, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<C2n2fMsg>) {
        if self.cons.owns_tag(tag) {
            let mut host = CtxHost {
                ctx,
                wrap: C2n2fMsg::Cons,
            };
            let dec = self.cons.on_timer(tag, &mut host);
            self.cons_decided(dec, ctx);
            return;
        }
        let (n, f, i) = (self.n as u64, self.f as u64, self.i());
        match self.phase {
            0 => {
                // Paper time i (2 ≤ i ≤ n): forward the vote chain.
                if self.received_v {
                    if i == n {
                        ctx.send(0, C2n2fMsg::B(self.votes));
                    } else {
                        ctx.send(self.me + 1, C2n2fMsg::V(self.votes));
                    }
                } else {
                    self.votes = false;
                    self.cons_propose(false, ctx);
                }
                ctx.set_timer(etime(n + i), TAG);
                self.phase = 1;
                if i == n {
                    self.flush_pending_help(ctx);
                }
            }
            1 => {
                // Paper time n+i: the confirmation chain.
                if i == f {
                    if self.received_b {
                        ctx.send(self.me + 1, C2n2fMsg::B(self.votes));
                        self.decide(self.votes, ctx);
                    } else {
                        self.votes = false;
                        self.cons_propose(false, ctx);
                    }
                    self.phase = 2;
                    self.flush_pending_help(ctx);
                } else if i == n {
                    if self.received_b {
                        self.decide(self.votes, ctx);
                        if f >= 2 {
                            ctx.send(0, C2n2fMsg::Z(self.votes));
                        }
                    } else {
                        let v = self.votes;
                        self.cons_propose(v, ctx);
                    }
                } else if i <= f - 1 {
                    if self.received_b {
                        ctx.send(self.me + 1, C2n2fMsg::B(self.votes));
                    } else {
                        self.votes = false;
                        self.cons_propose(false, ctx);
                    }
                    ctx.set_timer(etime(2 * n + i), TAG);
                    self.phase = 2;
                    self.flush_pending_help(ctx);
                } else {
                    // f+1 ≤ i ≤ n−1.
                    if self.received_b {
                        ctx.send(self.me + 1, C2n2fMsg::B(self.votes));
                        self.decide(self.votes, ctx);
                    } else {
                        for q in 0..self.f {
                            ctx.send(q, C2n2fMsg::Help);
                        }
                        ctx.send(self.n - 1, C2n2fMsg::Help);
                    }
                }
            }
            2 => {
                // Paper time 2n+i (1 ≤ i ≤ f−1): the tail chain.
                if self.received_z {
                    self.decide(self.votes, ctx);
                    if f - 1 >= i + 1 {
                        ctx.send(self.me + 1, C2n2fMsg::Z(self.votes));
                    }
                } else {
                    let v = self.votes;
                    self.cons_propose(v, ctx);
                }
            }
            other => unreachable!("(2n-2+f)NBAC timer in phase {other}"),
        }
    }
}

impl Nbac2n2f {
    fn flush_pending_help(&mut self, ctx: &mut Ctx<C2n2fMsg>) {
        if self.can_serve_help() {
            let pending = std::mem::take(&mut self.pending_help);
            for p in pending {
                ctx.send(p, C2n2fMsg::Helped(self.votes));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check;
    use crate::protocols::ProtocolKind;
    use crate::runner::{nice_complexity, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::{Time, U};

    #[test]
    fn nice_execution_is_message_optimal() {
        for n in 3..=8 {
            for f in 1..n {
                let (d, m) = nice_complexity::<Nbac2n2f>(n, f);
                assert_eq!(m, (2 * n - 2 + f) as u64, "n={n} f={f}");
                let expect_d = if f == 1 { 2 * n - 1 } else { 2 * n + f - 2 } as u64;
                assert_eq!(d, expect_d, "n={n} f={f}");
            }
        }
    }

    #[test]
    fn unanimous_commit_and_single_no_abort() {
        let out = Scenario::nice(5, 2).run::<Nbac2n2f>();
        assert_eq!(out.decided_values(), vec![1]);
        for dissenter in 0..5 {
            let sc = Scenario::nice(5, 2).vote_no(dissenter);
            let out = sc.run::<Nbac2n2f>();
            check(&out, &sc.votes, ProtocolKind::Nbac2n2f.cell())
                .assert_ok(&format!("dissenter {dissenter}"));
            assert_eq!(out.decided_values(), vec![0], "dissenter {dissenter}");
        }
    }

    #[test]
    fn crash_executions_solve_nbac() {
        let n = 5;
        for victim in 0..n {
            for t in [0u64, 2, 4, 6, 8] {
                let sc = Scenario::nice(n, 2).crash(victim, Crash::at(Time::units(t)));
                let out = sc.run::<Nbac2n2f>();
                check(&out, &sc.votes, ProtocolKind::Nbac2n2f.cell())
                    .assert_ok(&format!("victim={victim} t={t}U"));
                // All live processes decide (termination via help/consensus).
                for p in 0..n {
                    assert!(
                        out.crashed[p] || out.decisions[p].is_some(),
                        "victim={victim} t={t}U: P{} undecided",
                        p + 1
                    );
                }
            }
        }
    }

    #[test]
    fn network_failure_executions_solve_nbac() {
        // Break the confirmation chain with a delay: indulgence demands
        // NBAC still holds.
        let sc =
            Scenario::nice(4, 1).rule(DelayRule::link(3, 0, Time::ZERO, Time::units(20), 10 * U));
        let out = sc.run::<Nbac2n2f>();
        check(&out, &sc.votes, ProtocolKind::Nbac2n2f.cell()).assert_ok("broken B chain");
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn help_round_serves_queued_requests() {
        // Crash Pf so that P_{f+1}..P_{n−1} miss the confirmation chain and
        // fall back to [HELP]; Pn answers from phase 1.
        let sc = Scenario::nice(5, 2).crash(1, Crash::at(Time::units(5)));
        let out = sc.run::<Nbac2n2f>();
        check(&out, &sc.votes, ProtocolKind::Nbac2n2f.cell()).assert_ok("crashed Pf");
        for p in [0usize, 2, 3, 4] {
            assert!(out.decisions[p].is_some(), "P{} undecided", p + 1);
        }
    }
}
