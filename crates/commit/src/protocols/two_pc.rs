//! Two-phase commit (Gray 1978), in the paper's spontaneous-start form
//! (§6.2, Table 5): participants send their votes unsolicited, the
//! coordinator `Pn` broadcasts the outcome.
//!
//! Guarantees (AV, AV): agreement and validity in *every* execution — the
//! decision has a single source — but a coordinator crash blocks every
//! participant forever ("a single point of failure", §6.2). Nice-execution
//! complexity: 2 delays, `2n−2` messages.

use ac_sim::{Automaton, Ctx, ProcessId, Time};

use crate::problem::{decision_value, validate_params, CommitProtocol, Vote};

/// 2PC's message alphabet.
#[derive(Clone, Debug)]
pub enum TwoPcMsg {
    /// A participant's vote.
    V(bool),
    /// The coordinator's outcome.
    D(bool),
}

const TAG_COLLECT: u32 = 1;

/// One process of 2PC. The coordinator is `Pn` (id `n−1`).
#[derive(Debug)]
pub struct TwoPc {
    me: ProcessId,
    n: usize,
    vote: Vote,
    /// Coordinator: AND of votes seen so far.
    votes_all: bool,
    /// Coordinator: processes whose vote arrived (self included).
    got: Vec<bool>,
    decided: bool,
}

impl TwoPc {
    fn coordinator(&self) -> ProcessId {
        self.n - 1
    }

    fn is_coordinator(&self) -> bool {
        self.me == self.coordinator()
    }
}

impl CommitProtocol for TwoPc {
    const NAME: &'static str = "2PC";

    fn new(me: ProcessId, n: usize, f: usize, vote: Vote) -> Self {
        validate_params(n, f);
        TwoPc {
            me,
            n,
            vote,
            votes_all: true,
            got: vec![false; n],
            decided: false,
        }
    }
}

impl Automaton for TwoPc {
    type Msg = TwoPcMsg;

    fn on_start(&mut self, ctx: &mut Ctx<TwoPcMsg>) {
        if self.is_coordinator() {
            self.votes_all = self.vote;
            self.got[self.me] = true;
            // All votes are in transit now; they arrive within U in any
            // synchronous execution.
            ctx.set_timer(Time::units(1), TAG_COLLECT);
        } else {
            let coord = self.coordinator();
            ctx.send(coord, TwoPcMsg::V(self.vote));
            // Participants block until the outcome arrives: no timer.
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: TwoPcMsg, ctx: &mut Ctx<TwoPcMsg>) {
        match msg {
            TwoPcMsg::V(v) => {
                debug_assert!(self.is_coordinator());
                self.votes_all &= v;
                self.got[from] = true;
            }
            TwoPcMsg::D(d) => {
                if !self.decided {
                    self.decided = true;
                    ctx.decide(decision_value(d));
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u32, ctx: &mut Ctx<TwoPcMsg>) {
        debug_assert_eq!(tag, TAG_COLLECT);
        // A missing vote means a failure somewhere: abort.
        let commit = self.votes_all && self.got.iter().all(|&g| g);
        ctx.broadcast_others(TwoPcMsg::D(commit));
        self.decided = true;
        ctx.decide(decision_value(commit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{nice_complexity, run_nice, Scenario};
    use ac_net::{Crash, DelayRule};
    use ac_sim::U;

    #[test]
    fn nice_execution_matches_table5() {
        for n in 2..=8 {
            let (d, m) = nice_complexity::<TwoPc>(n, 1);
            assert_eq!((d, m), (2, 2 * n as u64 - 2), "n={n}");
        }
    }

    #[test]
    fn all_commit_in_nice_execution() {
        let out = run_nice::<TwoPc>(5, 2);
        assert_eq!(out.decided_values(), vec![1]);
    }

    #[test]
    fn single_no_vote_aborts_everyone() {
        for dissenter in 0..4 {
            let out = Scenario::nice(4, 1).vote_no(dissenter).run::<TwoPc>();
            assert_eq!(out.decided_values(), vec![0], "dissenter {dissenter}");
        }
    }

    #[test]
    fn participant_crash_aborts() {
        let out = Scenario::nice(4, 1)
            .crash(1, Crash::initially())
            .run::<TwoPc>();
        assert_eq!(out.decided_values(), vec![0]);
        // The three live processes all decided.
        for p in [0, 2, 3] {
            assert_eq!(out.decision_of(p), Some(0));
        }
    }

    #[test]
    fn coordinator_crash_blocks_participants() {
        let out = Scenario::nice(4, 1)
            .crash(3, Crash::at(Time::units(1)))
            .run::<TwoPc>();
        // Nobody ever decides: the protocol is blocking.
        assert!(out.decisions.iter().all(|d| d.is_none()));
        assert!(out.quiescent, "2PC must quiesce even when blocked");
    }

    #[test]
    fn late_vote_aborts_but_agreement_holds() {
        // P1's vote to the coordinator is delayed past the collect timeout:
        // a network-failure execution; 2PC aborts but stays consistent.
        let out = Scenario::nice(4, 1)
            .rule(DelayRule::link(0, 3, Time::ZERO, Time::units(1), 5 * U))
            .run::<TwoPc>();
        assert_eq!(out.decided_values(), vec![0]);
        assert!(out.decisions.iter().all(|d| d.is_some()));
    }

    #[test]
    fn coordinator_partial_broadcast_still_agrees() {
        // Coordinator crashes mid-outcome-broadcast: some participants get
        // D(1), the rest block. Agreement among deciders holds.
        let out = Scenario::nice(5, 1)
            .crash(4, Crash::partial(Time::units(1), 2))
            .run::<TwoPc>();
        let vals = out.decided_values();
        assert!(vals.len() <= 1, "two different decisions: {vals:?}");
        let decided = out.decisions.iter().flatten().count();
        assert_eq!(decided, 2, "exactly the two reached participants decide");
    }
}
