//! The robustness taxonomy of Table 1.
//!
//! An atomic commit problem variant is a pair `(X, Y)` of property subsets
//! of `{A, V, T}`: the protocol must (a) solve NBAC in every failure-free
//! execution, (b) satisfy `X` in every crash-failure execution and (c)
//! satisfy `Y` in every network-failure execution. Since every crash-failure
//! execution is also reachable in the network-failure system, a property in
//! `Y` is automatically in `X`; cells with `Y ⊄ X` are "empty" and reduce to
//! `(X ∪ Y, Y)`. That leaves the 27 non-empty cells of Table 1.
//!
//! The tight bounds proved in the paper (Theorems 1 and 2, tightness by
//! Theorems 3 and 4):
//!
//! * delays: `d = 2` iff `X = {A,V,T}` and `A ∈ Y`; otherwise `d = 1`;
//! * messages: `m = 2n−2+f` in the `d = 2` group; else `m = 2n−2` if
//!   `V ∈ Y`; else `m = n−1+f` if `V ∈ X`; else `m = 0`.
//!
//! Theorem 5 adds: any protocol of the `d = 2` group that actually decides
//! within two delays exchanges at least `2fn` messages in nice executions —
//! the bound INBAC meets.

use std::fmt;

/// A subset of the NBAC properties {Agreement, Validity, Termination},
/// packed into three bits.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropSet(u8);

impl PropSet {
    /// No guarantee.
    pub const EMPTY: PropSet = PropSet(0);
    /// Agreement only.
    pub const A: PropSet = PropSet(0b001);
    /// Validity only.
    pub const V: PropSet = PropSet(0b010);
    /// Termination only.
    pub const T: PropSet = PropSet(0b100);
    /// Agreement + validity.
    pub const AV: PropSet = PropSet(0b011);
    /// Agreement + termination.
    pub const AT: PropSet = PropSet(0b101);
    /// Validity + termination.
    pub const VT: PropSet = PropSet(0b110);
    /// All three: full NBAC.
    pub const AVT: PropSet = PropSet(0b111);

    /// All eight subsets, in Table 1's column order (∅, A, V, T, AV, AT,
    /// VT, AVT).
    pub fn all() -> [PropSet; 8] {
        [
            Self::EMPTY,
            Self::A,
            Self::V,
            Self::T,
            Self::AV,
            Self::AT,
            Self::VT,
            Self::AVT,
        ]
    }

    /// Whether every property in `other` is also in `self`.
    #[inline]
    pub fn contains(self, other: PropSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// The properties in either set.
    #[inline]
    pub fn union(self, other: PropSet) -> PropSet {
        PropSet(self.0 | other.0)
    }

    /// Whether agreement is guaranteed.
    #[inline]
    pub fn has_agreement(self) -> bool {
        self.contains(Self::A)
    }

    /// Whether validity is guaranteed.
    #[inline]
    pub fn has_validity(self) -> bool {
        self.contains(Self::V)
    }

    /// Whether termination is guaranteed.
    #[inline]
    pub fn has_termination(self) -> bool {
        self.contains(Self::T)
    }
}

impl fmt::Debug for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::EMPTY {
            return write!(f, "∅");
        }
        if self.has_agreement() {
            write!(f, "A")?;
        }
        if self.has_validity() {
            write!(f, "V")?;
        }
        if self.has_termination() {
            write!(f, "T")?;
        }
        Ok(())
    }
}

impl fmt::Display for PropSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// One cell of Table 1: guarantees `cf` in crash-failure executions and
/// `nf` in network-failure executions (plus NBAC in failure-free ones).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Guarantees in crash-failure (synchronous) executions.
    pub cf: PropSet,
    /// Guarantees in network-failure (eventually synchronous) executions.
    pub nf: PropSet,
}

impl fmt::Debug for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.cf, self.nf)
    }
}

impl Cell {
    /// The cell guaranteeing `cf` under crash failures and `nf` under
    /// network failures.
    pub fn new(cf: PropSet, nf: PropSet) -> Cell {
        Cell { cf, nf }
    }

    /// Indulgent atomic commit (Definition 3): every network-failure
    /// execution solves NBAC — the most robust cell.
    pub const INDULGENT: Cell = Cell {
        cf: PropSet::AVT,
        nf: PropSet::AVT,
    };

    /// Synchronous NBAC: NBAC in every crash-failure execution; in Table 1
    /// terms the paper's (AVT, T) column covers its message-optimal side.
    pub const SYNC_NBAC: Cell = Cell {
        cf: PropSet::AVT,
        nf: PropSet::EMPTY,
    };

    /// Whether this cell is non-empty in Table 1 (`nf ⊆ cf`).
    pub fn is_canonical(self) -> bool {
        self.cf.contains(self.nf)
    }

    /// Reduce an arbitrary `(X, Y)` pair to its canonical non-empty cell
    /// `(X ∪ Y, Y)` (the paper: "for every empty cell (X, Y), there exists a
    /// non-empty cell (Z, Y) such that X ∪ Y = Z").
    pub fn canonicalize(self) -> Cell {
        Cell {
            cf: self.cf.union(self.nf),
            nf: self.nf,
        }
    }

    /// The 27 non-empty cells, row-major in Table 1's layout (rows = NF
    /// property set, columns = CF property set).
    pub fn all() -> Vec<Cell> {
        let mut cells = Vec::with_capacity(27);
        for nf in PropSet::all() {
            for cf in PropSet::all() {
                let cell = Cell::new(cf, nf);
                if cell.is_canonical() {
                    cells.push(cell);
                }
            }
        }
        cells
    }

    /// `self` is less (or equally) robust than `other`: component-wise
    /// subset. This is the partial order used to group cells for the lower
    /// bounds.
    pub fn le(self, other: Cell) -> bool {
        other.cf.contains(self.cf) && other.nf.contains(self.nf)
    }

    /// Tight bounds for this cell (must be canonical).
    pub fn bounds(self, n: usize, f: usize) -> Bounds {
        assert!(
            self.is_canonical(),
            "bounds of an empty cell: canonicalize first"
        );
        let n = n as u64;
        let f = f as u64;
        let two_delay_group = self.cf == PropSet::AVT && self.nf.has_agreement();
        let delays = if two_delay_group { 2 } else { 1 };
        let messages = if two_delay_group {
            2 * n - 2 + f
        } else if self.nf.has_validity() {
            2 * n - 2
        } else if self.cf.has_validity() {
            n - 1 + f
        } else {
            0
        };
        // Minimum messages achievable by a *delay-optimal* protocol:
        // - d=2 group: 2fn (Theorem 5, tight by INBAC);
        // - cells with validity in CF and d=1: a 1-delay protocol must use
        //   n(n−1) messages (§3.2), hence the trade-off;
        // - cells without validity anywhere: 0NBAC achieves both optima.
        let messages_at_optimal_delay = if two_delay_group {
            2 * f * n
        } else if self.cf.has_validity() {
            n * (n - 1)
        } else {
            0
        };
        Bounds {
            delays,
            messages,
            messages_at_optimal_delay,
        }
    }

    /// Whether the optimal delay and message counts cannot be achieved by
    /// one protocol (the paper: 18 of the 27 variants).
    pub fn has_tradeoff(self, n: usize, f: usize) -> bool {
        let b = self.bounds(n, f);
        b.messages_at_optimal_delay > b.messages
    }
}

/// Tight complexity bounds of one cell.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Optimal number of message delays in nice executions.
    pub delays: u64,
    /// Optimal number of messages in nice executions.
    pub messages: u64,
    /// Optimal number of messages among *delay-optimal* protocols.
    pub messages_at_optimal_delay: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_27_nonempty_cells() {
        assert_eq!(Cell::all().len(), 27);
        assert!(Cell::all().iter().all(|c| c.is_canonical()));
    }

    #[test]
    fn canonicalize_matches_paper_rule() {
        // (A, V) is empty; it reduces to (AV, V).
        let c = Cell::new(PropSet::A, PropSet::V);
        assert!(!c.is_canonical());
        assert_eq!(c.canonicalize(), Cell::new(PropSet::AV, PropSet::V));
        // Canonical cells are fixed points.
        for c in Cell::all() {
            assert_eq!(c.canonicalize(), c);
        }
    }

    #[test]
    fn delay_bounds_match_table1() {
        let n = 5;
        let f = 2;
        // The four 2-delay cells.
        for nf in [PropSet::A, PropSet::AV, PropSet::AT, PropSet::AVT] {
            assert_eq!(
                Cell::new(PropSet::AVT, nf).bounds(n, f).delays,
                2,
                "nf={nf}"
            );
        }
        // Everything else is 1.
        for c in Cell::all() {
            if !(c.cf == PropSet::AVT && c.nf.has_agreement()) {
                assert_eq!(c.bounds(n, f).delays, 1, "cell {c:?}");
            }
        }
    }

    #[test]
    fn message_bounds_match_table1_row_by_row() {
        // Spot-check every non-empty cell of Table 1 for n=4, f=2:
        // n-1+f = 5, 2n-2 = 6, 2n-2+f = 8.
        let (n, f) = (4usize, 2usize);
        let m = |cf, nf| Cell::new(cf, nf).bounds(n, f).messages;
        use PropSet as P;
        // Row NF = ∅.
        assert_eq!(m(P::EMPTY, P::EMPTY), 0);
        assert_eq!(m(P::A, P::EMPTY), 0);
        assert_eq!(m(P::V, P::EMPTY), 5);
        assert_eq!(m(P::T, P::EMPTY), 0);
        assert_eq!(m(P::AV, P::EMPTY), 5);
        assert_eq!(m(P::AT, P::EMPTY), 0);
        assert_eq!(m(P::VT, P::EMPTY), 5);
        assert_eq!(m(P::AVT, P::EMPTY), 5);
        // Row NF = A.
        assert_eq!(m(P::A, P::A), 0);
        assert_eq!(m(P::AV, P::A), 5);
        assert_eq!(m(P::AT, P::A), 0);
        assert_eq!(m(P::AVT, P::A), 8);
        // Row NF = V.
        assert_eq!(m(P::V, P::V), 6);
        assert_eq!(m(P::AV, P::V), 6);
        assert_eq!(m(P::VT, P::V), 6);
        assert_eq!(m(P::AVT, P::V), 6);
        // Row NF = T.
        assert_eq!(m(P::T, P::T), 0);
        assert_eq!(m(P::AT, P::T), 0);
        assert_eq!(m(P::VT, P::T), 5);
        assert_eq!(m(P::AVT, P::T), 5);
        // Row NF = AV.
        assert_eq!(m(P::AV, P::AV), 6);
        assert_eq!(m(P::AVT, P::AV), 8);
        // Row NF = AT.
        assert_eq!(m(P::AT, P::AT), 0);
        assert_eq!(m(P::AVT, P::AT), 8);
        // Row NF = VT.
        assert_eq!(m(P::VT, P::VT), 6);
        assert_eq!(m(P::AVT, P::VT), 6);
        // Row NF = AVT.
        assert_eq!(m(P::AVT, P::AVT), 8);
    }

    #[test]
    fn exactly_18_cells_have_a_tradeoff() {
        let with_tradeoff = Cell::all().iter().filter(|c| c.has_tradeoff(6, 2)).count();
        assert_eq!(with_tradeoff, 18);
    }

    #[test]
    fn indulgent_cell_bounds() {
        let b = Cell::INDULGENT.bounds(5, 2);
        assert_eq!(b.delays, 2);
        assert_eq!(b.messages, 2 * 5 - 2 + 2);
        assert_eq!(b.messages_at_optimal_delay, 2 * 2 * 5); // 2fn (Theorem 5)
    }

    #[test]
    fn bounds_are_monotone_in_robustness() {
        // More robust cells can only be at least as expensive.
        let (n, f) = (7, 3);
        for a in Cell::all() {
            for b in Cell::all() {
                if a.le(b) {
                    let (ba, bb) = (a.bounds(n, f), b.bounds(n, f));
                    assert!(ba.delays <= bb.delays, "{a:?} vs {b:?}");
                    assert!(ba.messages <= bb.messages, "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn propset_display() {
        assert_eq!(PropSet::EMPTY.to_string(), "∅");
        assert_eq!(PropSet::AVT.to_string(), "AVT");
        assert_eq!(PropSet::VT.to_string(), "VT");
        assert_eq!(format!("{:?}", Cell::INDULGENT), "(AVT, AVT)");
    }
}
