//! # ac-commit — atomic commit protocols and their complexity
//!
//! The core library of this reproduction of Guerraoui & Wang, *How Fast can
//! a Distributed Transaction Commit?* (PODS 2017). It contains:
//!
//! * [`problem`] — the NBAC problem (Definition 1), votes/decisions, and the
//!   [`problem::CommitProtocol`] construction interface all
//!   protocols implement;
//! * [`taxonomy`] — the 27 robustness cells of Table 1 with their tight
//!   delay/message lower bounds (Theorems 1, 2 and 5) and the
//!   delay-vs-message trade-off classification;
//! * [`protocols`] — executable automata for every protocol in the paper:
//!   the new **INBAC** (§5, Appendix A) plus 1NBAC, 0NBAC, aNBAC, both
//!   avNBAC variants, (n−1+f)NBAC, (2n−2)NBAC, (2n−2+f)NBAC, and the
//!   baselines 2PC, 3PC, PaxosCommit and Faster PaxosCommit;
//! * [`checker`] — verifies agreement/validity/termination of recorded
//!   executions against the guarantees of a protocol's cell;
//! * [`explorer`] — exhaustive small-model exploration of vote vectors ×
//!   crash schedules;
//! * [`runner`] — convenience entry points building a simulated world for a
//!   protocol and scenario.

#![deny(missing_docs)]

pub mod checker;
pub mod explorer;
pub mod lower_bounds;
pub mod problem;
pub mod protocols;
pub mod runner;
pub mod taxonomy;

pub use checker::{check, CheckReport, Violation};
pub use problem::{CommitProtocol, Vote};
pub use runner::{run, run_nice, Scenario};
pub use taxonomy::{Bounds, Cell, PropSet};
