//! Per-shard write-ahead log: prepare/decision records with
//! replay-idempotent recovery.
//!
//! The live service (`ac-cluster`) logs every shard-local prepare (the
//! vote, with the full transaction body) and every applied decision to this
//! log *before* the effect leaves the node, so a crashed node can rebuild
//! its exact audited state: committed values, still-held write locks of
//! in-flight (prepared, undecided) transactions, and the decision list in
//! apply order. "To Vote Before Decide" motivates exactly this cost as a
//! first-class metric of a commit protocol; here the log is an in-process
//! structure that survives the node *thread* (the service keeps it outside
//! the thread's lost state), which models durable storage without touching
//! the filesystem.
//!
//! Replay is **idempotent and order-insensitive per transaction**: records
//! are first deduplicated (first prepare and first decision of a
//! transaction win; a protocol decides at most once, so duplicates can only
//! be replayed copies of the same record), then decisions are applied in
//! decision-log order. Replaying any prefix of the log twice therefore
//! yields the identical shard — the property the recovery path relies on
//! and `crates/txn/tests/wal_props.rs` proptests.

use std::collections::BTreeMap;
use std::sync::Arc;

use ac_commit::problem::COMMIT;

use crate::store::Shard;
use crate::txn::{Transaction, TxnId};

/// One durable record of a shard's write-ahead log.
#[derive(Clone, Debug)]
pub enum WalRecord {
    /// The shard validated `txn` and voted `vote`; a yes-vote implies its
    /// write locks are held from this point until a decision is applied.
    Prepare {
        /// The full transaction body (needed to re-take locks and re-apply
        /// writes on recovery).
        txn: Arc<Transaction>,
        /// The submitting client (so a recovered node can re-route its
        /// decision report).
        client: usize,
        /// The shard's local vote.
        vote: bool,
    },
    /// The commit protocol's decision for `txn` was applied locally.
    Decide {
        /// The decided transaction.
        txn: TxnId,
        /// The decided value (`ac_commit::problem::COMMIT` = commit).
        value: u64,
    },
}

impl WalRecord {
    /// The transaction this record belongs to.
    pub fn txn_id(&self) -> TxnId {
        match self {
            WalRecord::Prepare { txn, .. } => txn.id,
            WalRecord::Decide { txn, .. } => *txn,
        }
    }
}

/// A prepared-but-undecided transaction surfaced by recovery: the node must
/// re-join its still-running commit-protocol instance.
#[derive(Clone, Debug)]
pub struct PreparedTxn {
    /// The transaction body.
    pub txn: Arc<Transaction>,
    /// The submitting client.
    pub client: usize,
    /// The logged local vote (recovery must **not** re-validate — the vote
    /// was cast and possibly acted on by peers).
    pub vote: bool,
}

/// A decided transaction surfaced by recovery, in local apply order.
#[derive(Clone, Debug)]
pub struct DecidedTxn {
    /// The transaction body.
    pub txn: Arc<Transaction>,
    /// The submitting client.
    pub client: usize,
    /// The logged local vote.
    pub vote: bool,
    /// The decided value.
    pub value: u64,
}

/// The state a crashed shard recovers to.
#[derive(Clone, Debug)]
pub struct Recovery {
    /// The rebuilt shard: committed effects applied in decision-log order,
    /// write locks of in-flight yes-votes re-taken.
    pub shard: Shard,
    /// Decided transactions in apply order (the node's audited decision
    /// log).
    pub decided: Vec<DecidedTxn>,
    /// Prepared, undecided transactions in prepare order.
    pub in_flight: Vec<PreparedTxn>,
}

/// A shard's write-ahead log.
#[derive(Clone, Debug, Default)]
pub struct Wal {
    records: Vec<WalRecord>,
    /// Append self-metering: forced appends and the time they took
    /// (observability — the WAL force is a first-class latency stage;
    /// with the in-process log this is pure copy/allocation cost, i.e.
    /// the floor a durable backend would add its fsync to).
    appends: u64,
    append_nanos: u64,
    /// Force self-metering: durability points and the time they took. A
    /// legacy typed append (`log_prepare`/`log_decide`) is one append +
    /// one force; [`Wal::force_batch`] amortizes one force over many
    /// appends — the group-commit win the saturation harness gates on.
    forces: u64,
    force_nanos: u64,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a raw record (tests and conversions; the service uses the
    /// typed appenders below).
    pub fn append(&mut self, rec: WalRecord) {
        self.records.push(rec);
    }

    /// Log a prepare: `txn` validated locally with verdict `vote`.
    pub fn log_prepare(&mut self, txn: Arc<Transaction>, client: usize, vote: bool) {
        let t0 = std::time::Instant::now();
        self.records.push(WalRecord::Prepare { txn, client, vote });
        self.meter(t0);
    }

    /// Log an applied decision.
    pub fn log_decide(&mut self, txn: TxnId, value: u64) {
        let t0 = std::time::Instant::now();
        self.records.push(WalRecord::Decide { txn, value });
        self.meter(t0);
    }

    /// Group commit: append every staged record and force **once**. The
    /// batch is drained (the caller's staging buffer comes back empty,
    /// ready for reuse); an empty batch is a no-op — no force is charged
    /// for a durability point that wrote nothing.
    pub fn force_batch(&mut self, batch: &mut Vec<WalRecord>) {
        if batch.is_empty() {
            return;
        }
        let t0 = std::time::Instant::now();
        let n = batch.len() as u64;
        self.records.append(batch);
        let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.appends += n;
        self.append_nanos = self.append_nanos.saturating_add(nanos);
        self.forces += 1;
        self.force_nanos = self.force_nanos.saturating_add(nanos);
    }

    fn meter(&mut self, t0: std::time::Instant) {
        let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.appends += 1;
        self.append_nanos = self.append_nanos.saturating_add(nanos);
        // A typed single-record append is its own durability point.
        self.forces += 1;
        self.force_nanos = self.force_nanos.saturating_add(nanos);
    }

    /// `(appends, total append nanoseconds)` of the typed appenders.
    pub fn io_stats(&self) -> (u64, u64) {
        (self.appends, self.append_nanos)
    }

    /// `(forces, total force nanoseconds)`: how many durability points
    /// the log saw and what they cost. `forces < appends` is the
    /// group-commit signature; the legacy per-record appenders keep the
    /// two counters equal.
    pub fn force_stats(&self) -> (u64, u64) {
        (self.forces, self.force_nanos)
    }

    /// The raw record sequence.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Rebuild the shard state this log describes (see the module docs for
    /// the idempotence guarantees).
    pub fn replay(&self, shard_id: usize) -> Recovery {
        // Pass 1: deduplicate. First prepare and first decision per
        // transaction win; decision order is the order decisions first
        // appear in the log (the local apply order).
        let mut prepares: BTreeMap<TxnId, (Arc<Transaction>, usize, bool)> = BTreeMap::new();
        let mut prepare_order: Vec<TxnId> = Vec::new();
        let mut decisions: BTreeMap<TxnId, u64> = BTreeMap::new();
        let mut decide_order: Vec<TxnId> = Vec::new();
        for rec in &self.records {
            match rec {
                WalRecord::Prepare { txn, client, vote } => {
                    prepares.entry(txn.id).or_insert_with(|| {
                        prepare_order.push(txn.id);
                        (Arc::clone(txn), *client, *vote)
                    });
                }
                WalRecord::Decide { txn, value } => {
                    decisions.entry(*txn).or_insert_with(|| {
                        decide_order.push(*txn);
                        *value
                    });
                }
            }
        }

        // Pass 2: apply decisions in apply order, then re-take the locks of
        // in-flight yes-votes. A decision without a local prepare record is
        // unreplayable (no transaction body) and cannot be produced by the
        // service, which always logs the prepare first; it is skipped.
        let mut shard = Shard::new(shard_id);
        let mut decided = Vec::with_capacity(decide_order.len());
        for id in decide_order {
            let Some((txn, client, vote)) = prepares.get(&id) else {
                continue;
            };
            let value = decisions[&id];
            if value == COMMIT {
                shard.relock(txn);
            }
            shard.finish(txn, value == COMMIT);
            decided.push(DecidedTxn {
                txn: Arc::clone(txn),
                client: *client,
                vote: *vote,
                value,
            });
        }
        let mut in_flight = Vec::new();
        for id in prepare_order {
            if decisions.contains_key(&id) {
                continue;
            }
            let (txn, client, vote) = &prepares[&id];
            if *vote {
                shard.relock(txn);
            }
            in_flight.push(PreparedTxn {
                txn: Arc::clone(txn),
                client: *client,
                vote: *vote,
            });
        }
        Recovery {
            shard,
            decided,
            in_flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Key;

    fn write_txn(id: TxnId, shard: usize, k: u64, v: i64) -> Arc<Transaction> {
        Arc::new(Transaction::new(id).with_write(Key::new(shard, k), v))
    }

    #[test]
    fn commit_replays_to_the_applied_state() {
        let mut wal = Wal::new();
        let t = write_txn(7, 0, 3, 42);
        wal.log_prepare(Arc::clone(&t), 0, true);
        wal.log_decide(7, COMMIT);
        let rec = wal.replay(0);
        assert_eq!(rec.shard.read(3).value, 42);
        assert_eq!(rec.shard.read(3).version, 1);
        assert_eq!(rec.shard.locked(), 0);
        assert_eq!(rec.decided.len(), 1);
        assert!(rec.in_flight.is_empty());
    }

    #[test]
    fn crash_between_prepare_and_decision_recovers_locks() {
        // The satellite's unit case: a node crashes after voting yes but
        // before any decision arrives. Recovery must re-hold the write
        // locks (the shard is still *prepared*) and surface the
        // transaction as in-flight.
        let mut wal = Wal::new();
        let t = write_txn(9, 0, 5, 1);
        wal.log_prepare(Arc::clone(&t), 2, true);
        let rec = wal.replay(0);
        assert_eq!(rec.shard.locked(), 1, "prepared locks must be re-held");
        assert_eq!(rec.shard.read(5).version, 0, "nothing committed yet");
        assert_eq!(rec.in_flight.len(), 1);
        assert_eq!(rec.in_flight[0].client, 2);
        assert!(rec.in_flight[0].vote);
        // Completing the recovery with the decision reaches the exact state
        // a crash-free node would have.
        let mut wal2 = wal.clone();
        wal2.log_decide(9, COMMIT);
        let done = wal2.replay(0);
        assert_eq!(done.shard.read(5).value, 1);
        assert_eq!(done.shard.locked(), 0);
    }

    #[test]
    fn no_vote_prepare_holds_no_locks() {
        let mut wal = Wal::new();
        wal.log_prepare(write_txn(1, 0, 2, 9), 0, false);
        let rec = wal.replay(0);
        assert_eq!(rec.shard.locked(), 0);
        assert_eq!(rec.in_flight.len(), 1);
        assert!(!rec.in_flight[0].vote);
    }

    #[test]
    fn duplicate_records_replay_once() {
        let mut wal = Wal::new();
        let t = Arc::new(
            Transaction::new(4)
                .with_add(Key::new(0, 1), 10)
                .with_add(Key::new(1, 1), -10),
        );
        for _ in 0..3 {
            wal.log_prepare(Arc::clone(&t), 1, true);
            wal.log_decide(4, COMMIT);
        }
        let rec = wal.replay(0);
        // Add(10) applied exactly once despite three logged copies.
        assert_eq!(rec.shard.read(1).value, 10);
        assert_eq!(rec.shard.read(1).version, 1);
        assert_eq!(rec.decided.len(), 1);
    }

    #[test]
    fn io_stats_meter_typed_appends() {
        let mut wal = Wal::new();
        assert_eq!(wal.io_stats(), (0, 0));
        wal.log_prepare(write_txn(1, 0, 2, 9), 0, true);
        wal.log_decide(1, COMMIT);
        let (appends, nanos) = wal.io_stats();
        assert_eq!(appends, 2);
        assert!(nanos < u64::MAX);
        // Raw `append` (tests/conversions) is unmetered.
        wal.append(WalRecord::Decide { txn: 2, value: 0 });
        assert_eq!(wal.io_stats().0, 2);
    }

    #[test]
    fn force_batch_amortizes_one_force_over_many_appends() {
        let mut wal = Wal::new();
        let mut batch = Vec::new();
        for i in 0..8u64 {
            let t = write_txn(i + 1, 0, i, i as i64);
            batch.push(WalRecord::Prepare {
                txn: t,
                client: 0,
                vote: true,
            });
        }
        wal.force_batch(&mut batch);
        assert!(batch.is_empty(), "the staging buffer is drained");
        assert_eq!(wal.io_stats().0, 8, "every record appended");
        assert_eq!(wal.force_stats().0, 1, "one durability point");
        assert_eq!(wal.len(), 8);
        // An empty batch charges nothing.
        wal.force_batch(&mut batch);
        assert_eq!(wal.force_stats().0, 1);
        // Legacy appenders keep forces == appends.
        wal.log_decide(1, COMMIT);
        assert_eq!(wal.io_stats().0, 9);
        assert_eq!(wal.force_stats().0, 2);
    }

    #[test]
    fn force_batch_replays_identically_to_per_record_appends() {
        let t1 = write_txn(1, 0, 2, 10);
        let t2 = write_txn(2, 0, 5, 20);
        let mut per_record = Wal::new();
        per_record.log_prepare(Arc::clone(&t1), 0, true);
        per_record.log_prepare(Arc::clone(&t2), 1, true);
        per_record.log_decide(1, COMMIT);

        let mut grouped = Wal::new();
        let mut batch = vec![
            WalRecord::Prepare {
                txn: t1,
                client: 0,
                vote: true,
            },
            WalRecord::Prepare {
                txn: t2,
                client: 1,
                vote: true,
            },
            WalRecord::Decide {
                txn: 1,
                value: COMMIT,
            },
        ];
        grouped.force_batch(&mut batch);

        let (a, b) = (per_record.replay(0), grouped.replay(0));
        assert_eq!(a.shard.read(2), b.shard.read(2));
        assert_eq!(a.shard.locked(), b.shard.locked());
        assert_eq!(a.decided.len(), b.decided.len());
        assert_eq!(a.in_flight.len(), b.in_flight.len());
    }

    #[test]
    fn abort_decision_releases_without_effect() {
        let mut wal = Wal::new();
        let t = write_txn(5, 0, 8, 77);
        wal.log_prepare(t, 0, true);
        wal.log_decide(5, 0);
        let rec = wal.replay(0);
        assert_eq!(rec.shard.read(8).version, 0);
        assert_eq!(rec.shard.locked(), 0);
        assert_eq!(rec.decided[0].value, 0);
    }
}
