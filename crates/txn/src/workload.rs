//! Deterministic workload generators.
//!
//! Three families, mirroring the systems the paper cites:
//!
//! * **uniform** multi-shard read-write transactions (Sinfonia-style
//!   mini-transactions);
//! * **skewed** access with an approximate Zipf distribution (hot keys →
//!   conflicts → no-votes), implemented without external dependencies;
//! * **transfer** two-shard debit/credit pairs (the bank example).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::txn::{Key, Transaction, TxnId};

/// Workload shape.
#[derive(Clone, Debug)]
pub enum Workload {
    /// Each transaction writes `span` keys on distinct shards, keys drawn
    /// uniformly from `keys_per_shard`.
    Uniform {
        /// Distinct shards each transaction touches.
        span: usize,
    },
    /// Same, but keys are drawn Zipf-like with exponent `theta` — higher
    /// theta, hotter head, more write-write conflicts.
    Skewed {
        /// Distinct shards each transaction touches.
        span: usize,
        /// Zipf exponent (`0` = uniform; higher = hotter head).
        theta: f64,
    },
    /// Debit one key on one shard, credit one key on another.
    Transfer {
        /// Amount moved from the debited to the credited key.
        amount: i64,
    },
}

/// Generator configuration.
///
/// ```
/// use ac_txn::workload::{Workload, WorkloadConfig};
///
/// let cfg = WorkloadConfig {
///     shards: 4,
///     keys_per_shard: 100,
///     workload: Workload::Uniform { span: 2 },
///     seed: 7,
/// };
/// let txns = cfg.generator().take_txns(5);
/// assert_eq!(txns.len(), 5);
/// // Uniform transactions span `span` distinct shards.
/// assert!(txns.iter().all(|t| t.shards().len() == 2));
/// ```
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of shards keys are spread over.
    pub shards: usize,
    /// Keys per shard (drawn from `0..keys_per_shard`).
    pub keys_per_shard: u64,
    /// Workload shape.
    pub workload: Workload,
    /// Seed of the deterministic transaction stream.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The deterministic transaction stream of this configuration.
    pub fn generator(&self) -> WorkloadGen {
        WorkloadGen {
            cfg: self.clone(),
            rng: StdRng::seed_from_u64(self.seed),
            next_id: 1,
        }
    }
}

/// Deterministic stream of transactions.
pub struct WorkloadGen {
    cfg: WorkloadConfig,
    rng: StdRng,
    next_id: TxnId,
}

impl WorkloadGen {
    fn zipf_key(&mut self, theta: f64) -> u64 {
        // Approximate Zipf by inverse-power transform of a uniform draw:
        // rank = N * u^(1/(1-theta)) clamps the head; adequate for
        // conflict-rate control and dependency-free.
        let n = self.cfg.keys_per_shard as f64;
        let u: f64 = self.rng.gen_range(0.0f64..1.0).max(1e-12);
        let exponent = 1.0 / (1.0 - theta.min(0.99));
        ((n * u.powf(exponent)) as u64).min(self.cfg.keys_per_shard - 1)
    }

    fn distinct_shards(&mut self, span: usize) -> Vec<usize> {
        let span = span.min(self.cfg.shards);
        let mut shards: Vec<usize> = (0..self.cfg.shards).collect();
        for i in 0..span {
            let j = self.rng.gen_range(i..shards.len());
            shards.swap(i, j);
        }
        shards.truncate(span);
        shards
    }

    /// Next transaction in the stream.
    pub fn next_txn(&mut self) -> Transaction {
        let id = self.next_id;
        self.next_id += 1;
        match self.cfg.workload.clone() {
            Workload::Uniform { span } => {
                let mut t = Transaction::new(id);
                for shard in self.distinct_shards(span) {
                    let k = self.rng.gen_range(0..self.cfg.keys_per_shard);
                    t = t.with_write(Key::new(shard, k), self.rng.gen_range(-100..100));
                }
                t
            }
            Workload::Skewed { span, theta } => {
                let mut t = Transaction::new(id);
                for shard in self.distinct_shards(span) {
                    let k = self.zipf_key(theta);
                    t = t.with_write(Key::new(shard, k), self.rng.gen_range(-100..100));
                }
                t
            }
            Workload::Transfer { amount } => {
                let shards = self.distinct_shards(2);
                let (a, b) = (shards[0], shards[1 % shards.len()]);
                let ka = self.rng.gen_range(0..self.cfg.keys_per_shard);
                let kb = self.rng.gen_range(0..self.cfg.keys_per_shard);
                Transaction::new(id)
                    .with_add(Key::new(a, ka), -amount)
                    .with_add(Key::new(b, kb), amount)
            }
        }
    }

    /// Generate `count` transactions.
    pub fn take_txns(&mut self, count: usize) -> Vec<Transaction> {
        (0..count).map(|_| self.next_txn()).collect()
    }
}

/// Seeded Poisson arrival schedule: exponential inter-arrival gaps at a
/// mean rate of `rate` arrivals/second (the open-loop load generator's
/// clock). Deterministic per seed, like every generator in this module.
pub struct ArrivalSchedule {
    rng: StdRng,
    rate: f64,
}

impl ArrivalSchedule {
    /// A schedule at `rate` arrivals/second (must be positive).
    pub fn new(rate: f64, seed: u64) -> ArrivalSchedule {
        assert!(rate > 0.0, "arrival rate must be positive");
        ArrivalSchedule {
            rng: StdRng::seed_from_u64(seed),
            rate,
        }
    }

    /// The gap to the next arrival: `-ln(U)/rate` with `U` uniform on
    /// (0, 1] — the exponential inter-arrival time of a Poisson process.
    pub fn next_gap(&mut self) -> std::time::Duration {
        let u: f64 = self.rng.gen_range(0.0f64..1.0).max(1e-12);
        std::time::Duration::from_secs_f64((-u.ln()) / self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workload: Workload) -> WorkloadConfig {
        WorkloadConfig {
            shards: 4,
            keys_per_shard: 100,
            workload,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = cfg(Workload::Uniform { span: 2 }).generator().take_txns(20);
        let b = cfg(Workload::Uniform { span: 2 }).generator().take_txns(20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.writes, y.writes);
        }
    }

    #[test]
    fn uniform_spans_distinct_shards() {
        let txns = cfg(Workload::Uniform { span: 3 }).generator().take_txns(50);
        for t in &txns {
            assert_eq!(t.shards().len(), 3, "{t:?}");
        }
    }

    #[test]
    fn skew_concentrates_keys() {
        let mut hot = cfg(Workload::Skewed {
            span: 1,
            theta: 0.95,
        })
        .generator();
        let mut cold = cfg(Workload::Uniform { span: 1 }).generator();
        let head = |txns: &[Transaction]| {
            txns.iter()
                .flat_map(|t| t.writes.keys())
                .filter(|k| k.k < 10)
                .count()
        };
        let hot_head = head(&hot.take_txns(300));
        let cold_head = head(&cold.take_txns(300));
        assert!(
            hot_head > 2 * cold_head,
            "skewed head {hot_head} should dwarf uniform head {cold_head}"
        );
    }

    #[test]
    fn transfers_conserve_money_by_construction() {
        let txns = cfg(Workload::Transfer { amount: 10 })
            .generator()
            .take_txns(40);
        for t in &txns {
            let sum: i64 = t
                .writes
                .values()
                .map(|op| match op {
                    crate::txn::WriteOp::Add(d) => *d,
                    crate::txn::WriteOp::Put(_) => panic!("transfers are additive"),
                })
                .sum();
            assert_eq!(sum, 0, "{t:?}");
            assert_eq!(t.writes.len(), 2);
        }
    }

    #[test]
    fn ids_are_unique_and_increasing() {
        let txns = cfg(Workload::Uniform { span: 1 }).generator().take_txns(10);
        for (i, t) in txns.iter().enumerate() {
            assert_eq!(t.id, i as u64 + 1);
        }
    }
}
