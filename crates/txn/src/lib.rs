//! # ac-txn — a sharded transactional key-value substrate
//!
//! The paper motivates atomic commit with distributed database systems
//! (Sinfonia, Percolator, Spanner, Clock-SI, Yesquel, Helios — §1): each
//! node executes its part of a transaction and *votes*; a commit protocol
//! decides. This crate provides that surrounding system so the protocol
//! library can be exercised on realistic workloads:
//!
//! * [`store`] — a versioned key-value store per shard with
//!   optimistic-concurrency validation (each shard votes "yes" iff the
//!   transaction's read-set is still current and its write locks are free);
//! * [`txn`] — transactions (read/write sets over sharded keys);
//! * [`workload`] — deterministic workload generators: uniform, skewed
//!   (Zipf-like without external deps), Helios-style cross-datacenter
//!   conflict patterns;
//! * [`cluster`] — glues shards to any [`ac_commit::CommitProtocol`]: one
//!   simulated commit round per transaction, with latency (in message
//!   delays) and abort accounting;
//! * [`wal`] — a per-shard write-ahead log (prepare/decision records) with
//!   replay-idempotent recovery, the durability substrate of the live
//!   service's crash/restart path (`ac-chaos`).

#![deny(missing_docs)]

pub mod cluster;
pub mod store;
pub mod txn;
pub mod wal;
pub mod workload;

pub use cluster::{Cluster, CommitStats};
pub use store::{Shard, Version};
pub use txn::{Key, Transaction, TxnId, WriteOp};
pub use wal::{DecidedTxn, PreparedTxn, Recovery, Wal, WalRecord};
pub use workload::{ArrivalSchedule, Workload, WorkloadConfig};
