//! Per-shard versioned store with optimistic validation.
//!
//! This is the "local faith of the transaction" of the paper's §1.1: a
//! shard votes **yes** iff the transaction executed correctly locally —
//! here, iff its reads are still current and none of its write targets is
//! locked by a concurrent prepared transaction. A yes-vote takes write
//! locks (the shard is then *prepared* and must hold them until the commit
//! protocol decides), exactly the structure 2PC/INBAC assume.

use std::collections::BTreeMap;

use crate::txn::{Key, Transaction, TxnId, WriteOp};

/// A versioned cell.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Version {
    /// Current value.
    pub value: i64,
    /// Monotone version counter, bumped on every committed write.
    pub version: u64,
}

/// One shard of the database, owned by one process.
#[derive(Clone, Debug, Default)]
pub struct Shard {
    /// Owning process id.
    pub id: usize,
    cells: BTreeMap<u64, Version>,
    /// Write locks held by prepared transactions: key -> owner txn.
    locks: BTreeMap<u64, TxnId>,
}

impl Shard {
    /// An empty shard owned by process `id`.
    pub fn new(id: usize) -> Shard {
        Shard {
            id,
            cells: BTreeMap::new(),
            locks: BTreeMap::new(),
        }
    }

    /// Current version of `k` (default zero-version for absent keys).
    pub fn read(&self, k: u64) -> Version {
        self.cells.get(&k).copied().unwrap_or_default()
    }

    /// Validate `txn` and, if valid, take its write locks (prepare).
    /// Returns the shard's vote.
    pub fn prepare(&mut self, txn: &Transaction) -> bool {
        let my = |key: &Key| key.shard == self.id;
        // Read validation: versions unchanged.
        for (key, seen) in txn.reads.iter().filter(|(k, _)| my(k)) {
            if self.read(key.k).version != *seen {
                return false;
            }
        }
        // Lock check: no conflicting prepared writer (wound-free: just vote
        // no, the commit protocol aborts).
        for key in txn.writes.keys().filter(|k| my(k)) {
            if let Some(owner) = self.locks.get(&key.k) {
                if *owner != txn.id {
                    return false;
                }
            }
        }
        for key in txn.writes.keys().filter(|k| my(k)) {
            self.locks.insert(key.k, txn.id);
        }
        true
    }

    /// Apply the decision of the commit protocol for a prepared `txn`.
    pub fn finish(&mut self, txn: &Transaction, commit: bool) {
        let my = |key: &Key| key.shard == self.id;
        for (key, op) in txn.writes.iter().filter(|(k, _)| my(k)) {
            if self.locks.get(&key.k) == Some(&txn.id) {
                self.locks.remove(&key.k);
                if commit {
                    let cell = self.cells.entry(key.k).or_default();
                    match op {
                        WriteOp::Put(v) => cell.value = *v,
                        WriteOp::Add(d) => cell.value += *d,
                    }
                    cell.version += 1;
                }
            }
        }
    }

    /// Re-take `txn`'s write locks **without validation** (recovery path).
    ///
    /// Used when replaying a write-ahead log: the vote was already cast in
    /// the original execution, so re-validating reads against the recovered
    /// state would be wrong (a concurrent commit may have legitimately
    /// advanced a read version *after* this transaction validated).
    /// Idempotent — re-locking keys this transaction already owns is a
    /// no-op.
    ///
    /// Relocking **overwrites** conflicting locks, which is only sound
    /// when no concurrent transaction can hold one — i.e. at startup
    /// replay, before any live traffic. A caller relocking mid-stream
    /// (a logless node re-applying a recovered commit while new
    /// transactions prepare against the same shard) must first check
    /// [`Shard::foreign_lock_owner`] and wait until it returns `None`,
    /// or a live prepared transaction's lock would be silently stolen
    /// and its writes dropped at [`Shard::finish`].
    pub fn relock(&mut self, txn: &Transaction) {
        let my = |key: &Key| key.shard == self.id;
        for key in txn.writes.keys().filter(|k| my(k)) {
            self.locks.insert(key.k, txn.id);
        }
    }

    /// The owner of the first of `txn`'s write locks (on this shard) held
    /// by a *different* transaction, if any. `None` means every lock
    /// `txn` needs is free or already its own, so [`Shard::relock`] is
    /// safe even against live traffic.
    pub fn foreign_lock_owner(&self, txn: &Transaction) -> Option<TxnId> {
        txn.writes
            .keys()
            .filter(|k| k.shard == self.id)
            .find_map(|k| self.locks.get(&k.k).copied().filter(|&o| o != txn.id))
    }

    /// Number of currently held locks (diagnostics).
    pub fn locked(&self) -> usize {
        self.locks.len()
    }

    /// Sum of all values in this shard (used by the bank example to check
    /// conservation).
    pub fn total(&self) -> i64 {
        self.cells.values().map(|v| v.value).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn_writing(id: TxnId, shard: usize, k: u64, v: i64) -> Transaction {
        Transaction::new(id).with_write(Key::new(shard, k), v)
    }

    #[test]
    fn commit_bumps_version_and_value() {
        let mut s = Shard::new(0);
        let t = txn_writing(1, 0, 7, 42);
        assert!(s.prepare(&t));
        assert_eq!(s.locked(), 1);
        s.finish(&t, true);
        assert_eq!(
            s.read(7),
            Version {
                value: 42,
                version: 1
            }
        );
        assert_eq!(s.locked(), 0);
    }

    #[test]
    fn abort_releases_locks_without_effect() {
        let mut s = Shard::new(0);
        let t = txn_writing(1, 0, 7, 42);
        assert!(s.prepare(&t));
        s.finish(&t, false);
        assert_eq!(s.read(7), Version::default());
        assert_eq!(s.locked(), 0);
    }

    #[test]
    fn stale_read_votes_no() {
        let mut s = Shard::new(0);
        let w = txn_writing(1, 0, 3, 5);
        assert!(s.prepare(&w));
        s.finish(&w, true);
        // A transaction that read version 0 of key 3 is now stale.
        let stale = Transaction::new(2).with_read(Key::new(0, 3), 0);
        let mut s2 = s.clone();
        assert!(!s2.prepare(&stale));
        // Reading the current version is fine.
        let fresh = Transaction::new(3).with_read(Key::new(0, 3), 1);
        assert!(s.prepare(&fresh));
    }

    #[test]
    fn write_write_conflict_votes_no() {
        let mut s = Shard::new(0);
        let a = txn_writing(1, 0, 9, 1);
        let b = txn_writing(2, 0, 9, 2);
        assert!(s.prepare(&a));
        assert!(!s.prepare(&b), "b must be refused while a holds the lock");
        s.finish(&a, true);
        assert!(s.prepare(&b), "lock released after finish");
    }

    #[test]
    fn foreign_lock_owner_reports_live_conflicts_only() {
        let mut s = Shard::new(0);
        let a = txn_writing(1, 0, 9, 1);
        let b = txn_writing(2, 0, 9, 2);
        assert_eq!(
            s.foreign_lock_owner(&a),
            None,
            "free locks conflict with nobody"
        );
        assert!(s.prepare(&a));
        assert_eq!(s.foreign_lock_owner(&a), None, "own locks are not foreign");
        assert_eq!(s.foreign_lock_owner(&b), Some(1), "a's lock blocks b");
        s.finish(&a, true);
        assert_eq!(s.foreign_lock_owner(&b), None, "released after finish");
        // Keys on other shards never conflict here.
        let elsewhere = txn_writing(3, 5, 9, 7);
        assert!(s.prepare(&b));
        assert_eq!(s.foreign_lock_owner(&elsewhere), None);
    }

    #[test]
    fn foreign_keys_are_ignored() {
        let mut s = Shard::new(0);
        let t = txn_writing(1, 5, 0, 9); // shard 5, not ours
        assert!(s.prepare(&t));
        assert_eq!(s.locked(), 0);
        s.finish(&t, true);
        assert_eq!(s.total(), 0);
    }
}
