//! Per-shard versioned store with optimistic validation.
//!
//! This is the "local faith of the transaction" of the paper's §1.1: a
//! shard votes **yes** iff the transaction executed correctly locally —
//! here, iff its reads are still current and none of its write targets is
//! locked by a concurrent prepared transaction. A yes-vote takes write
//! locks (the shard is then *prepared* and must hold them until the commit
//! protocol decides), exactly the structure 2PC/INBAC assume.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::txn::{Key, Transaction, TxnId, WriteOp};

/// A versioned cell.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Version {
    /// Current value.
    pub value: i64,
    /// Monotone version counter, bumped on every committed write.
    pub version: u64,
}

/// One shard of the database, owned by one process.
#[derive(Clone, Debug, Default)]
pub struct Shard {
    /// Owning process id.
    pub id: usize,
    cells: BTreeMap<u64, Version>,
    /// Write locks held by prepared transactions: key -> owner txn.
    locks: BTreeMap<u64, TxnId>,
    /// Lock-residency self-metering: when each live owner first took a
    /// lock here, plus the completed-hold accumulators (observability —
    /// "lock hold time" is a first-class latency stage).
    lock_since: BTreeMap<TxnId, Instant>,
    lock_holds: u64,
    lock_hold_nanos: u64,
}

impl Shard {
    /// An empty shard owned by process `id`.
    pub fn new(id: usize) -> Shard {
        Shard {
            id,
            ..Shard::default()
        }
    }

    /// Current version of `k` (default zero-version for absent keys).
    pub fn read(&self, k: u64) -> Version {
        self.cells.get(&k).copied().unwrap_or_default()
    }

    /// Validate `txn` and, if valid, take its write locks (prepare).
    /// Returns the shard's vote.
    pub fn prepare(&mut self, txn: &Transaction) -> bool {
        let my = |key: &Key| key.shard == self.id;
        // Read validation: versions unchanged.
        for (key, seen) in txn.reads.iter().filter(|(k, _)| my(k)) {
            if self.read(key.k).version != *seen {
                return false;
            }
        }
        // Lock check: no conflicting prepared writer (wound-free: just vote
        // no, the commit protocol aborts).
        for key in txn.writes.keys().filter(|k| my(k)) {
            if let Some(owner) = self.locks.get(&key.k) {
                if *owner != txn.id {
                    return false;
                }
            }
        }
        let mut took = false;
        for key in txn.writes.keys().filter(|k| my(k)) {
            self.locks.insert(key.k, txn.id);
            took = true;
        }
        if took {
            self.lock_since.entry(txn.id).or_insert_with(Instant::now);
        }
        true
    }

    /// Apply the decision of the commit protocol for a prepared `txn`.
    pub fn finish(&mut self, txn: &Transaction, commit: bool) {
        let my = |key: &Key| key.shard == self.id;
        for (key, op) in txn.writes.iter().filter(|(k, _)| my(k)) {
            if self.locks.get(&key.k) == Some(&txn.id) {
                self.locks.remove(&key.k);
                if commit {
                    let cell = self.cells.entry(key.k).or_default();
                    match op {
                        WriteOp::Put(v) => cell.value = *v,
                        WriteOp::Add(d) => cell.value += *d,
                    }
                    cell.version += 1;
                }
            }
        }
        if let Some(t0) = self.lock_since.remove(&txn.id) {
            self.lock_holds += 1;
            self.lock_hold_nanos = self
                .lock_hold_nanos
                .saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Re-take `txn`'s write locks **without validation** (recovery path).
    ///
    /// Used when replaying a write-ahead log: the vote was already cast in
    /// the original execution, so re-validating reads against the recovered
    /// state would be wrong (a concurrent commit may have legitimately
    /// advanced a read version *after* this transaction validated).
    /// Idempotent — re-locking keys this transaction already owns is a
    /// no-op.
    ///
    /// Relocking **overwrites** conflicting locks, which is only sound
    /// when no concurrent transaction can hold one — i.e. at startup
    /// replay, before any live traffic. A caller relocking mid-stream
    /// (a logless node re-applying a recovered commit while new
    /// transactions prepare against the same shard) must first check
    /// [`Shard::foreign_lock_owner`] and wait until it returns `None`,
    /// or a live prepared transaction's lock would be silently stolen
    /// and its writes dropped at [`Shard::finish`].
    pub fn relock(&mut self, txn: &Transaction) {
        let my = |key: &Key| key.shard == self.id;
        let mut took = false;
        for key in txn.writes.keys().filter(|k| my(k)) {
            self.locks.insert(key.k, txn.id);
            took = true;
        }
        if took {
            self.lock_since.entry(txn.id).or_insert_with(Instant::now);
        }
    }

    /// The owner of the first of `txn`'s write locks (on this shard) held
    /// by a *different* transaction, if any. `None` means every lock
    /// `txn` needs is free or already its own, so [`Shard::relock`] is
    /// safe even against live traffic.
    pub fn foreign_lock_owner(&self, txn: &Transaction) -> Option<TxnId> {
        txn.writes
            .keys()
            .filter(|k| k.shard == self.id)
            .find_map(|k| self.locks.get(&k.k).copied().filter(|&o| o != txn.id))
    }

    /// Number of currently held locks (diagnostics).
    pub fn locked(&self) -> usize {
        self.locks.len()
    }

    /// `(completed holds, total held nanoseconds)` of released write
    /// locks: prepare (or relock) until [`Shard::finish`], first lock per
    /// transaction. Still-held locks are not counted until released.
    pub fn lock_hold_stats(&self) -> (u64, u64) {
        (self.lock_holds, self.lock_hold_nanos)
    }

    /// Sum of all values in this shard (used by the bank example to check
    /// conservation).
    pub fn total(&self) -> i64 {
        self.cells.values().map(|v| v.value).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn_writing(id: TxnId, shard: usize, k: u64, v: i64) -> Transaction {
        Transaction::new(id).with_write(Key::new(shard, k), v)
    }

    #[test]
    fn commit_bumps_version_and_value() {
        let mut s = Shard::new(0);
        let t = txn_writing(1, 0, 7, 42);
        assert!(s.prepare(&t));
        assert_eq!(s.locked(), 1);
        s.finish(&t, true);
        assert_eq!(
            s.read(7),
            Version {
                value: 42,
                version: 1
            }
        );
        assert_eq!(s.locked(), 0);
    }

    #[test]
    fn abort_releases_locks_without_effect() {
        let mut s = Shard::new(0);
        let t = txn_writing(1, 0, 7, 42);
        assert!(s.prepare(&t));
        s.finish(&t, false);
        assert_eq!(s.read(7), Version::default());
        assert_eq!(s.locked(), 0);
    }

    #[test]
    fn stale_read_votes_no() {
        let mut s = Shard::new(0);
        let w = txn_writing(1, 0, 3, 5);
        assert!(s.prepare(&w));
        s.finish(&w, true);
        // A transaction that read version 0 of key 3 is now stale.
        let stale = Transaction::new(2).with_read(Key::new(0, 3), 0);
        let mut s2 = s.clone();
        assert!(!s2.prepare(&stale));
        // Reading the current version is fine.
        let fresh = Transaction::new(3).with_read(Key::new(0, 3), 1);
        assert!(s.prepare(&fresh));
    }

    #[test]
    fn write_write_conflict_votes_no() {
        let mut s = Shard::new(0);
        let a = txn_writing(1, 0, 9, 1);
        let b = txn_writing(2, 0, 9, 2);
        assert!(s.prepare(&a));
        assert!(!s.prepare(&b), "b must be refused while a holds the lock");
        s.finish(&a, true);
        assert!(s.prepare(&b), "lock released after finish");
    }

    #[test]
    fn foreign_lock_owner_reports_live_conflicts_only() {
        let mut s = Shard::new(0);
        let a = txn_writing(1, 0, 9, 1);
        let b = txn_writing(2, 0, 9, 2);
        assert_eq!(
            s.foreign_lock_owner(&a),
            None,
            "free locks conflict with nobody"
        );
        assert!(s.prepare(&a));
        assert_eq!(s.foreign_lock_owner(&a), None, "own locks are not foreign");
        assert_eq!(s.foreign_lock_owner(&b), Some(1), "a's lock blocks b");
        s.finish(&a, true);
        assert_eq!(s.foreign_lock_owner(&b), None, "released after finish");
        // Keys on other shards never conflict here.
        let elsewhere = txn_writing(3, 5, 9, 7);
        assert!(s.prepare(&b));
        assert_eq!(s.foreign_lock_owner(&elsewhere), None);
    }

    #[test]
    fn lock_hold_stats_count_released_holds_only() {
        let mut s = Shard::new(0);
        let a = txn_writing(1, 0, 9, 1);
        assert!(s.prepare(&a));
        assert_eq!(s.lock_hold_stats(), (0, 0), "live holds are not counted");
        s.finish(&a, true);
        let (holds, nanos) = s.lock_hold_stats();
        assert_eq!(holds, 1);
        assert!(nanos > 0, "a real hold takes nonzero time");
        // A read-only (no locks here) transaction contributes nothing.
        let ro = Transaction::new(2).with_read(Key::new(0, 9), 1);
        assert!(s.prepare(&ro));
        s.finish(&ro, true);
        assert_eq!(s.lock_hold_stats().0, 1);
        // Recovery relocks count as holds once released.
        let b = txn_writing(3, 0, 4, 2);
        s.relock(&b);
        s.finish(&b, false);
        assert_eq!(s.lock_hold_stats().0, 2);
    }

    #[test]
    fn foreign_keys_are_ignored() {
        let mut s = Shard::new(0);
        let t = txn_writing(1, 5, 0, 9); // shard 5, not ours
        assert!(s.prepare(&t));
        assert_eq!(s.locked(), 0);
        s.finish(&t, true);
        assert_eq!(s.total(), 0);
    }
}
