//! The distributed database cluster: shards + a pluggable commit protocol.
//!
//! Every transaction runs the full cycle of the paper's §1.1: local
//! execution/validation at each shard (producing the votes), one run of the
//! chosen atomic-commit protocol over all `n` processes (processes whose
//! shard is untouched vote 1), and application of the decision. Latency is
//! measured in message delays — the paper's currency — and aggregated per
//! workload.

use ac_commit::protocols::ProtocolKind;
use ac_commit::Scenario;

use crate::store::Shard;
use crate::txn::Transaction;

/// Aggregated outcome of a workload run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommitStats {
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted.
    pub aborted: usize,
    /// Total commit-protocol latency, in message delays, across txns.
    pub total_delays: u64,
    /// Total messages exchanged by the commit protocol (the paper's
    /// arrival-before-decision count).
    pub total_messages: u64,
}

impl CommitStats {
    /// Total transactions executed.
    pub fn transactions(&self) -> usize {
        self.committed + self.aborted
    }

    /// Fraction of transactions that committed (0 if none ran).
    pub fn commit_ratio(&self) -> f64 {
        if self.transactions() == 0 {
            0.0
        } else {
            self.committed as f64 / self.transactions() as f64
        }
    }

    /// Mean commit-protocol latency per transaction, in message delays.
    pub fn avg_delays(&self) -> f64 {
        if self.transactions() == 0 {
            0.0
        } else {
            self.total_delays as f64 / self.transactions() as f64
        }
    }

    /// Mean commit-protocol messages per transaction.
    pub fn avg_messages(&self) -> f64 {
        if self.transactions() == 0 {
            0.0
        } else {
            self.total_messages as f64 / self.transactions() as f64
        }
    }
}

/// A cluster of `n` processes, each owning one shard, committing through a
/// chosen protocol.
pub struct Cluster {
    shards: Vec<Shard>,
    f: usize,
    kind: ProtocolKind,
    stats: CommitStats,
}

impl Cluster {
    /// A cluster of `n` single-shard processes tolerating `f` crashes,
    /// committing through `kind`.
    pub fn new(n: usize, f: usize, kind: ProtocolKind) -> Cluster {
        assert!(n >= 2 && f >= 1 && f < n);
        Cluster {
            shards: (0..n).map(Shard::new).collect(),
            f,
            kind,
            stats: CommitStats::default(),
        }
    }

    /// Number of processes (= shards).
    pub fn n(&self) -> usize {
        self.shards.len()
    }

    /// The commit protocol in use.
    pub fn protocol(&self) -> ProtocolKind {
        self.kind
    }

    /// Shard `i`'s store.
    pub fn shard(&self, i: usize) -> &Shard {
        &self.shards[i]
    }

    /// Statistics aggregated over every executed transaction.
    pub fn stats(&self) -> &CommitStats {
        &self.stats
    }

    /// Execute one transaction end-to-end (failure-free commit round).
    /// Returns whether it committed.
    pub fn execute(&mut self, txn: &Transaction) -> bool {
        let n = self.n();
        // 1. Local validation at every touched shard -> votes. Untouched
        //    processes have nothing to object to and vote 1.
        let votes: Vec<bool> = (0..n)
            .map(|p| {
                if txn.touches(p) {
                    self.shards[p].prepare(txn)
                } else {
                    true
                }
            })
            .collect();

        // 2. One run of the commit protocol.
        let sc = Scenario::nice(n, self.f).votes(&votes);
        let out = self.kind.run(&sc);
        let decided = out.decided_values();
        assert_eq!(
            decided.len(),
            1,
            "{}: failure-free commit round must agree on one value",
            self.kind.name()
        );
        let commit = decided[0] == 1;

        // 3. Apply everywhere.
        for shard in &mut self.shards {
            shard.finish(txn, commit);
        }

        // 4. Account.
        let m = out.metrics();
        if commit {
            self.stats.committed += 1;
        } else {
            self.stats.aborted += 1;
        }
        self.stats.total_delays += m.delays.unwrap_or(0);
        self.stats.total_messages += m.messages as u64;
        commit
    }

    /// Execute a batch; returns the stats snapshot after the batch.
    pub fn execute_all(&mut self, txns: &[Transaction]) -> CommitStats {
        for t in txns {
            self.execute(t);
        }
        self.stats.clone()
    }

    /// Pipelined execution: every transaction of the batch *prepares*
    /// before any commit round runs, so overlapping write sets within a
    /// batch conflict and vote no — the concurrency pattern that makes
    /// skewed workloads abort (Helios's cross-datacenter conflicts, §1).
    /// Returns per-transaction outcomes.
    pub fn execute_concurrent(&mut self, txns: &[Transaction]) -> Vec<bool> {
        let n = self.n();
        let votes_per_txn: Vec<Vec<bool>> = txns
            .iter()
            .map(|txn| {
                (0..n)
                    .map(|p| {
                        if txn.touches(p) {
                            self.shards[p].prepare(txn)
                        } else {
                            true
                        }
                    })
                    .collect()
            })
            .collect();
        txns.iter()
            .zip(votes_per_txn)
            .map(|(txn, votes)| {
                let sc = Scenario::nice(n, self.f).votes(&votes);
                let out = self.kind.run(&sc);
                let decided = out.decided_values();
                assert_eq!(decided.len(), 1, "{}: split decision", self.kind.name());
                let commit = decided[0] == 1;
                for shard in &mut self.shards {
                    shard.finish(txn, commit);
                }
                let m = out.metrics();
                if commit {
                    self.stats.committed += 1;
                } else {
                    self.stats.aborted += 1;
                }
                self.stats.total_delays += m.delays.unwrap_or(0);
                self.stats.total_messages += m.messages as u64;
                commit
            })
            .collect()
    }

    /// Run `txns` in pipelined batches of `batch` transactions.
    pub fn execute_batched(&mut self, txns: &[Transaction], batch: usize) -> CommitStats {
        assert!(batch >= 1);
        for chunk in txns.chunks(batch) {
            self.execute_concurrent(chunk);
        }
        self.stats.clone()
    }

    /// Total value across all shards (conservation checks).
    pub fn total_value(&self) -> i64 {
        self.shards.iter().map(|s| s.total()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::Key;
    use crate::workload::{Workload, WorkloadConfig};

    fn transfer(id: u64, from: (usize, u64), to: (usize, u64), amount: i64) -> Transaction {
        Transaction::new(id)
            .with_add(Key::new(from.0, from.1), -amount)
            .with_add(Key::new(to.0, to.1), amount)
    }

    #[test]
    fn single_transaction_commits_through_inbac() {
        let mut c = Cluster::new(4, 1, ProtocolKind::Inbac);
        assert!(c.execute(&transfer(1, (0, 0), (2, 0), 10)));
        assert_eq!(c.shard(0).read(0).value, -10);
        assert_eq!(c.shard(2).read(0).value, 10);
        assert_eq!(c.total_value(), 0);
    }

    #[test]
    fn conflicting_second_writer_aborts() {
        let mut c = Cluster::new(3, 1, ProtocolKind::TwoPc);
        let a = transfer(1, (0, 5), (1, 5), 7);
        assert!(c.execute(&a));
        // Re-running the same reads at old versions must abort.
        let stale = Transaction::new(2).with_read(Key::new(0, 5), 0);
        assert!(!c.execute(&stale));
        let s = c.execute_all(&[]);
        assert_eq!((s.committed, s.aborted), (1, 1));
    }

    #[test]
    fn all_protocols_agree_on_workload_outcomes() {
        // The same deterministic workload must commit/abort identically
        // under every protocol (decisions depend on votes, not transport).
        let cfg = WorkloadConfig {
            shards: 4,
            keys_per_shard: 8,
            workload: Workload::Skewed {
                span: 2,
                theta: 0.9,
            },
            seed: 11,
        };
        let txns = cfg.generator().take_txns(40);
        let mut outcomes: Vec<Vec<bool>> = Vec::new();
        for kind in [
            ProtocolKind::Inbac,
            ProtocolKind::TwoPc,
            ProtocolKind::PaxosCommit,
            ProtocolKind::Nbac1,
        ] {
            let mut c = Cluster::new(4, 1, kind);
            outcomes.push(txns.iter().map(|t| c.execute(t)).collect());
        }
        for pair in outcomes.windows(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn stats_accumulate_latency_in_delays() {
        let mut c = Cluster::new(4, 1, ProtocolKind::Inbac);
        c.execute(&transfer(1, (0, 0), (1, 0), 1));
        c.execute(&transfer(2, (2, 0), (3, 0), 1));
        let s = c.execute_all(&[]);
        assert_eq!(s.transactions(), 2);
        // INBAC: 2 delays, 2fn = 8 messages per round.
        assert_eq!(s.total_delays, 4);
        assert_eq!(s.total_messages, 16);
        assert!((s.avg_delays() - 2.0).abs() < f64::EPSILON);
    }
}
