//! Transactions over sharded keys.

use std::collections::BTreeMap;

use ac_sim::{Wire, WireError};

/// A key: `(shard, key-within-shard)`. Sharding is explicit so workloads can
//  control cross-shard spans precisely.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// Owning shard.
    pub shard: usize,
    /// Key within the shard.
    pub k: u64,
}

impl Key {
    /// Key `k` on `shard`.
    pub fn new(shard: usize, k: u64) -> Key {
        Key { shard, k }
    }
}

/// Transaction identifier.
pub type TxnId = u64;

/// A write effect. `Put` installs a value (blind write); `Add` increments
/// the current value (read-modify-write, e.g. a debit/credit), which is
/// what makes transfer workloads conserve money under concurrency.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WriteOp {
    /// Install the value (blind write).
    Put(i64),
    /// Increment the current value (read-modify-write).
    Add(i64),
}

/// A read-write transaction: reads are validated against the versions seen
/// at execute time; writes install new values on commit.
#[derive(Clone, Debug, Default)]
pub struct Transaction {
    /// Unique transaction id.
    pub id: TxnId,
    /// Key -> version observed when the transaction executed.
    pub reads: BTreeMap<Key, u64>,
    /// Key -> write effect.
    pub writes: BTreeMap<Key, WriteOp>,
}

impl Transaction {
    /// An empty transaction with id `id`.
    pub fn new(id: TxnId) -> Transaction {
        Transaction {
            id,
            reads: BTreeMap::new(),
            writes: BTreeMap::new(),
        }
    }

    /// Record a read of `key` at `version` (builder style).
    pub fn with_read(mut self, key: Key, version: u64) -> Transaction {
        self.reads.insert(key, version);
        self
    }

    /// Record a blind write of `value` to `key` (builder style).
    pub fn with_write(mut self, key: Key, value: i64) -> Transaction {
        self.writes.insert(key, WriteOp::Put(value));
        self
    }

    /// Record an increment of `key` by `delta` (builder style).
    pub fn with_add(mut self, key: Key, delta: i64) -> Transaction {
        self.writes.insert(key, WriteOp::Add(delta));
        self
    }

    /// The distinct shards this transaction touches.
    pub fn shards(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self
            .reads
            .keys()
            .chain(self.writes.keys())
            .map(|k| k.shard)
            .collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Whether a shard participates in this transaction.
    pub fn touches(&self, shard: usize) -> bool {
        self.reads
            .keys()
            .chain(self.writes.keys())
            .any(|k| k.shard == shard)
    }
}

impl Wire for Key {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.shard.encode(buf);
        self.k.encode(buf);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        Ok(Key {
            shard: usize::decode(buf)?,
            k: u64::decode(buf)?,
        })
    }
}

impl Wire for WriteOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WriteOp::Put(v) => {
                buf.push(0);
                v.encode(buf);
            }
            WriteOp::Add(d) => {
                buf.push(1);
                d.encode(buf);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        match u8::decode(buf)? {
            0 => Ok(WriteOp::Put(i64::decode(buf)?)),
            1 => Ok(WriteOp::Add(i64::decode(buf)?)),
            _ => Err(WireError::Invalid("WriteOp tag")),
        }
    }
}

impl Wire for Transaction {
    // Maps ride the `Vec<(K, V)>` encoding; `BTreeMap` iteration is
    // ordered, so equal transactions encode to equal bytes.
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        (self.reads.len() as u32).encode(buf);
        for (k, v) in &self.reads {
            k.encode(buf);
            v.encode(buf);
        }
        (self.writes.len() as u32).encode(buf);
        for (k, w) in &self.writes {
            k.encode(buf);
            w.encode(buf);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self, WireError> {
        let id = TxnId::decode(buf)?;
        let reads = Vec::<(Key, u64)>::decode(buf)?.into_iter().collect();
        let writes = Vec::<(Key, WriteOp)>::decode(buf)?.into_iter().collect();
        Ok(Transaction { id, reads, writes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_are_deduplicated_and_sorted() {
        let t = Transaction::new(1)
            .with_read(Key::new(2, 0), 0)
            .with_write(Key::new(0, 1), 5)
            .with_write(Key::new(2, 3), 7);
        assert_eq!(t.shards(), vec![0, 2]);
        assert!(t.touches(0));
        assert!(t.touches(2));
        assert!(!t.touches(1));
    }
}
