//! Property-based coverage for write-ahead-log recovery (ISSUE-5
//! satellite): replay is idempotent (replaying any prefix twice yields the
//! identical shard) and order-insensitive per transaction (a transaction's
//! prepare/decision pair recovers the same state wherever the records sit
//! in the log, and however often they are duplicated).

use std::sync::Arc;

use ac_txn::wal::{Wal, WalRecord};
use ac_txn::{Key, Shard, Transaction, WriteOp};
use proptest::prelude::*;

const SHARD: usize = 0;
const KEYS: u64 = 8;

/// Build a deterministic little transaction universe from a seed: txn `i`
/// writes 1–2 keys of shard 0 with values derived from the seed.
fn txn_universe(seed: u64, count: usize) -> Vec<Arc<Transaction>> {
    (0..count)
        .map(|i| {
            let s = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64);
            let mut t = Transaction::new(i as u64 + 1);
            t.writes
                .insert(Key::new(SHARD, s % KEYS), WriteOp::Put((s % 100) as i64));
            if s % 3 == 0 {
                t.writes.insert(
                    Key::new(SHARD, (s / 7) % KEYS),
                    WriteOp::Add((s % 13) as i64 - 6),
                );
            }
            Arc::new(t)
        })
        .collect()
}

/// Interpret a script of small integers as a WAL over the universe: even
/// opcodes log a prepare, odd opcodes log a decision. Vote and decision
/// value are functions of the transaction id — a shard votes once and a
/// protocol decides once, so every duplicated record is a *genuine copy*
/// (which is what a replayed log can contain). Records may duplicate and
/// interleave arbitrarily — exactly what replay must tolerate.
fn wal_from_script(txns: &[Arc<Transaction>], script: &[(u8, u8)]) -> Wal {
    let mut wal = Wal::new();
    for &(which, op) in script {
        let txn = &txns[which as usize % txns.len()];
        if op % 2 == 0 {
            wal.log_prepare(Arc::clone(txn), 0, txn.id % 3 != 0);
        } else {
            wal.log_decide(txn.id, u64::from(txn.id % 2 != 0));
        }
    }
    wal
}

fn shards_equal(a: &Shard, b: &Shard) -> bool {
    if a.locked() != b.locked() {
        return false;
    }
    (0..KEYS).all(|k| a.read(k) == b.read(k))
}

proptest! {
    #[test]
    fn replaying_any_prefix_twice_is_identical(
        seed in any::<u64>(),
        script in proptest::collection::vec((0u8..6, 0u8..4), 1..40),
        cut in any::<u64>(),
    ) {
        let txns = txn_universe(seed, 6);
        let wal = wal_from_script(&txns, &script);
        let baseline = wal.replay(SHARD);

        // Prepend a replayed prefix of the log: `prefix ++ log` must
        // recover the identical shard (locks and values), because the
        // prefix's records are all duplicated by the full log.
        let k = (cut as usize) % (wal.len() + 1);
        let mut doubled = Wal::new();
        for rec in &wal.records()[..k] {
            doubled.append(rec.clone());
        }
        for rec in wal.records() {
            doubled.append(rec.clone());
        }
        let re = doubled.replay(SHARD);
        prop_assert!(
            shards_equal(&baseline.shard, &re.shard),
            "prefix of {k} records changed the recovered shard"
        );
        prop_assert_eq!(baseline.decided.len(), re.decided.len());
        prop_assert_eq!(baseline.in_flight.len(), re.in_flight.len());
    }

    #[test]
    fn replay_is_order_insensitive_per_txn(
        seed in any::<u64>(),
        script in proptest::collection::vec((0u8..6, 0u8..4), 2..40),
        swap_at in any::<u64>(),
    ) {
        // Swapping a transaction's own prepare/decision records (adjacent
        // or not, the dedup pass sees the same first-of-each-kind) must
        // not change the recovered locks/values as long as the relative
        // decision order *between different transactions* is preserved.
        let txns = txn_universe(seed, 6);
        let wal = wal_from_script(&txns, &script);
        let baseline = wal.replay(SHARD);

        let mut records: Vec<WalRecord> = wal.records().to_vec();
        let i = (swap_at as usize) % records.len().saturating_sub(1).max(1);
        if records
            .get(i + 1)
            .is_some_and(|next| records[i].txn_id() == next.txn_id())
        {
            records.swap(i, i + 1);
        }
        let mut swapped = Wal::new();
        for rec in records {
            swapped.append(rec);
        }
        let re = swapped.replay(SHARD);
        prop_assert!(
            shards_equal(&baseline.shard, &re.shard),
            "swapping a txn's own records at {i} changed the recovered shard"
        );
    }

    #[test]
    fn crash_at_any_batch_boundary_keeps_every_acknowledged_txn(
        seed in any::<u64>(),
        script in proptest::collection::vec((0u8..6, 0u8..4), 1..60),
        batch in 1usize..16,
        cut in any::<u64>(),
    ) {
        // Group commit (ISSUE-9): the node stages records and forces once
        // per batch, and a crash loses exactly the unforced tail. Model
        // the crash as a cut at an arbitrary *batch boundary*: the
        // surviving log is the first k forced batches. The survivor must
        // (a) replay identically to a per-record log of the same records
        // — batching is invisible to recovery — and (b) keep every
        // acknowledged transaction: a decision record in a forced batch
        // (the precondition for the client reply to have left the node)
        // recovers as decided, and locks are exactly the in-flight
        // yes-votes' write sets.
        let txns = txn_universe(seed, 6);
        let all: Vec<WalRecord> = wal_from_script(&txns, &script).records().to_vec();
        let batches: Vec<&[WalRecord]> = all.chunks(batch).collect();
        let k = (cut as usize) % (batches.len() + 1);

        let mut grouped = Wal::new();
        for chunk in &batches[..k] {
            let mut staged = chunk.to_vec();
            grouped.force_batch(&mut staged);
        }
        prop_assert_eq!(grouped.force_stats().0 as usize, k, "one force per batch");

        let mut per_record = Wal::new();
        for rec in &all[..(k * batch).min(all.len())] {
            per_record.append(rec.clone());
        }
        prop_assert_eq!(per_record.len(), grouped.len());

        let (a, b) = (grouped.replay(SHARD), per_record.replay(SHARD));
        prop_assert!(
            shards_equal(&a.shard, &b.shard),
            "group commit changed the recovered shard at batch cut {k}"
        );
        prop_assert_eq!(a.decided.len(), b.decided.len());
        prop_assert_eq!(a.in_flight.len(), b.in_flight.len());

        // (b) acknowledged = a decision record survived the crash (and its
        // prepare, which the service always forces no later than the
        // decision of the same txn, is in the prefix too).
        let surviving = grouped.records();
        let acknowledged: std::collections::BTreeSet<u64> = surviving
            .iter()
            .filter(|r| matches!(r, WalRecord::Decide { .. }))
            .map(WalRecord::txn_id)
            .filter(|id| {
                surviving
                    .iter()
                    .any(|r| matches!(r, WalRecord::Prepare { .. }) && r.txn_id() == *id)
            })
            .collect();
        let decided: std::collections::BTreeSet<u64> =
            a.decided.iter().map(|d| d.txn.id).collect();
        prop_assert_eq!(&decided, &acknowledged, "an acknowledged txn was lost");

        // Locks exact: only in-flight yes-votes hold locks.
        let expected: usize = {
            let mut keys = std::collections::BTreeSet::new();
            for p in a.in_flight.iter().filter(|p| p.vote) {
                for key in p.txn.writes.keys() {
                    keys.insert(key.k);
                }
            }
            keys.len()
        };
        prop_assert_eq!(a.shard.locked(), expected);
    }

    #[test]
    fn in_flight_yes_votes_hold_exactly_their_locks(
        seed in any::<u64>(),
        script in proptest::collection::vec((0u8..6, 0u8..4), 1..40),
    ) {
        let txns = txn_universe(seed, 6);
        let wal = wal_from_script(&txns, &script);
        let rec = wal.replay(SHARD);
        // Every lock held after recovery must belong to an in-flight
        // yes-vote; decided transactions never leave locks behind.
        let expected: usize = {
            let mut keys = std::collections::BTreeSet::new();
            for p in rec.in_flight.iter().filter(|p| p.vote) {
                for key in p.txn.writes.keys() {
                    keys.insert(key.k);
                }
            }
            keys.len()
        };
        prop_assert_eq!(rec.shard.locked(), expected);
    }
}
