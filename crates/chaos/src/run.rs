//! Drive the live service under a [`ChaosPlan`] and measure
//! availability-under-failure: who keeps committing while the fault is
//! live, who merely keeps *deciding*, who blocks, and how long recovery
//! takes after the heal.

use std::sync::Arc;
use std::time::Duration;

use ac_cluster::{run_service_faulted, FaultSpec, ServiceConfig, ServiceOutcome, TxnEvent};

use crate::plan::ChaosPlan;
use crate::proxy::FaultProxy;

/// One chaos experiment: a service configuration plus the fault schedule.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// The service under test.
    pub service: ServiceConfig,
    /// The injected faults.
    pub plan: ChaosPlan,
}

/// Availability accounting against the plan's fault window.
#[derive(Clone, Debug)]
pub struct FaultStats {
    /// Fault window start (wall clock since the service epoch).
    pub fault_from: Duration,
    /// Fault window end — the heal/restart instant (clamped to the run
    /// length for faults that never heal).
    pub fault_until: Duration,
    /// Transactions first submitted inside the window.
    pub submitted_during_fault: usize,
    /// Of those, fully decided before the heal.
    pub decided_during_fault: usize,
    /// Transactions whose decision completed inside the window **and**
    /// committed — the paper-facing availability signal.
    pub committed_during_fault: usize,
    /// Transactions committed after the heal.
    pub committed_after_heal: usize,
    /// Committed-ops/s while the fault was live.
    pub ops_during_fault: f64,
    /// Committed-ops/s from the heal to the end of the run.
    pub ops_after_heal: f64,
    /// `100 · decided_during_fault / submitted_during_fault` (100 when
    /// nothing was submitted in the window).
    pub availability_pct: f64,
    /// Transactions the client had to *park* (its closed-loop wait gave up
    /// after `park_retries` bounded timeouts) — 2PC's blocked transactions
    /// under a crashed coordinator land here.
    pub blocked: usize,
    /// Worst time from the heal to a blocked transaction's decision (zero
    /// when nothing blocked or nothing recovered) — the time-to-unblock.
    pub time_to_unblock: Duration,
    /// Transactions never resolved (equals the service's stall count).
    pub unresolved: usize,
}

impl FaultStats {
    /// Bucket `events` against the fault window `[from, until)`.
    pub fn measure(
        events: &[TxnEvent],
        from: Duration,
        until: Duration,
        run: Duration,
        park_retries: u32,
    ) -> FaultStats {
        let until = until.min(run).max(from);
        let mut submitted_during_fault = 0;
        let mut decided_during_fault = 0;
        let mut committed_during_fault = 0;
        let mut committed_after_heal = 0;
        let mut blocked = 0;
        let mut unresolved = 0;
        let mut time_to_unblock = Duration::ZERO;
        for ev in events {
            let in_window = ev.submitted_at >= from && ev.submitted_at < until;
            if in_window {
                submitted_during_fault += 1;
            }
            match ev.decided_at {
                None => unresolved += 1,
                Some(at) => {
                    let committed = ev.committed == Some(true);
                    if in_window && at < until {
                        decided_during_fault += 1;
                    }
                    if committed && at >= from && at < until {
                        committed_during_fault += 1;
                    }
                    if committed && at >= until {
                        committed_after_heal += 1;
                    }
                    if ev.retries >= park_retries {
                        blocked += 1;
                        time_to_unblock = time_to_unblock.max(at.saturating_sub(until));
                    }
                }
            }
            if ev.decided_at.is_none() && ev.retries >= park_retries {
                blocked += 1;
            }
        }
        let window_secs = (until.saturating_sub(from)).as_secs_f64();
        let heal_secs = run.saturating_sub(until).as_secs_f64();
        FaultStats {
            fault_from: from,
            fault_until: until,
            submitted_during_fault,
            decided_during_fault,
            committed_during_fault,
            committed_after_heal,
            ops_during_fault: committed_during_fault as f64 / window_secs.max(1e-9),
            ops_after_heal: committed_after_heal as f64 / heal_secs.max(1e-9),
            availability_pct: if submitted_during_fault == 0 {
                100.0
            } else {
                100.0 * decided_during_fault as f64 / submitted_during_fault as f64
            },
            blocked,
            time_to_unblock,
            unresolved,
        }
    }
}

/// Result of one chaos experiment.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The full service outcome (latency, audit, shard states, timelines).
    pub service: ServiceOutcome,
    /// Availability metrics against the fault window.
    pub stats: FaultStats,
}

/// Run the service under the plan: the [`FaultProxy`] wraps every per-peer
/// mailbox, crash windows are scheduled from the plan, durability (WAL) is
/// always on so crashed nodes can recover, and the transaction timelines
/// are bucketed against the fault window afterwards.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    assert_eq!(cfg.plan.n, cfg.service.n, "plan and service disagree on n");
    let unit = cfg.service.unit;
    let spec = FaultSpec {
        policy: cfg
            .plan
            .any()
            .then(|| Arc::new(FaultProxy::new(cfg.plan.clone(), unit)) as _),
        crashes: cfg.plan.crash_windows(unit),
        durable: true,
    };
    let service = run_service_faulted(&cfg.service, &spec);
    let (from_u, until_u) = cfg.plan.fault_window_units().unwrap_or((0, 0));
    let scale = |u: u64| {
        unit.checked_mul(u32::try_from(u).unwrap_or(u32::MAX))
            .unwrap_or(Duration::MAX)
    };
    let stats = FaultStats::measure(
        &service.txn_events,
        scale(from_u),
        scale(until_u),
        service.elapsed,
        cfg.service.park_retries.max(1),
    );
    ChaosOutcome { service, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        id: u64,
        submitted_ms: u64,
        decided_ms: Option<u64>,
        committed: Option<bool>,
        retries: u32,
    ) -> TxnEvent {
        TxnEvent {
            id,
            client: 0,
            participants: 3,
            submitted_at: Duration::from_millis(submitted_ms),
            decided_at: decided_ms.map(Duration::from_millis),
            committed,
            retries,
            first_protocol_at: None,
            votes_held_at: None,
            journaled_at: None,
        }
    }

    #[test]
    fn stats_bucket_the_window_correctly() {
        let events = vec![
            // Before the fault, committed.
            ev(1, 10, Some(20), Some(true), 0),
            // Submitted and committed inside the window.
            ev(2, 120, Some(140), Some(true), 0),
            // Submitted inside, aborted inside: decided but not committed.
            ev(3, 150, Some(180), Some(false), 0),
            // Submitted inside, blocked until after the heal.
            ev(4, 160, Some(450), Some(false), 5),
            // Never resolved.
            ev(5, 170, None, None, 9),
        ];
        let s = FaultStats::measure(
            &events,
            Duration::from_millis(100),
            Duration::from_millis(300),
            Duration::from_millis(600),
            2,
        );
        assert_eq!(s.submitted_during_fault, 4);
        assert_eq!(s.decided_during_fault, 2);
        assert_eq!(s.committed_during_fault, 1);
        assert_eq!(s.committed_after_heal, 0);
        assert_eq!(s.blocked, 2);
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.time_to_unblock, Duration::from_millis(150));
        assert!((s.availability_pct - 50.0).abs() < 1e-9);
        assert!(s.ops_during_fault > 0.0);
    }

    #[test]
    fn empty_window_reads_fully_available() {
        let s = FaultStats::measure(
            &[ev(1, 10, Some(20), Some(true), 0)],
            Duration::from_millis(500),
            Duration::from_millis(600),
            Duration::from_millis(700),
            2,
        );
        assert_eq!(s.submitted_during_fault, 0);
        assert_eq!(s.availability_pct, 100.0);
    }
}
