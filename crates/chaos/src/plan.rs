//! The shared fault vocabulary: a seeded, reproducible [`ChaosPlan`] whose
//! schedule is written in **virtual delay units**, so the same plan drives
//! the discrete-event simulator (via [`ChaosPlan::to_fault_plan`] /
//! [`ChaosPlan::from_fault_plan`]) and the live service (via
//! [`ChaosPlan::crash_windows`] + `FaultProxy`).

use std::time::Duration;

use ac_cluster::CrashWindow;
use ac_net::{Crash, FaultPlan};
use ac_sim::{Time, U};

/// A scheduled crash (and optional restart) of one node, in virtual units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// The node dies at this virtual time.
    pub down_units: u64,
    /// The node restarts (and recovers from its WAL) at this virtual time;
    /// `None` = stays dead for the rest of the run.
    pub up_units: Option<u64>,
}

/// A network partition window: messages crossing the `group` boundary are
/// dropped while the window is open.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// One side of the cut (the complement is the other side).
    pub group: Vec<usize>,
    /// Window start, virtual units.
    pub from_units: u64,
    /// Window end (heal), virtual units.
    pub until_units: u64,
    /// `true`: both directions are cut. `false`: **asymmetric** — only
    /// messages *from* the group to the outside are dropped; replies still
    /// flow in (the half-open failure mode real networks produce).
    pub symmetric: bool,
}

/// An i.i.d. message-loss window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LossSpec {
    /// Window start, virtual units.
    pub from_units: u64,
    /// Window end, virtual units.
    pub until_units: u64,
    /// Drop probability in permille (100 = the classic "lossy 10%").
    pub permille: u16,
}

/// An extra-latency window: every envelope is held back this much longer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelaySpec {
    /// Window start, virtual units.
    pub from_units: u64,
    /// Window end, virtual units.
    pub until_units: u64,
    /// Extra delay added to each delivery, in virtual units.
    pub extra_units: u64,
}

/// A complete, seeded fault schedule for one run.
#[derive(Clone, Debug, Default)]
pub struct ChaosPlan {
    /// Number of nodes the plan is sized for.
    pub n: usize,
    /// Seed of the deterministic drop lottery (same plan + same message
    /// sequence ⇒ same fates).
    pub seed: u64,
    /// Per-node crash schedule.
    pub crashes: Vec<Option<CrashSpec>>,
    /// Partition windows.
    pub partitions: Vec<PartitionSpec>,
    /// Loss windows.
    pub losses: Vec<LossSpec>,
    /// Extra-latency windows.
    pub delays: Vec<DelaySpec>,
}

impl ChaosPlan {
    /// A failure-free plan for `n` nodes.
    pub fn none(n: usize) -> ChaosPlan {
        ChaosPlan {
            n,
            seed: 1,
            crashes: vec![None; n],
            partitions: Vec::new(),
            losses: Vec::new(),
            delays: Vec::new(),
        }
    }

    /// Set the drop-lottery seed (builder style).
    pub fn seed(mut self, seed: u64) -> ChaosPlan {
        self.seed = seed;
        self
    }

    /// Crash node `p` at `down` units, restarting at `up` (builder style).
    pub fn crash(mut self, p: usize, down: u64, up: Option<u64>) -> ChaosPlan {
        assert!(p < self.n, "node id out of range");
        if let Some(u) = up {
            assert!(u > down, "restart must follow the crash");
        }
        self.crashes[p] = Some(CrashSpec {
            down_units: down,
            up_units: up,
        });
        self
    }

    /// Cut `group` off from the rest during `[from, until)` units (builder
    /// style); see [`PartitionSpec::symmetric`].
    pub fn partition(
        mut self,
        group: Vec<usize>,
        from: u64,
        until: u64,
        symmetric: bool,
    ) -> ChaosPlan {
        assert!(until > from);
        assert!(group.iter().all(|&p| p < self.n));
        self.partitions.push(PartitionSpec {
            group,
            from_units: from,
            until_units: until,
            symmetric,
        });
        self
    }

    /// Drop each message with probability `permille`/1000 during
    /// `[from, until)` units (builder style).
    pub fn lossy(mut self, from: u64, until: u64, permille: u16) -> ChaosPlan {
        assert!(until > from && permille <= 1000);
        self.losses.push(LossSpec {
            from_units: from,
            until_units: until,
            permille,
        });
        self
    }

    /// Add `extra` units of latency to every delivery during `[from,
    /// until)` units (builder style).
    pub fn extra_delay(mut self, from: u64, until: u64, extra: u64) -> ChaosPlan {
        assert!(until > from && extra > 0);
        self.delays.push(DelaySpec {
            from_units: from,
            until_units: until,
            extra_units: extra,
        });
        self
    }

    /// Whether the plan injects any fault at all.
    pub fn any(&self) -> bool {
        self.crashes.iter().any(|c| c.is_some())
            || !self.partitions.is_empty()
            || !self.losses.is_empty()
            || !self.delays.is_empty()
    }

    /// Import the simulator's crash schedule: each [`Crash`] becomes a
    /// crash with no restart at the same virtual time. The simulator's
    /// partial-broadcast refinement (`sends_at_crash_time`) has no live
    /// equivalent — a live node flushes whole batches — so it maps to a
    /// plain crash at the same instant (the *coarser* failure, which any
    /// correct protocol must tolerate anyway).
    pub fn from_fault_plan(plan: &FaultPlan) -> ChaosPlan {
        let mut out = ChaosPlan::none(plan.n());
        for p in 0..plan.n() {
            if let Some(c) = plan.crash_of(p) {
                out.crashes[p] = Some(CrashSpec {
                    down_units: c.at.ticks() / U,
                    up_units: None,
                });
            }
        }
        out
    }

    /// Export to the simulator's [`FaultPlan`]. Only crash-shaped plans
    /// convert: the simulator's network never loses or partitions (its
    /// model is eventual synchrony), and it has no restart — a plan using
    /// those is rejected with an explanation.
    pub fn to_fault_plan(&self) -> Result<FaultPlan, String> {
        if !self.partitions.is_empty() || !self.losses.is_empty() || !self.delays.is_empty() {
            return Err(
                "only crash schedules convert to ac_net::FaultPlan (the simulator's \
                 channels neither lose nor partition)"
                    .into(),
            );
        }
        let mut plan = FaultPlan::none(self.n);
        for (p, c) in self.crashes.iter().enumerate() {
            if let Some(c) = c {
                if c.up_units.is_some() {
                    return Err(format!(
                        "node {p} restarts at {:?} units: FaultPlan cannot express recovery",
                        c.up_units
                    ));
                }
                plan = plan.with_crash(p, Crash::at(Time::units(c.down_units)));
            }
        }
        Ok(plan)
    }

    /// The live service's per-node crash windows for a given unit length.
    pub fn crash_windows(&self, unit: Duration) -> Vec<Option<CrashWindow>> {
        self.crashes
            .iter()
            .map(|c| {
                c.map(|c| CrashWindow {
                    down_after: unit * u32::try_from(c.down_units).unwrap_or(u32::MAX),
                    up_after: c
                        .up_units
                        .map(|u| unit * u32::try_from(u).unwrap_or(u32::MAX)),
                })
            })
            .collect()
    }

    /// The fault window `[from, until)` in virtual units: the earliest
    /// injection and the latest heal across every spec. A crash without a
    /// restart never heals — its end is `u64::MAX` (the caller clamps to
    /// the run length). `None` if the plan is failure-free.
    pub fn fault_window_units(&self) -> Option<(u64, u64)> {
        let mut from = u64::MAX;
        let mut until = 0u64;
        for c in self.crashes.iter().flatten() {
            from = from.min(c.down_units);
            until = until.max(c.up_units.unwrap_or(u64::MAX));
        }
        for p in &self.partitions {
            from = from.min(p.from_units);
            until = until.max(p.until_units);
        }
        for l in &self.losses {
            from = from.min(l.from_units);
            until = until.max(l.until_units);
        }
        for d in &self.delays {
            from = from.min(d.from_units);
            until = until.max(d.until_units);
        }
        (from != u64::MAX).then_some((from, until))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_round_trips_for_crash_schedules() {
        let sim = FaultPlan::none(4)
            .with_crash(1, Crash::initially())
            .with_crash(3, Crash::at(Time::units(2)));
        let chaos = ChaosPlan::from_fault_plan(&sim);
        assert_eq!(
            chaos.crashes[1],
            Some(CrashSpec {
                down_units: 0,
                up_units: None
            })
        );
        assert_eq!(chaos.crashes[3].unwrap().down_units, 2);
        let back = chaos.to_fault_plan().expect("crash-only plans convert");
        assert_eq!(back.crashed_ids(), sim.crashed_ids());
        for p in 0..4 {
            assert_eq!(
                back.crash_of(p).map(|c| c.at),
                sim.crash_of(p).map(|c| c.at)
            );
        }
    }

    #[test]
    fn richer_plans_refuse_simulator_export() {
        let plan = ChaosPlan::none(3).lossy(0, 10, 100);
        assert!(plan.to_fault_plan().is_err());
        let plan = ChaosPlan::none(3).crash(0, 5, Some(9));
        let err = plan.to_fault_plan().unwrap_err();
        assert!(err.contains("recovery"), "{err}");
    }

    #[test]
    fn fault_window_spans_all_specs() {
        let plan = ChaosPlan::none(4)
            .crash(1, 10, Some(30))
            .partition(vec![0, 1], 5, 25, true)
            .lossy(12, 40, 100);
        assert_eq!(plan.fault_window_units(), Some((5, 40)));
        assert_eq!(ChaosPlan::none(2).fault_window_units(), None);
        // A crash without restart never heals.
        let forever = ChaosPlan::none(2).crash(0, 3, None);
        assert_eq!(forever.fault_window_units(), Some((3, u64::MAX)));
    }

    #[test]
    fn crash_windows_scale_by_unit() {
        let plan = ChaosPlan::none(2).crash(1, 4, Some(10));
        let w = plan.crash_windows(Duration::from_millis(5));
        assert!(w[0].is_none());
        let w1 = w[1].unwrap();
        assert_eq!(w1.down_after, Duration::from_millis(20));
        assert_eq!(w1.up_after, Some(Duration::from_millis(50)));
    }
}
