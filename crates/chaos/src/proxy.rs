//! [`FaultProxy`] — the mailbox-wrapping fault layer: an
//! [`ac_cluster::NetPolicy`] that applies a [`ChaosPlan`] to every
//! node-to-node envelope the live service flushes.
//!
//! Determinism: the service hands the proxy a per-`(from, to)` monotone
//! sequence number, so the drop lottery is a pure hash of
//! `(seed, from, to, seq)` — replaying the same message sequence under the
//! same plan reproduces the same fates, with no interior mutability and no
//! cross-thread coordination.

use std::time::Duration;

use ac_cluster::{Fate, NetPolicy};
use ac_sim::ProcessId;

use crate::plan::ChaosPlan;

/// SplitMix64 — the same dependency-free mixer the vendored `rand` uses.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, stateless per-envelope fault policy derived from a
/// [`ChaosPlan`].
pub struct FaultProxy {
    plan: ChaosPlan,
    unit: Duration,
}

impl FaultProxy {
    /// Wrap `plan`, mapping its virtual-unit windows onto wall time with
    /// `unit` per delay unit.
    pub fn new(plan: ChaosPlan, unit: Duration) -> FaultProxy {
        FaultProxy { plan, unit }
    }

    /// The plan in force.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    fn units_of(&self, elapsed: Duration) -> u64 {
        (elapsed.as_nanos() / self.unit.as_nanos().max(1)) as u64
    }
}

impl NetPolicy for FaultProxy {
    fn fate(&self, from: ProcessId, to: ProcessId, elapsed: Duration, seq: u64) -> Fate {
        let t = self.units_of(elapsed);
        for p in &self.plan.partitions {
            if t < p.from_units || t >= p.until_units {
                continue;
            }
            let from_in = p.group.contains(&from);
            let to_in = p.group.contains(&to);
            // Symmetric: the cut severs both directions. Asymmetric: only
            // traffic *leaving* the group is lost (half-open link).
            if from_in != to_in && (p.symmetric || from_in) {
                return Fate::Drop;
            }
        }
        for l in &self.plan.losses {
            if t >= l.from_units && t < l.until_units {
                let h = splitmix(
                    self.plan
                        .seed
                        .wrapping_add((from as u64) << 40)
                        .wrapping_add((to as u64) << 20)
                        .wrapping_add(seq),
                );
                if h % 1000 < u64::from(l.permille) {
                    return Fate::Drop;
                }
            }
        }
        for d in &self.plan.delays {
            if t >= d.from_units && t < d.until_units {
                return Fate::Delay(self.unit * u32::try_from(d.extra_units).unwrap_or(u32::MAX));
            }
        }
        Fate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT: Duration = Duration::from_millis(5);

    fn at_units(u: u64) -> Duration {
        UNIT * u32::try_from(u).unwrap()
    }

    #[test]
    fn symmetric_partition_cuts_both_directions_only_in_window() {
        let proxy = FaultProxy::new(ChaosPlan::none(4).partition(vec![0, 1], 10, 20, true), UNIT);
        assert_eq!(proxy.fate(0, 2, at_units(12), 0), Fate::Drop);
        assert_eq!(proxy.fate(2, 0, at_units(12), 0), Fate::Drop);
        // Within a side: flows.
        assert_eq!(proxy.fate(0, 1, at_units(12), 0), Fate::Deliver);
        assert_eq!(proxy.fate(2, 3, at_units(12), 0), Fate::Deliver);
        // Outside the window: flows.
        assert_eq!(proxy.fate(0, 2, at_units(9), 0), Fate::Deliver);
        assert_eq!(proxy.fate(0, 2, at_units(20), 0), Fate::Deliver);
    }

    #[test]
    fn asymmetric_partition_cuts_only_outbound() {
        let proxy = FaultProxy::new(
            ChaosPlan::none(4).partition(vec![0, 1], 0, 100, false),
            UNIT,
        );
        assert_eq!(proxy.fate(0, 3, at_units(5), 0), Fate::Drop);
        assert_eq!(proxy.fate(3, 0, at_units(5), 0), Fate::Deliver);
    }

    #[test]
    fn drop_lottery_is_deterministic_and_roughly_calibrated() {
        let plan = ChaosPlan::none(2).seed(7).lossy(0, 1000, 100);
        let a = FaultProxy::new(plan.clone(), UNIT);
        let b = FaultProxy::new(plan, UNIT);
        let mut drops = 0;
        for seq in 0..2000u64 {
            let fa = a.fate(0, 1, at_units(1), seq);
            assert_eq!(fa, b.fate(0, 1, at_units(1), seq), "seq {seq}");
            if fa == Fate::Drop {
                drops += 1;
            }
        }
        // 10% nominal; allow generous slack — the property under test is
        // calibration, not the exact mix.
        assert!(
            (100..=320).contains(&drops),
            "10% of 2000 ≈ 200, got {drops}"
        );
        // A different seed reshuffles fates.
        let c = FaultProxy::new(ChaosPlan::none(2).seed(8).lossy(0, 1000, 100), UNIT);
        assert!(
            (0..2000u64).any(|s| a.fate(0, 1, at_units(1), s) != c.fate(0, 1, at_units(1), s)),
            "seeds must matter"
        );
    }

    #[test]
    fn extra_delay_windows_stretch_latency() {
        let proxy = FaultProxy::new(ChaosPlan::none(2).extra_delay(3, 6, 4), UNIT);
        assert_eq!(
            proxy.fate(0, 1, at_units(4), 0),
            Fate::Delay(Duration::from_millis(20))
        );
        assert_eq!(proxy.fate(0, 1, at_units(7), 0), Fate::Deliver);
    }
}
