//! # ac-chaos — deterministic fault injection and recovery measurement
//!
//! The paper's subject is how fast commit can go *while tolerating `f`
//! failures*; this crate makes the failure modes measurable in wall-clock
//! on the live service (`ac-cluster`), the way "Distributed Transactions:
//! Dissecting the Nightmare" argues commit protocols actually
//! differentiate:
//!
//! * [`plan`] — the shared fault vocabulary: a seeded [`ChaosPlan`]
//!   (crash/restart schedules, symmetric/asymmetric partitions, i.i.d.
//!   loss, extra latency) written in virtual delay units, convertible
//!   to/from the simulator's [`ac_net::FaultPlan`] so one schedule drives
//!   both worlds;
//! * [`proxy`] — [`FaultProxy`], the [`ac_cluster::NetPolicy`] wrapping
//!   every per-peer mailbox with a deterministic per-envelope fate
//!   (deliver / drop / delay);
//! * [`run`] — [`run_chaos`]: execute a service run under a plan (WAL
//!   durability on, crash windows scheduled) and bucket the per-transaction
//!   timelines into [`FaultStats`]: availability and committed-ops/s during
//!   the fault vs after the heal, blocked transactions and time-to-unblock.
//!
//! The headline result this layer shows live: 2PC *blocks* on a
//! coordinator crash (stalled transactions until restart + recovery) while
//! Paxos-Commit's and INBAC's f-tolerant paths keep deciding — and keep
//! **committing** the transactions whose participants stayed up.

#![deny(missing_docs)]

pub mod plan;
pub mod proxy;
pub mod run;

pub use plan::{ChaosPlan, CrashSpec, DelaySpec, LossSpec, PartitionSpec};
pub use proxy::FaultProxy;
pub use run::{run_chaos, ChaosConfig, ChaosOutcome, FaultStats};
