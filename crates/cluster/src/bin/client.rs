//! `ac-client --spec FILE [--obs-out PATH]` — the load-driving side of a
//! real loopback cluster.
//!
//! Runs the spec's client workload against the `ac-node` processes
//! listed in the spec, collects every node's observability export (echo
//! round trips for clock alignment, then an `ObsPull`), shuts the nodes
//! down, and prints one audit line:
//!
//! ```text
//! client audit txns=50 committed=47 aborted=3 stalled=0 retries=0 split=0
//! ```
//!
//! With `--obs-out PATH` the collected cluster dump (per-node flight
//! recorders, histograms, transport counters, clock alignments, and the
//! client-side transaction record) is written to PATH in the binary
//! dump format `repro trace` and `repro proc` consume.
//!
//! Exits nonzero if any transaction stalled or observed a split
//! decision — both violate the service's safety/liveness contract on a
//! healthy cluster.

use std::process::exit;

use ac_cluster::spec::ClusterSpec;

fn usage() -> ! {
    eprintln!("usage: ac-client --spec FILE [--obs-out PATH]");
    exit(2)
}

fn main() {
    let mut spec_path = None;
    let mut obs_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(args.next().unwrap_or_else(|| usage())),
            "--obs-out" => obs_out = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let spec_path = spec_path.unwrap_or_else(|| usage());
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ac-client: cannot read {spec_path}: {e}");
            exit(2);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ac-client: bad spec {spec_path}: {e}");
            exit(2);
        }
    };
    let (summary, obs) = ac_cluster::proc::run_client(&spec);
    if let Some(path) = obs_out {
        let dump = obs.into_dump(&spec);
        if dump.exports.len() < spec.n() {
            eprintln!(
                "ac-client: collected {}/{} node exports (unreachable nodes degrade coverage)",
                dump.exports.len(),
                spec.n()
            );
        }
        if let Err(e) = std::fs::write(&path, dump.to_bytes()) {
            eprintln!("ac-client: cannot write {path}: {e}");
            exit(2);
        }
    }
    println!("{}", summary.render());
    if summary.stalled > 0 || summary.split > 0 {
        exit(1);
    }
}
