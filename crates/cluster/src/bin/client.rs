//! `ac-client --spec FILE` — the load-driving side of a real loopback
//! cluster.
//!
//! Runs the spec's closed-loop client workload against the `ac-node`
//! processes listed in the spec, shuts the nodes down when the workload
//! finishes, and prints one audit line:
//!
//! ```text
//! client audit txns=50 committed=47 aborted=3 stalled=0 retries=0 split=0
//! ```
//!
//! Exits nonzero if any transaction stalled or observed a split
//! decision — both violate the service's safety/liveness contract on a
//! healthy cluster.

use std::process::exit;

use ac_cluster::spec::ClusterSpec;

fn usage() -> ! {
    eprintln!("usage: ac-client --spec FILE");
    exit(2)
}

fn main() {
    let mut spec_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let spec_path = spec_path.unwrap_or_else(|| usage());
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ac-client: cannot read {spec_path}: {e}");
            exit(2);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ac-client: bad spec {spec_path}: {e}");
            exit(2);
        }
    };
    let summary = ac_cluster::proc::run_client(&spec);
    println!("{}", summary.render());
    if summary.stalled > 0 || summary.split > 0 {
        exit(1);
    }
}
