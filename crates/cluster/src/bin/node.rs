//! `ac-node --spec FILE --id N` — one node of a real loopback cluster.
//!
//! Binds the address the spec assigns to node `N`, serves protocol and
//! client traffic over TCP until the client sends `Shutdown`, then
//! prints one audit line:
//!
//! ```text
//! node 2 audit total=0 locked=0 decided=50 orphaned=0
//! ```

use std::process::exit;

use ac_cluster::spec::ClusterSpec;

fn usage() -> ! {
    eprintln!("usage: ac-node --spec FILE --id N");
    exit(2)
}

fn main() {
    let mut spec_path = None;
    let mut id = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(args.next().unwrap_or_else(|| usage())),
            "--id" => {
                id = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let (spec_path, id) = match (spec_path, id) {
        (Some(s), Some(i)) => (s, i),
        _ => usage(),
    };
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ac-node: cannot read {spec_path}: {e}");
            exit(2);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ac-node: bad spec {spec_path}: {e}");
            exit(2);
        }
    };
    if id >= spec.n() {
        eprintln!(
            "ac-node: --id {id} out of range (spec has {} nodes)",
            spec.n()
        );
        exit(2);
    }
    let summary = ac_cluster::proc::run_node(&spec, id);
    println!("{}", summary.render());
}
