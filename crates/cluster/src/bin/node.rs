//! `ac-node --spec FILE --id N [--metrics PORT]` — one node of a real
//! loopback cluster.
//!
//! Binds the address the spec assigns to node `N`, serves protocol and
//! client traffic over TCP until the client sends `Shutdown`, then
//! prints one audit line:
//!
//! ```text
//! node 2 audit total=0 locked=0 decided=50 orphaned=0
//! ```
//!
//! With `--metrics PORT` the node also listens on PORT — on the same
//! host/address family the spec binds the node itself to — and answers
//! every connection with a Prometheus text exposition of its live stage
//! meters (`ac_stage_count` / `ac_stage_nanos_total`) and transport
//! counters (`ac_net_*`), all labelled `node="N"`, so `curl` or a
//! scraper can watch where the node's time and bytes go while the run
//! is in flight.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::process::exit;
use std::sync::Arc;

use ac_cluster::spec::ClusterSpec;
use ac_obs::{NetMeters, ObsMeters};

fn usage() -> ! {
    eprintln!("usage: ac-node --spec FILE --id N [--metrics PORT]");
    exit(2)
}

/// Serve the meter registries as Prometheus text on `addr`, one
/// short-lived connection at a time. Runs until the process exits — the
/// node's audit line, not this endpoint, is the run's final word.
fn serve_metrics(addr: SocketAddr, id: usize, meters: Arc<ObsMeters>, net: Arc<NetMeters>) {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ac-node: cannot bind metrics address {addr}: {e}");
            exit(2);
        }
    };
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain whatever request line arrived; the response is the
            // same regardless (there is only one resource to GET).
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let labels = format!("node=\"{id}\"");
            let body = format!(
                "{}{}",
                meters.render_prometheus(&labels),
                net.render_prometheus(&labels)
            );
            let resp = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(resp.as_bytes());
        }
    });
}

fn main() {
    let mut spec_path = None;
    let mut id = None;
    let mut metrics_port: Option<u16> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spec" => spec_path = Some(args.next().unwrap_or_else(|| usage())),
            "--id" => {
                id = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--metrics" => {
                metrics_port = Some(
                    args.next()
                        .and_then(|v| v.parse::<u16>().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let (spec_path, id) = match (spec_path, id) {
        (Some(s), Some(i)) => (s, i),
        _ => usage(),
    };
    let text = match std::fs::read_to_string(&spec_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ac-node: cannot read {spec_path}: {e}");
            exit(2);
        }
    };
    let spec = match ClusterSpec::parse(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ac-node: bad spec {spec_path}: {e}");
            exit(2);
        }
    };
    if id >= spec.n() {
        eprintln!(
            "ac-node: --id {id} out of range (spec has {} nodes)",
            spec.n()
        );
        exit(2);
    }
    let shared = metrics_port.map(|port| {
        let meters = Arc::new(ObsMeters::new());
        let net = Arc::new(NetMeters::new(spec.n()));
        serve_metrics(
            spec.metrics_addr(id, port),
            id,
            Arc::clone(&meters),
            Arc::clone(&net),
        );
        (meters, net)
    });
    let (meters, net) = match shared {
        Some((m, n)) => (Some(m), Some(n)),
        None => (None, None),
    };
    let summary = ac_cluster::proc::run_node(&spec, id, meters, net);
    println!("{}", summary.render());
}
