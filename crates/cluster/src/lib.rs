//! # ac-cluster — the live in-process transaction service
//!
//! `ac-txn::Cluster` pushes transactions one-at-a-time through the
//! discrete-event simulator and reports latency in *message delays*. This
//! crate answers the paper's question — how fast can a distributed
//! transaction commit? — the way systems papers do: **many concurrent
//! commits over real channels**, measured in wall-clock throughput and
//! tail latency.
//!
//! * [`service`] — `n` long-lived node threads, each owning one
//!   [`ac_txn::Shard`] plus an [`ac_runtime::NodeLoop`] demultiplexer
//!   running many concurrent protocol instances (messages travel as
//!   `(TxnId, Msg)` envelopes over crossbeam channels, scoped to each
//!   transaction's participant shards), and a closed-loop load generator
//!   of `c` client threads driving `ac-txn` workloads end-to-end:
//!   prepare/vote at the shards, one live protocol run per transaction
//!   (any [`ac_commit::protocols::ProtocolKind`]), apply/release, with a
//!   post-run safety audit. Since ISSUE-5 the service is also the
//!   fault-injection substrate: [`run_service_faulted`] accepts a
//!   [`FaultSpec`] (a [`NetPolicy`] deciding per-envelope [`Fate`]s plus
//!   per-node [`CrashWindow`]s), nodes write-ahead-log prepares/decisions
//!   to [`ac_txn::Wal`] and recover from it on restart, and clients use
//!   bounded, retrying reply waits instead of blocking on dead nodes.
//!
//! Latency reporting uses `ac-obs`: the log-bucketed
//! [`LatencyHistogram`] (p50/p90/p99/p99.9/max, exact merge semantics,
//! re-exported here for compatibility), per-stage meters and the per-txn
//! flight recorder every node thread carries (see
//! [`ServiceOutcome::attribution`](service::ServiceOutcome)).

#![deny(missing_docs)]

pub mod codec;
pub mod inline;
pub mod proc;
pub mod service;
pub mod spec;
pub mod transport;

pub use ac_obs::{
    Attribution, LatencyHistogram, ObsMeters, Stage, StageHistograms, TxnTimeline,
    ATTRIBUTION_STAGES,
};
pub use codec::{AnyFrame, FrameDecoder, MAX_FRAME};
pub use inline::InlineVec;
pub use service::{
    participants_of, run_service, run_service_faulted, CrashWindow, Done, Fate, FaultSpec,
    NetPolicy, NodeRecord, ServiceConfig, ServiceOutcome, ToNode, TransportKind, TxnEvent,
    ORPHAN_CAP,
};
pub use spec::ClusterSpec;
pub use transport::{ChannelTransport, ClientRegistry, TcpNode, TcpTransport, Transport};
