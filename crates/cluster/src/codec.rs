//! Length-prefixed framing for service envelopes crossing a socket.
//!
//! ## Frame format
//!
//! ```text
//! ┌────────────┬──────────────────────────────┐
//! │ len: u32 LE│ body (len bytes)             │
//! └────────────┴──────────────────────────────┘
//! body = tag: u8, then the variant's fields in ac_sim::wire encoding:
//!   0  Begin    txn: Transaction, client: u64, retry: bool
//!   1  Net      txn: u64, from: u64, msg: M
//!   2  StatusQ  txn: u64, from: u64
//!   3  StatusA  txn: u64, value: u64
//!   4  End      txn: u64
//!   5  Shutdown (no fields)
//!   6  Done     txn: u64, node: u64, decision: u64
//!   7  Hello    client: u64
//!   8  ObsPull  client: u64
//!   9  EchoReq  seq: u32, t0_nanos: u64
//!  10  EchoResp seq: u32, t0_nanos: u64, node: u32, node_nanos: u64
//!  11  ObsDump  node: u32, export: ObsExport
//! ```
//!
//! One tag space covers both directions: tags 0–5 and 8 are the node
//! inbox alphabet ([`crate::service::ToNode`], including the
//! WAL-recovery `StatusQ`/`StatusA` traffic and the observability
//! collector's `ObsPull`), tag 6 is the node→client decision report and
//! tag 7 is the client's connection handshake (a client announces its
//! id so the node can route `Done` frames back down the same
//! connection). Tags 9–11 are the cross-process tracing frames: a
//! collector's clock-echo round trip (answered inline by the node's
//! reader thread, off the node loop, so the echo measures the network
//! and not the inbox backlog) and the node's observability export
//! answering an `ObsPull`. A receiver ignores frames that make no sense
//! for its role.
//!
//! ## Decoding partial reads
//!
//! [`FrameDecoder`] accumulates arbitrary byte chunks (1-byte feeds,
//! frames split across reads, several frames per read) and yields
//! complete frames. It never panics on garbage: an implausible length
//! prefix (> [`MAX_FRAME`]) poisons the stream (the frame boundary is
//! unknowable, so the connection must be dropped), while a well-framed
//! but malformed body is reported as an error and the decoder
//! **resynchronizes at the next length prefix** — the length field is
//! what makes resync possible.

use std::sync::Arc;

use ac_obs::ObsExport;
use ac_sim::{Wire, WireError};
use ac_txn::Transaction;

use crate::service::{Done, ToNode};

/// Sanity cap on one frame's body length. No envelope in the suite comes
/// near this; a longer prefix is treated as stream corruption.
pub const MAX_FRAME: usize = 1 << 24;

/// Anything that can arrive on a service socket: a node-inbox envelope,
/// a decision report, a client handshake, or the cross-process tracing
/// traffic (clock echoes and observability dumps).
#[derive(Debug)]
pub enum AnyFrame<M> {
    /// A node-inbox envelope (tags 0–5, 8).
    Node(ToNode<M>),
    /// A node→client decision report (tag 6).
    Done(Done),
    /// A client announcing its id on a fresh connection (tag 7).
    Hello {
        /// The client id.
        client: usize,
    },
    /// A collector's clock-echo probe (tag 9), answered inline by the
    /// receiving node's reader thread.
    EchoReq {
        /// Collector-chosen sequence number, echoed back verbatim.
        seq: u32,
        /// Collector clock at send, nanoseconds past its epoch (echoed
        /// back verbatim so the collector needs no request table).
        t0_nanos: u64,
    },
    /// The node's echo answer (tag 10).
    EchoResp {
        /// The probe's sequence number.
        seq: u32,
        /// The probe's send stamp, echoed.
        t0_nanos: u64,
        /// The answering node.
        node: u32,
        /// Node clock at answer, nanoseconds past *its* epoch — the
        /// `t_node` of the NTP-style offset estimate.
        node_nanos: u64,
    },
    /// A node's observability export answering an `ObsPull` (tag 11).
    ObsDump {
        /// The exporting node.
        node: u32,
        /// The export payload.
        export: ObsExport,
    },
}

/// Append the frame (length prefix + body) to `out`.
pub fn write_frame<M: Wire>(frame: &AnyFrame<M>, out: &mut Vec<u8>) {
    let start = out.len();
    out.extend_from_slice(&[0; 4]); // length, patched below
    match frame {
        AnyFrame::Node(env) => match env {
            ToNode::Begin { txn, client, retry } => {
                out.push(0);
                txn.encode(out);
                client.encode(out);
                retry.encode(out);
            }
            ToNode::Net { txn, from, msg } => {
                out.push(1);
                txn.encode(out);
                from.encode(out);
                msg.encode(out);
            }
            ToNode::StatusQ { txn, from } => {
                out.push(2);
                txn.encode(out);
                from.encode(out);
            }
            ToNode::StatusA { txn, value } => {
                out.push(3);
                txn.encode(out);
                value.encode(out);
            }
            ToNode::End { txn } => {
                out.push(4);
                txn.encode(out);
            }
            ToNode::Shutdown => out.push(5),
            ToNode::ObsPull { client } => {
                out.push(8);
                client.encode(out);
            }
        },
        AnyFrame::Done(d) => {
            out.push(6);
            d.txn.encode(out);
            d.node.encode(out);
            d.decision.encode(out);
        }
        AnyFrame::Hello { client } => {
            out.push(7);
            client.encode(out);
        }
        AnyFrame::EchoReq { seq, t0_nanos } => {
            out.push(9);
            seq.encode(out);
            t0_nanos.encode(out);
        }
        AnyFrame::EchoResp {
            seq,
            t0_nanos,
            node,
            node_nanos,
        } => {
            out.push(10);
            seq.encode(out);
            t0_nanos.encode(out);
            node.encode(out);
            node_nanos.encode(out);
        }
        AnyFrame::ObsDump { node, export } => {
            out.push(11);
            node.encode(out);
            export.encode(out);
        }
    }
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Decode one frame body (everything after the length prefix).
pub fn decode_body<M: Wire>(mut body: &[u8]) -> Result<AnyFrame<M>, WireError> {
    let buf = &mut body;
    let frame = match u8::decode(buf)? {
        0 => AnyFrame::Node(ToNode::Begin {
            txn: Arc::new(Transaction::decode(buf)?),
            client: usize::decode(buf)?,
            retry: bool::decode(buf)?,
        }),
        1 => AnyFrame::Node(ToNode::Net {
            txn: u64::decode(buf)?,
            from: usize::decode(buf)?,
            msg: M::decode(buf)?,
        }),
        2 => AnyFrame::Node(ToNode::StatusQ {
            txn: u64::decode(buf)?,
            from: usize::decode(buf)?,
        }),
        3 => AnyFrame::Node(ToNode::StatusA {
            txn: u64::decode(buf)?,
            value: u64::decode(buf)?,
        }),
        4 => AnyFrame::Node(ToNode::End {
            txn: u64::decode(buf)?,
        }),
        5 => AnyFrame::Node(ToNode::Shutdown),
        6 => AnyFrame::Done(Done {
            txn: u64::decode(buf)?,
            node: usize::decode(buf)?,
            decision: u64::decode(buf)?,
        }),
        7 => AnyFrame::Hello {
            client: usize::decode(buf)?,
        },
        8 => AnyFrame::Node(ToNode::ObsPull {
            client: usize::decode(buf)?,
        }),
        9 => AnyFrame::EchoReq {
            seq: u32::decode(buf)?,
            t0_nanos: u64::decode(buf)?,
        },
        10 => AnyFrame::EchoResp {
            seq: u32::decode(buf)?,
            t0_nanos: u64::decode(buf)?,
            node: u32::decode(buf)?,
            node_nanos: u64::decode(buf)?,
        },
        11 => AnyFrame::ObsDump {
            node: u32::decode(buf)?,
            export: ObsExport::decode(buf)?,
        },
        _ => return Err(WireError::Invalid("frame tag")),
    };
    if !buf.is_empty() {
        return Err(WireError::Invalid("trailing bytes in frame body"));
    }
    Ok(frame)
}

/// Incremental frame decoder over an arbitrary chunking of the byte
/// stream (see the module docs for the error model).
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    pos: usize,
    /// Set when a length prefix was implausible: the frame boundary is
    /// lost, so every subsequent call errors until the stream is dropped.
    poisoned: bool,
}

impl FrameDecoder {
    /// A decoder with no buffered bytes.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Feed a chunk of received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        // Compact before growing, so a long-lived connection's buffer
        // stays proportional to one frame, not to total traffic.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Try to extract the next complete frame. `Ok(None)` means more
    /// bytes are needed; `Err` either reports a malformed body (the
    /// decoder has already skipped it and can continue) or a poisoned
    /// stream (every further call errors).
    pub fn next_frame<M: Wire>(&mut self) -> Result<Option<AnyFrame<M>>, WireError> {
        if self.poisoned {
            return Err(WireError::Invalid("frame stream poisoned"));
        }
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            self.poisoned = true;
            return Err(WireError::Invalid("frame length over sanity cap"));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let result = decode_body::<M>(body);
        // Consume the frame whether or not the body parsed: the length
        // prefix fixes the boundary, so a bad body costs one frame, not
        // the connection.
        self.pos += 4 + len;
        result.map(Some)
    }

    /// Bytes buffered but not yet consumed (diagnostics/tests).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the stream is poisoned (frame boundary lost; the
    /// connection should be dropped).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(env: ToNode<u64>) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&AnyFrame::Node(env), &mut out);
        out
    }

    #[test]
    fn one_byte_feeds_reassemble_the_frame() {
        let bytes = frame(ToNode::Net {
            txn: 7,
            from: 2,
            msg: 99,
        });
        let mut dec = FrameDecoder::new();
        for (i, b) in bytes.iter().enumerate() {
            dec.feed(&[*b]);
            let got = dec.next_frame::<u64>().unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "frame complete too early at byte {i}");
            } else {
                match got {
                    Some(AnyFrame::Node(ToNode::Net { txn, from, msg })) => {
                        assert_eq!((txn, from, msg), (7, 2, 99));
                    }
                    other => panic!("wrong frame: {other:?}"),
                }
            }
        }
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn concatenated_frames_all_come_out() {
        let mut bytes = frame(ToNode::End { txn: 1 });
        bytes.extend(frame(ToNode::End { txn: 2 }));
        bytes.extend(frame(ToNode::Shutdown));
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        for want in [1u64, 2] {
            match dec.next_frame::<u64>().unwrap() {
                Some(AnyFrame::Node(ToNode::End { txn })) => assert_eq!(txn, want),
                other => panic!("wrong frame: {other:?}"),
            }
        }
        assert!(matches!(
            dec.next_frame::<u64>().unwrap(),
            Some(AnyFrame::Node(ToNode::Shutdown))
        ));
        assert!(dec.next_frame::<u64>().unwrap().is_none());
    }

    #[test]
    fn bad_body_is_skipped_and_the_stream_resynchronizes() {
        let mut bytes = vec![1, 0, 0, 0, 0xFF]; // len 1, unknown tag
        bytes.extend(frame(ToNode::End { txn: 3 }));
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(dec.next_frame::<u64>().is_err());
        assert!(matches!(
            dec.next_frame::<u64>().unwrap(),
            Some(AnyFrame::Node(ToNode::End { txn: 3 }))
        ));
    }

    #[test]
    fn implausible_length_poisons_the_stream() {
        let mut dec = FrameDecoder::new();
        dec.feed(&u32::MAX.to_le_bytes());
        assert!(dec.next_frame::<u64>().is_err());
        assert!(dec.next_frame::<u64>().is_err(), "stays poisoned");
    }

    #[test]
    fn tracing_frames_round_trip() {
        let mut bytes = frame(ToNode::ObsPull { client: 3 });
        let mut echo_req = Vec::new();
        write_frame::<u64>(
            &AnyFrame::EchoReq {
                seq: 7,
                t0_nanos: 1_234,
            },
            &mut echo_req,
        );
        bytes.extend(echo_req);
        let mut echo_resp = Vec::new();
        write_frame::<u64>(
            &AnyFrame::EchoResp {
                seq: 7,
                t0_nanos: 1_234,
                node: 2,
                node_nanos: 999,
            },
            &mut echo_resp,
        );
        bytes.extend(echo_resp);
        let mut dump = Vec::new();
        write_frame::<u64>(
            &AnyFrame::ObsDump {
                node: 2,
                export: ac_obs::ObsExport::snapshot(2, &ac_obs::NodeObs::new(), None),
            },
            &mut dump,
        );
        bytes.extend(dump);

        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(matches!(
            dec.next_frame::<u64>().unwrap(),
            Some(AnyFrame::Node(ToNode::ObsPull { client: 3 }))
        ));
        assert!(matches!(
            dec.next_frame::<u64>().unwrap(),
            Some(AnyFrame::EchoReq {
                seq: 7,
                t0_nanos: 1_234
            })
        ));
        assert!(matches!(
            dec.next_frame::<u64>().unwrap(),
            Some(AnyFrame::EchoResp {
                seq: 7,
                t0_nanos: 1_234,
                node: 2,
                node_nanos: 999
            })
        ));
        match dec.next_frame::<u64>().unwrap() {
            Some(AnyFrame::ObsDump { node: 2, export }) => {
                assert_eq!(export.node, 2);
                assert_eq!(export.meters.len(), ac_obs::Stage::COUNT);
            }
            other => panic!("wrong frame: {other:?}"),
        }
        assert_eq!(dec.pending(), 0);
    }
}
