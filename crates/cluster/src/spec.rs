//! The cluster-spec file shared by the `ac-node` and `ac-client`
//! binaries: which protocol, how many nodes at which addresses, and the
//! workload the clients drive.
//!
//! The format is deliberately flat — one `key = value` per line, `#`
//! comments, node addresses as indexed entries:
//!
//! ```text
//! # 4-node transfer cluster over loopback
//! protocol = 2PC
//! f = 1
//! unit_ms = 5
//! keys_per_shard = 64
//! clients = 2
//! txns_per_client = 25
//! workload = transfer:5
//! seed = 1
//! node 0 = 127.0.0.1:7100
//! node 1 = 127.0.0.1:7101
//! node 2 = 127.0.0.1:7102
//! node 3 = 127.0.0.1:7103
//! ```
//!
//! `n` is the number of `node I = addr` lines. Workload spellings:
//! `uniform:SPAN`, `skewed:SPAN:THETA`, `transfer:AMOUNT`.

use std::net::SocketAddr;
use std::time::Duration;

use ac_commit::protocols::ProtocolKind;
use ac_txn::workload::Workload;

use crate::service::{ServiceConfig, TransportKind};

/// A parsed cluster-spec file (see the module docs for the format).
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// The commit protocol serving the cluster.
    pub kind: ProtocolKind,
    /// Crash-resilience parameter.
    pub f: usize,
    /// Wall-clock length of one virtual delay unit.
    pub unit: Duration,
    /// Keys per shard.
    pub keys_per_shard: u64,
    /// Closed-loop client threads the `ac-client` process runs.
    pub clients: usize,
    /// Transactions per client.
    pub txns_per_client: usize,
    /// Workload shape.
    pub workload: Workload,
    /// Base seed.
    pub seed: u64,
    /// Open-loop arrival rate in txns/s per client (`None` = closed
    /// loop). Spelled `arrival_rate = 25.0` in the file.
    pub arrival_rate: Option<f64>,
    /// In-flight cap per client when open-loop (`None` = the service
    /// default). Spelled `max_outstanding = 64` in the file.
    pub max_outstanding: Option<usize>,
    /// One listen address per node, indexed by node id.
    pub nodes: Vec<SocketAddr>,
}

impl ClusterSpec {
    /// Parse a spec file's contents. Returns a human-readable error
    /// naming the offending line.
    pub fn parse(text: &str) -> Result<ClusterSpec, String> {
        let mut kind = None;
        let mut f = 1usize;
        let mut unit = Duration::from_millis(5);
        let mut keys_per_shard = 64u64;
        let mut clients = 1usize;
        let mut txns_per_client = 25usize;
        let mut workload = Workload::Uniform { span: 2 };
        let mut seed = 1u64;
        let mut arrival_rate = None;
        let mut max_outstanding = None;
        let mut nodes: Vec<(usize, SocketAddr)> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: `{raw}`", lineno + 1);
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err("expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "protocol" => {
                    kind = Some(
                        ProtocolKind::all()
                            .into_iter()
                            .find(|k| k.name() == value)
                            .ok_or_else(|| err("unknown protocol"))?,
                    );
                }
                "f" => f = value.parse().map_err(|_| err("bad f"))?,
                "unit_ms" => {
                    unit = Duration::from_millis(value.parse().map_err(|_| err("bad unit_ms"))?)
                }
                "keys_per_shard" => {
                    keys_per_shard = value.parse().map_err(|_| err("bad keys_per_shard"))?
                }
                "clients" => clients = value.parse().map_err(|_| err("bad clients"))?,
                "txns_per_client" => {
                    txns_per_client = value.parse().map_err(|_| err("bad txns_per_client"))?
                }
                "workload" => {
                    workload = parse_workload(value).ok_or_else(|| err("bad workload"))?
                }
                "seed" => seed = value.parse().map_err(|_| err("bad seed"))?,
                "arrival_rate" => {
                    arrival_rate = Some(value.parse().map_err(|_| err("bad arrival_rate"))?)
                }
                "max_outstanding" => {
                    max_outstanding = Some(value.parse().map_err(|_| err("bad max_outstanding"))?)
                }
                _ if key.starts_with("node") => {
                    let id: usize = key
                        .strip_prefix("node")
                        .unwrap()
                        .trim()
                        .parse()
                        .map_err(|_| err("bad node index"))?;
                    let addr: SocketAddr = value.parse().map_err(|_| err("bad node address"))?;
                    nodes.push((id, addr));
                }
                _ => return Err(err("unknown key")),
            }
        }

        let kind = kind.ok_or("spec is missing `protocol`")?;
        nodes.sort_by_key(|&(id, _)| id);
        if nodes.is_empty() {
            return Err("spec has no `node I = addr` lines".into());
        }
        for (i, &(id, _)) in nodes.iter().enumerate() {
            if id != i {
                return Err(format!("node ids must be 0..n contiguous, found {id}"));
            }
        }
        let nodes: Vec<SocketAddr> = nodes.into_iter().map(|(_, a)| a).collect();
        if nodes.len() < 2 {
            return Err("a cluster needs at least 2 nodes".into());
        }
        if f == 0 || f >= nodes.len() {
            return Err(format!("f must satisfy 1 <= f < n, got f={f}"));
        }
        Ok(ClusterSpec {
            kind,
            f,
            unit,
            keys_per_shard,
            clients,
            txns_per_client,
            workload,
            seed,
            arrival_rate,
            max_outstanding,
            nodes,
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Where node `id`'s `--metrics` endpoint should listen: the same
    /// address family (and host) the spec binds the node itself to, not
    /// a hard-coded `127.0.0.1` — an `[::1]` or non-loopback spec gets a
    /// matching metrics listener.
    pub fn metrics_addr(&self, id: usize, port: u16) -> SocketAddr {
        SocketAddr::new(self.nodes[id].ip(), port)
    }

    /// The equivalent [`ServiceConfig`] (transport = TCP), used by the
    /// client process's closed loop.
    pub fn service_config(&self) -> ServiceConfig {
        let mut cfg = ServiceConfig::new(self.n(), self.f, self.kind)
            .unit(self.unit)
            .clients(self.clients)
            .txns_per_client(self.txns_per_client)
            .workload(self.workload.clone())
            .keys_per_shard(self.keys_per_shard)
            .seed(self.seed)
            .transport(TransportKind::Tcp);
        if let Some(rate) = self.arrival_rate {
            cfg = cfg.arrival_rate(rate);
        }
        if let Some(m) = self.max_outstanding {
            cfg = cfg.max_outstanding(m);
        }
        cfg
    }

    /// Render back to the file format (used by tests and by `repro` when
    /// it materializes a spec for spawned processes).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "protocol = {}", self.kind.name());
        let _ = writeln!(out, "f = {}", self.f);
        let _ = writeln!(out, "unit_ms = {}", self.unit.as_millis());
        let _ = writeln!(out, "keys_per_shard = {}", self.keys_per_shard);
        let _ = writeln!(out, "clients = {}", self.clients);
        let _ = writeln!(out, "txns_per_client = {}", self.txns_per_client);
        let _ = writeln!(out, "workload = {}", render_workload(&self.workload));
        let _ = writeln!(out, "seed = {}", self.seed);
        if let Some(rate) = self.arrival_rate {
            let _ = writeln!(out, "arrival_rate = {rate}");
        }
        if let Some(m) = self.max_outstanding {
            let _ = writeln!(out, "max_outstanding = {m}");
        }
        for (i, a) in self.nodes.iter().enumerate() {
            let _ = writeln!(out, "node {i} = {a}");
        }
        out
    }
}

fn parse_workload(s: &str) -> Option<Workload> {
    let mut parts = s.split(':');
    let shape = parts.next()?;
    match shape {
        "uniform" => Some(Workload::Uniform {
            span: parts.next()?.parse().ok()?,
        }),
        "skewed" => Some(Workload::Skewed {
            span: parts.next()?.parse().ok()?,
            theta: parts.next()?.parse().ok()?,
        }),
        "transfer" => Some(Workload::Transfer {
            amount: parts.next()?.parse().ok()?,
        }),
        _ => None,
    }
}

fn render_workload(w: &Workload) -> String {
    match w {
        Workload::Uniform { span } => format!("uniform:{span}"),
        Workload::Skewed { span, theta } => format!("skewed:{span}:{theta}"),
        Workload::Transfer { amount } => format!("transfer:{amount}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_spec_round_trips_through_render_and_parse() {
        let text = "\
# comment
protocol = PaxosCommit
f = 1
unit_ms = 7
keys_per_shard = 32
clients = 3
txns_per_client = 9
workload = transfer:5
seed = 42
node 1 = 127.0.0.1:7101
node 0 = 127.0.0.1:7100
";
        let spec = ClusterSpec::parse(text).expect("parse");
        assert_eq!(spec.n(), 2);
        assert_eq!(spec.kind.name(), "PaxosCommit");
        assert_eq!(spec.unit, Duration::from_millis(7));
        assert_eq!(spec.nodes[1].port(), 7101);
        let again = ClusterSpec::parse(&spec.render()).expect("reparse");
        assert_eq!(again.render(), spec.render());
    }

    #[test]
    fn open_loop_keys_and_metrics_addr_follow_the_spec() {
        let text = "\
protocol = 2PC
arrival_rate = 12.5
max_outstanding = 8
node 0 = [::1]:7100
node 1 = [::1]:7101
";
        let spec = ClusterSpec::parse(text).expect("parse");
        assert_eq!(spec.arrival_rate, Some(12.5));
        assert_eq!(spec.max_outstanding, Some(8));
        // The metrics endpoint inherits the node's address family.
        let m = spec.metrics_addr(1, 9100);
        assert!(m.is_ipv6());
        assert_eq!(m.port(), 9100);
        let again = ClusterSpec::parse(&spec.render()).expect("reparse");
        assert_eq!(again.render(), spec.render());
        assert_eq!(again.arrival_rate, Some(12.5));
    }

    #[test]
    fn bad_specs_name_the_problem() {
        assert!(ClusterSpec::parse("").unwrap_err().contains("protocol"));
        assert!(ClusterSpec::parse("protocol = 2PC\n")
            .unwrap_err()
            .contains("node"));
        let gap = "protocol = 2PC\nnode 0 = 127.0.0.1:1\nnode 2 = 127.0.0.1:2\n";
        assert!(ClusterSpec::parse(gap).unwrap_err().contains("contiguous"));
        let bad = "protocol = warp-drive\nnode 0 = 127.0.0.1:1\nnode 1 = 127.0.0.1:2\n";
        assert!(ClusterSpec::parse(bad).unwrap_err().contains("protocol"));
    }
}
