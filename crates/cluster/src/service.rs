//! The live transaction service: `n` long-lived node threads, each owning a
//! [`Shard`] and a [`NodeLoop`] demultiplexer running many concurrent
//! commit-protocol instances, plus a closed-loop load generator of `c`
//! client threads.
//!
//! ## Lifecycle of one transaction
//!
//! 1. A client draws a transaction from its workload generator, stamps it
//!    with a globally unique id and sends `Begin` to **every** node.
//! 2. Each node validates/prepares its shard (taking write locks — an
//!    untouched shard votes yes for free) and opens a protocol instance
//!    keyed by the transaction id on its [`NodeLoop`]. Protocol traffic
//!    travels node-to-node as `(TxnId, A::Msg)` envelopes.
//! 3. When a node's instance decides, the node applies the decision to its
//!    shard (install writes + release locks on commit, release on abort)
//!    and reports `Done` to the submitting client.
//! 4. The client measures wall-clock latency submit → all `n` decisions,
//!    then broadcasts `End` so nodes can garbage-collect the instance.
//!
//! Envelopes for instances a node has not opened yet are buffered (a peer's
//! vote can outrun the client's `Begin`); envelopes for ended instances are
//! dropped. Decisions, votes and apply order are logged per node so the
//! caller can audit safety after the run ([`ServiceOutcome::violations`]).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ac_commit::problem::COMMIT;
use ac_commit::protocols::ProtocolKind;
use ac_commit::CommitProtocol;
use ac_runtime::{NodeEvent, NodeLoop, UnitClock};
use ac_sim::ProcessId;
use ac_txn::workload::{Workload, WorkloadConfig};
use ac_txn::{Shard, Transaction, TxnId};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::histogram::LatencyHistogram;

/// Configuration of one live service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of nodes (= processes = shards).
    pub n: usize,
    /// Crash-resilience parameter handed to the protocol.
    pub f: usize,
    /// The commit protocol serving the cluster.
    pub kind: ProtocolKind,
    /// Wall-clock duration of one virtual delay unit `U` (protocol timers
    /// are scaled by this; it must comfortably exceed channel latency or
    /// timer-driven protocols degrade into their fallback paths).
    pub unit: Duration,
    /// Number of closed-loop client threads (the concurrency level).
    pub clients: usize,
    /// Transactions each client submits.
    pub txns_per_client: usize,
    /// Workload shape drawn by every client (distinct per-client seeds).
    pub workload: Workload,
    /// Keys per shard.
    pub keys_per_shard: u64,
    /// Base seed; each client derives its own stream from it.
    pub seed: u64,
    /// Per-transaction wait bound before a client declares the transaction
    /// stalled (a liveness alarm, not a latency figure).
    pub txn_deadline: Duration,
}

impl ServiceConfig {
    /// A sensible default service: `unit` 5 ms, 4 clients × 25 uniform
    /// two-shard transactions, 64 keys per shard, 10 s stall alarm.
    pub fn new(n: usize, f: usize, kind: ProtocolKind) -> ServiceConfig {
        ServiceConfig {
            n,
            f,
            kind,
            unit: Duration::from_millis(5),
            clients: 4,
            txns_per_client: 25,
            workload: Workload::Uniform { span: 2 },
            keys_per_shard: 64,
            seed: 1,
            txn_deadline: Duration::from_secs(10),
        }
    }

    /// Set the client count (builder style).
    pub fn clients(mut self, c: usize) -> ServiceConfig {
        self.clients = c;
        self
    }

    /// Set the per-client transaction count (builder style).
    pub fn txns_per_client(mut self, t: usize) -> ServiceConfig {
        self.txns_per_client = t;
        self
    }

    /// Set the workload shape (builder style).
    pub fn workload(mut self, w: Workload) -> ServiceConfig {
        self.workload = w;
        self
    }

    /// Set the wall-clock length of one delay unit (builder style).
    pub fn unit(mut self, unit: Duration) -> ServiceConfig {
        self.unit = unit;
        self
    }

    /// Set the base seed (builder style).
    pub fn seed(mut self, seed: u64) -> ServiceConfig {
        self.seed = seed;
        self
    }

    /// Set the keys-per-shard count (builder style).
    pub fn keys_per_shard(mut self, k: u64) -> ServiceConfig {
        self.keys_per_shard = k;
        self
    }

    /// The workload seed client `client` draws from (exposed so tests can
    /// regenerate the exact transaction stream a client submitted).
    pub fn client_seed(&self, client: usize) -> u64 {
        self.seed
            .wrapping_add((client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The globally unique id of client `client`'s `i`-th transaction.
    pub fn txn_id(client: usize, i: usize) -> TxnId {
        ((client as u64 + 1) << 32) | (i as u64 + 1)
    }
}

/// One entry of a node's apply log: the transaction, this node's vote, and
/// the decided outcome, in the order decisions were applied to the shard.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The transaction.
    pub txn: Arc<Transaction>,
    /// The submitting client.
    pub client: usize,
    /// This node's vote (its shard's local validation verdict).
    pub vote: bool,
    /// The decided value (1 = commit).
    pub decision: u64,
}

/// Outcome of one client transaction as the client observed it.
#[derive(Clone, Debug)]
struct ClientRecord {
    txn: Arc<Transaction>,
    /// Decision reported by each node (None = never arrived before the
    /// stall alarm).
    decisions: Vec<Option<u64>>,
}

/// Aggregated result of a [`run_service`] run.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// The protocol that served the run.
    pub kind: ProtocolKind,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Transactions fully served (all `n` decisions reached the client).
    pub txns: usize,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted.
    pub aborted: usize,
    /// Transactions on which a client hit its stall alarm.
    pub stalled: usize,
    /// Wall-clock of the whole load phase (first submit → last reply).
    pub elapsed: Duration,
    /// Per-transaction wall-clock latency (submit → all `n` decisions).
    pub latency: LatencyHistogram,
    /// Protocol messages that crossed node boundaries.
    pub wire_messages: usize,
    /// Final shard states.
    pub shards: Vec<Shard>,
    /// Each node's apply log, in its local apply order.
    pub node_logs: Vec<Vec<NodeRecord>>,
    /// Safety violations found by the post-run audit (empty = safe).
    pub violations: Vec<String>,
}

impl ServiceOutcome {
    /// Committed transactions per second of the load phase.
    pub fn throughput_tps(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Whether the post-run safety audit found nothing.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sum of all values across all shards (conservation checks: a
    /// Transfer workload must keep this at zero).
    pub fn total_value(&self) -> i64 {
        self.shards.iter().map(|s| s.total()).sum()
    }

    /// Replay each node's committed transactions **sequentially** against a
    /// fresh shard, in the node's apply order, and return the rebuilt
    /// shards. Serializability smoke test: the rebuilt shards must equal
    /// [`ServiceOutcome::shards`] — the concurrent run is equivalent to
    /// some sequential execution (per shard, its own apply order).
    pub fn replay(&self) -> Vec<Shard> {
        self.node_logs
            .iter()
            .enumerate()
            .map(|(p, log)| {
                let mut shard = Shard::new(p);
                for rec in log.iter().filter(|r| r.decision == COMMIT) {
                    // Writes only: read validation was the live run's job;
                    // replay re-applies the committed effects in order.
                    let mut w = Transaction::new(rec.txn.id);
                    w.writes = rec.txn.writes.clone();
                    let vote = shard.prepare(&w);
                    debug_assert!(vote, "sequential write-only replay cannot conflict");
                    shard.finish(&w, true);
                }
                shard
            })
            .collect()
    }
}

/// Everything a node can receive: client control traffic and protocol
/// envelopes `(TxnId, from, msg)`.
enum ToNode<M> {
    Begin {
        txn: Arc<Transaction>,
        client: usize,
    },
    Net {
        txn: TxnId,
        from: ProcessId,
        msg: M,
    },
    End {
        txn: TxnId,
    },
    Shutdown,
}

/// A node's decision report to the submitting client.
struct Done {
    txn: TxnId,
    node: ProcessId,
    decision: u64,
}

struct NodeReturn {
    shard: Shard,
    log: Vec<NodeRecord>,
}

struct ClientReturn {
    records: Vec<ClientRecord>,
    latency: LatencyHistogram,
    stalled: usize,
}

/// Run the configured service end-to-end and audit it. Dispatches on
/// `cfg.kind` to the generic engine — any protocol of the suite can serve.
pub fn run_service(cfg: &ServiceConfig) -> ServiceOutcome {
    use ac_commit::protocols::*;
    match cfg.kind {
        ProtocolKind::Inbac => serve::<Inbac>(cfg),
        ProtocolKind::InbacFastAbort => serve::<InbacFastAbort>(cfg),
        ProtocolKind::Nbac1 => serve::<Nbac1>(cfg),
        ProtocolKind::Nbac0 => serve::<Nbac0>(cfg),
        ProtocolKind::ANbac => serve::<ANbac>(cfg),
        ProtocolKind::AvNbacDelayOpt => serve::<AvNbacDelayOpt>(cfg),
        ProtocolKind::AvNbacMsgOpt => serve::<AvNbacMsgOpt>(cfg),
        ProtocolKind::ChainNbac => serve::<ChainNbac>(cfg),
        ProtocolKind::Nbac2n2 => serve::<Nbac2n2>(cfg),
        ProtocolKind::Nbac2n2f => serve::<Nbac2n2f>(cfg),
        ProtocolKind::TwoPc => serve::<TwoPc>(cfg),
        ProtocolKind::ThreePc => serve::<ThreePc>(cfg),
        ProtocolKind::PaxosCommit => serve::<PaxosCommit>(cfg),
        ProtocolKind::FasterPaxosCommit => serve::<FasterPaxosCommit>(cfg),
    }
}

fn serve<P>(cfg: &ServiceConfig) -> ServiceOutcome
where
    P: CommitProtocol + Send + 'static,
    P::Msg: Send + 'static,
{
    assert!(cfg.n >= 2 && cfg.f >= 1 && cfg.f < cfg.n, "invalid (n, f)");
    assert!(cfg.clients >= 1);
    let n = cfg.n;

    // Node inboxes (nodes and clients all hold senders) and per-client
    // reply channels.
    let node_ch: Vec<_> = (0..n).map(|_| unbounded::<ToNode<P::Msg>>()).collect();
    let (node_txs, node_rxs): (Vec<_>, Vec<_>) = node_ch.into_iter().unzip();
    let client_ch: Vec<_> = (0..cfg.clients).map(|_| unbounded::<Done>()).collect();
    let (done_txs, done_rxs): (Vec<_>, Vec<_>) = client_ch.into_iter().unzip();
    let wire = Arc::new(AtomicUsize::new(0));

    let node_handles: Vec<_> = node_rxs
        .into_iter()
        .enumerate()
        .map(|(me, rx)| {
            let txs = node_txs.clone();
            let done_txs = done_txs.clone();
            let wire = Arc::clone(&wire);
            let unit = cfg.unit;
            let f = cfg.f;
            std::thread::spawn(move || node_main::<P>(me, n, f, unit, rx, txs, done_txs, wire))
        })
        .collect();

    let t0 = Instant::now();
    let client_handles: Vec<_> = done_rxs
        .into_iter()
        .enumerate()
        .map(|(client, rx)| {
            let txs = node_txs.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || client_main::<P>(client, &cfg, txs, rx))
        })
        .collect();

    let client_returns: Vec<ClientReturn> = client_handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    let elapsed = t0.elapsed();

    for tx in &node_txs {
        let _ = tx.send(ToNode::Shutdown);
    }
    drop(node_txs);
    let node_returns: Vec<NodeReturn> = node_handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();

    aggregate(cfg, client_returns, node_returns, elapsed, &wire)
}

/// One node thread: shard owner + instance demultiplexer.
#[allow(clippy::too_many_arguments)]
fn node_main<P>(
    me: ProcessId,
    n: usize,
    f: usize,
    unit: Duration,
    rx: Receiver<ToNode<P::Msg>>,
    txs: Vec<Sender<ToNode<P::Msg>>>,
    done_txs: Vec<Sender<Done>>,
    wire: Arc<AtomicUsize>,
) -> NodeReturn
where
    P: CommitProtocol,
    P::Msg: Send + 'static,
{
    let mut node: NodeLoop<P> = NodeLoop::new(me, n, UnitClock::new(unit));
    let mut shard = Shard::new(me);
    // txn -> (body, submitting client, our vote); live while the instance is.
    let mut meta: HashMap<TxnId, (Arc<Transaction>, usize, bool)> = HashMap::new();
    // Envelopes that outran their Begin.
    let mut pending: HashMap<TxnId, Vec<(ProcessId, P::Msg)>> = HashMap::new();
    // Ended instances: late envelopes for these are dropped.
    let mut closed: HashSet<TxnId> = HashSet::new();
    let mut log: Vec<NodeRecord> = Vec::new();
    let mut decided: Vec<(u64, u64)> = Vec::new();

    // Route one NodeLoop effect: protocol sends go out as Net envelopes
    // (self-sends through our own inbox, not counted as wire messages);
    // decisions are buffered and applied after the engine call returns.
    macro_rules! sink {
        () => {
            |ev: NodeEvent<P::Msg>| match ev {
                NodeEvent::Send { instance, to, msg } => {
                    if to != me {
                        wire.fetch_add(1, Ordering::Relaxed);
                    }
                    let _ = txs[to].send(ToNode::Net {
                        txn: instance,
                        from: me,
                        msg,
                    });
                }
                NodeEvent::Decided { instance, value } => decided.push((instance, value)),
            }
        };
    }

    loop {
        let now = Instant::now();
        node.fire_due(now, &mut sink!());

        // Apply buffered decisions outside the engine borrow.
        for (txn_id, value) in decided.drain(..) {
            if let Some((txn, client, vote)) = meta.get(&txn_id) {
                shard.finish(txn, value == COMMIT);
                log.push(NodeRecord {
                    txn: Arc::clone(txn),
                    client: *client,
                    vote: *vote,
                    decision: value,
                });
                let _ = done_txs[*client].send(Done {
                    txn: txn_id,
                    node: me,
                    decision: value,
                });
            }
        }

        // Sleep until the earliest pending timer; inbound messages wake the
        // recv immediately, so an idle node parks (bounded only by a long
        // housekeeping tick rather than a busy 1 ms poll).
        let wait = node
            .next_due()
            .map(|due| due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(100));
        match rx.recv_timeout(wait) {
            Ok(ToNode::Begin { txn, client }) => {
                let vote = if txn.touches(me) {
                    shard.prepare(&txn)
                } else {
                    true
                };
                let id = txn.id;
                meta.insert(id, (txn, client, vote));
                let now = Instant::now();
                node.open(id, P::new(me, n, f, vote), now, &mut sink!());
                for (from, msg) in pending.remove(&id).unwrap_or_default() {
                    node.deliver(id, from, msg, now, &mut sink!());
                }
            }
            Ok(ToNode::Net { txn, from, msg }) => {
                if node.has(txn) {
                    node.deliver(txn, from, msg, Instant::now(), &mut sink!());
                } else if !closed.contains(&txn) {
                    pending.entry(txn).or_default().push((from, msg));
                }
            }
            Ok(ToNode::End { txn }) => {
                node.close(txn);
                closed.insert(txn);
                meta.remove(&txn);
                pending.remove(&txn);
            }
            Ok(ToNode::Shutdown) | Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {}
        }
    }
    NodeReturn { shard, log }
}

/// One closed-loop client: submit, await all `n` decisions, record, repeat.
fn client_main<P>(
    client: usize,
    cfg: &ServiceConfig,
    txs: Vec<Sender<ToNode<P::Msg>>>,
    rx: Receiver<Done>,
) -> ClientReturn
where
    P: CommitProtocol,
    P::Msg: Send + 'static,
{
    let mut gen = WorkloadConfig {
        shards: cfg.n,
        keys_per_shard: cfg.keys_per_shard,
        workload: cfg.workload.clone(),
        seed: cfg.client_seed(client),
    }
    .generator();

    let mut records = Vec::with_capacity(cfg.txns_per_client);
    let mut latency = LatencyHistogram::new();
    let mut stalled = 0usize;

    for i in 0..cfg.txns_per_client {
        let mut txn = gen.next_txn();
        txn.id = ServiceConfig::txn_id(client, i);
        let txn = Arc::new(txn);

        let t0 = Instant::now();
        for tx in &txs {
            let _ = tx.send(ToNode::Begin {
                txn: Arc::clone(&txn),
                client,
            });
        }
        let deadline = t0 + cfg.txn_deadline;
        let mut decisions: Vec<Option<u64>> = vec![None; cfg.n];
        let mut got = 0usize;
        while got < cfg.n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            match rx.recv_timeout(left) {
                Ok(d) if d.txn == txn.id => {
                    if decisions[d.node].is_none() {
                        decisions[d.node] = Some(d.decision);
                        got += 1;
                    }
                }
                Ok(_) => {} // straggler reply of an already-stalled txn
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        let lat = t0.elapsed();
        for tx in &txs {
            let _ = tx.send(ToNode::End { txn: txn.id });
        }
        if got == cfg.n {
            latency.record_duration(lat);
        } else {
            stalled += 1;
        }
        records.push(ClientRecord { txn, decisions });
    }
    ClientReturn {
        records,
        latency,
        stalled,
    }
}

/// Merge per-thread results and audit safety.
fn aggregate(
    cfg: &ServiceConfig,
    client_returns: Vec<ClientReturn>,
    node_returns: Vec<NodeReturn>,
    elapsed: Duration,
    wire: &AtomicUsize,
) -> ServiceOutcome {
    let mut latency = LatencyHistogram::new();
    let mut stalled = 0;
    let mut txns = 0;
    let mut committed = 0;
    let mut aborted = 0;
    let mut violations = Vec::new();

    // Cross-node view: txn -> (votes, decisions) as logged by each node.
    let mut by_txn: HashMap<TxnId, (Vec<bool>, Vec<u64>)> = HashMap::new();
    for ret in &node_returns {
        for rec in &ret.log {
            let e = by_txn.entry(rec.txn.id).or_default();
            e.0.push(rec.vote);
            e.1.push(rec.decision);
        }
    }

    for cr in &client_returns {
        latency.merge(&cr.latency);
        stalled += cr.stalled;
        for rec in &cr.records {
            let full = rec.decisions.iter().all(|d| d.is_some());
            if !full {
                continue; // counted in `stalled`
            }
            txns += 1;
            let mut vals: Vec<u64> = rec.decisions.iter().flatten().copied().collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.len() != 1 {
                violations.push(format!("txn {}: split decision {vals:?}", rec.txn.id));
                continue;
            }
            let commit = vals[0] == COMMIT;
            if commit {
                committed += 1;
            } else {
                aborted += 1;
            }
            match by_txn.get(&rec.txn.id) {
                Some((votes, decisions)) => {
                    if votes.len() != cfg.n {
                        violations.push(format!(
                            "txn {}: {} of {} nodes logged a decision",
                            rec.txn.id,
                            votes.len(),
                            cfg.n
                        ));
                    }
                    if decisions.iter().any(|&d| d != vals[0]) {
                        violations.push(format!(
                            "txn {}: node logs disagree with client view",
                            rec.txn.id
                        ));
                    }
                    if commit && votes.iter().any(|&v| !v) {
                        violations.push(format!(
                            "txn {}: committed despite a missing yes-vote",
                            rec.txn.id
                        ));
                    }
                }
                None => violations.push(format!("txn {}: no node logged it", rec.txn.id)),
            }
        }
    }
    for (p, ret) in node_returns.iter().enumerate() {
        if ret.shard.locked() != 0 {
            violations.push(format!(
                "shard {p}: {} lock(s) still held after the run",
                ret.shard.locked()
            ));
        }
    }

    let (shards, node_logs): (Vec<Shard>, Vec<Vec<NodeRecord>>) =
        node_returns.into_iter().map(|r| (r.shard, r.log)).unzip();

    ServiceOutcome {
        kind: cfg.kind,
        clients: cfg.clients,
        txns,
        committed,
        aborted,
        stalled,
        elapsed,
        latency,
        wire_messages: wire.load(Ordering::Relaxed),
        shards,
        node_logs,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ProtocolKind) -> ServiceConfig {
        ServiceConfig::new(4, 1, kind)
            .clients(2)
            .txns_per_client(5)
            .unit(Duration::from_millis(10))
    }

    #[test]
    fn inbac_serves_uniform_load_safely() {
        let out = run_service(&quick(ProtocolKind::Inbac));
        assert_eq!(out.stalled, 0);
        assert_eq!(out.txns, 10);
        assert!(out.is_safe(), "{:?}", out.violations);
        assert!(out.committed + out.aborted == 10);
        assert_eq!(out.latency.count(), 10);
        assert!(out.wire_messages > 0);
    }

    #[test]
    fn two_pc_transfer_load_conserves_value() {
        let cfg = quick(ProtocolKind::TwoPc).workload(Workload::Transfer { amount: 7 });
        let out = run_service(&cfg);
        assert_eq!(out.stalled, 0);
        assert!(out.is_safe(), "{:?}", out.violations);
        assert_eq!(out.total_value(), 0);
        assert!(out.committed > 0, "transfers should mostly commit");
    }

    #[test]
    fn replay_reproduces_shard_state() {
        let cfg = quick(ProtocolKind::PaxosCommit).clients(3);
        let out = run_service(&cfg);
        assert!(out.is_safe(), "{:?}", out.violations);
        let rebuilt = out.replay();
        for (live, replayed) in out.shards.iter().zip(&rebuilt) {
            assert_eq!(live.total(), replayed.total());
            for k in 0..cfg.keys_per_shard {
                assert_eq!(live.read(k), replayed.read(k), "shard {} key {k}", live.id);
            }
        }
    }
}
