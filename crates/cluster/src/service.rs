//! The live transaction service: `n` long-lived node threads, each owning a
//! [`Shard`] and a [`NodeLoop`] demultiplexer running many concurrent
//! commit-protocol instances, plus a closed-loop load generator of `c`
//! client threads.
//!
//! ## Lifecycle of one transaction
//!
//! 1. A client draws a transaction from its workload generator, stamps it
//!    with a globally unique id and sends `Begin` to **every** node.
//! 2. Each node validates/prepares its shard (taking write locks — an
//!    untouched shard votes yes for free) and opens a protocol instance
//!    keyed by the transaction id on its [`NodeLoop`]. Protocol traffic
//!    travels node-to-node as `(TxnId, A::Msg)` envelopes.
//! 3. When a node's instance decides, the node applies the decision to its
//!    shard (install writes + release locks on commit, release on abort)
//!    and reports `Done` to the submitting client.
//! 4. The client measures wall-clock latency submit → all `n` decisions,
//!    then broadcasts `End` so nodes can garbage-collect the instance.
//!
//! Envelopes for instances a node has not opened yet are buffered (a peer's
//! vote can outrun the client's `Begin`); envelopes for ended instances are
//! dropped. Decisions, votes and apply order are logged per node so the
//! caller can audit safety after the run ([`ServiceOutcome::violations`]).
//!
//! ## The hot path (batched since ISSUE-4)
//!
//! Both loops are **drain-then-dispatch**: a node blocks on the *exact*
//! next timer deadline (or indefinitely when idle — an idle node performs
//! zero wakeups, see [`ServiceOutcome::spurious_wakeups`]), drains its
//! whole inbound backlog in one lock acquisition
//! (`recv_batch_timeout`), dispatches every envelope through the
//! slab-indexed demultiplexer, and only then flushes the outputs — one
//! `send_batch` per peer node and per client, so a burst of N envelopes
//! costs one lock + one wakeup per destination instead of N. Self-sends
//! short-circuit through an in-memory queue and never touch a channel.
//! Demux state (`NodeLoop` slots, transaction metadata, early-envelope
//! buffers) lives in [`ac_runtime::Slab`]s — dense storage, free-list
//! reuse, fast-hash id resolution — and early-envelope buffers inline
//! their first few messages ([`crate::inline::InlineVec`]) so the common
//! case allocates nothing per transaction. "Early envelope or late
//! straggler?" is answered by per-client Begin watermarks (each client's
//! control stream is FIFO), so no ended-transaction set has to grow with
//! the run.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ac_commit::problem::COMMIT;
use ac_commit::protocols::ProtocolKind;
use ac_commit::CommitProtocol;
use ac_runtime::{NodeEvent, NodeLoop, Slab, UnitClock};
use ac_sim::ProcessId;
use ac_txn::workload::{Workload, WorkloadConfig};
use ac_txn::{Shard, Transaction, TxnId};
use crossbeam::channel::{unbounded, Receiver, RecvError, RecvTimeoutError, Sender};

use crate::histogram::LatencyHistogram;
use crate::inline::InlineVec;

/// Upper bound on envelopes drained per node-loop iteration. Bounds the
/// latency a long backlog can add to timer firing while still amortizing
/// the channel lock across many messages.
const NODE_BATCH: usize = 256;

/// Upper bound on decision replies a client drains per iteration.
const CLIENT_BATCH: usize = 64;

/// Configuration of one live service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of nodes (= processes = shards).
    pub n: usize,
    /// Crash-resilience parameter handed to the protocol.
    pub f: usize,
    /// The commit protocol serving the cluster.
    pub kind: ProtocolKind,
    /// Wall-clock duration of one virtual delay unit `U` (protocol timers
    /// are scaled by this; it must comfortably exceed channel latency or
    /// timer-driven protocols degrade into their fallback paths).
    pub unit: Duration,
    /// Number of closed-loop client threads (the concurrency level).
    pub clients: usize,
    /// Transactions each client submits.
    pub txns_per_client: usize,
    /// Workload shape drawn by every client (distinct per-client seeds).
    pub workload: Workload,
    /// Keys per shard.
    pub keys_per_shard: u64,
    /// Base seed; each client derives its own stream from it.
    pub seed: u64,
    /// Per-transaction wait bound before a client declares the transaction
    /// stalled (a liveness alarm, not a latency figure).
    pub txn_deadline: Duration,
}

impl ServiceConfig {
    /// A sensible default service: `unit` 5 ms, 4 clients × 25 uniform
    /// two-shard transactions, 64 keys per shard, 10 s stall alarm.
    pub fn new(n: usize, f: usize, kind: ProtocolKind) -> ServiceConfig {
        ServiceConfig {
            n,
            f,
            kind,
            unit: Duration::from_millis(5),
            clients: 4,
            txns_per_client: 25,
            workload: Workload::Uniform { span: 2 },
            keys_per_shard: 64,
            seed: 1,
            txn_deadline: Duration::from_secs(10),
        }
    }

    /// Set the client count (builder style).
    pub fn clients(mut self, c: usize) -> ServiceConfig {
        self.clients = c;
        self
    }

    /// Set the per-client transaction count (builder style).
    pub fn txns_per_client(mut self, t: usize) -> ServiceConfig {
        self.txns_per_client = t;
        self
    }

    /// Set the workload shape (builder style).
    pub fn workload(mut self, w: Workload) -> ServiceConfig {
        self.workload = w;
        self
    }

    /// Set the wall-clock length of one delay unit (builder style).
    pub fn unit(mut self, unit: Duration) -> ServiceConfig {
        self.unit = unit;
        self
    }

    /// Set the base seed (builder style).
    pub fn seed(mut self, seed: u64) -> ServiceConfig {
        self.seed = seed;
        self
    }

    /// Set the keys-per-shard count (builder style).
    pub fn keys_per_shard(mut self, k: u64) -> ServiceConfig {
        self.keys_per_shard = k;
        self
    }

    /// The workload seed client `client` draws from (exposed so tests can
    /// regenerate the exact transaction stream a client submitted).
    pub fn client_seed(&self, client: usize) -> u64 {
        self.seed
            .wrapping_add((client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The globally unique id of client `client`'s `i`-th transaction.
    pub fn txn_id(client: usize, i: usize) -> TxnId {
        ((client as u64 + 1) << 32) | (i as u64 + 1)
    }
}

/// One entry of a node's apply log: the transaction, this node's vote, and
/// the decided outcome, in the order decisions were applied to the shard.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The transaction.
    pub txn: Arc<Transaction>,
    /// The submitting client.
    pub client: usize,
    /// This node's vote (its shard's local validation verdict).
    pub vote: bool,
    /// The decided value (1 = commit).
    pub decision: u64,
}

/// Outcome of one client transaction as the client observed it.
#[derive(Clone, Debug)]
struct ClientRecord {
    txn: Arc<Transaction>,
    /// Decision reported by each node (None = never arrived before the
    /// stall alarm).
    decisions: Vec<Option<u64>>,
}

/// Aggregated result of a [`run_service`] run.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// The protocol that served the run.
    pub kind: ProtocolKind,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Transactions fully served (all `n` decisions reached the client).
    pub txns: usize,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted.
    pub aborted: usize,
    /// Transactions on which a client hit its stall alarm.
    pub stalled: usize,
    /// Wall-clock of the whole load phase (first submit → last reply).
    pub elapsed: Duration,
    /// Per-transaction wall-clock latency (submit → all `n` decisions).
    pub latency: LatencyHistogram,
    /// Protocol messages that crossed node boundaries.
    pub wire_messages: usize,
    /// Node-loop wakeups that found neither a message nor a due timer
    /// (0 = every wakeup did useful work; idle nodes park indefinitely).
    pub spurious_wakeups: usize,
    /// Final shard states.
    pub shards: Vec<Shard>,
    /// Each node's apply log, in its local apply order.
    pub node_logs: Vec<Vec<NodeRecord>>,
    /// Safety violations found by the post-run audit (empty = safe).
    pub violations: Vec<String>,
}

impl ServiceOutcome {
    /// Committed transactions per second of the load phase.
    pub fn throughput_tps(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Whether the post-run safety audit found nothing.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sum of all values across all shards (conservation checks: a
    /// Transfer workload must keep this at zero).
    pub fn total_value(&self) -> i64 {
        self.shards.iter().map(|s| s.total()).sum()
    }

    /// Replay each node's committed transactions **sequentially** against a
    /// fresh shard, in the node's apply order, and return the rebuilt
    /// shards. Serializability smoke test: the rebuilt shards must equal
    /// [`ServiceOutcome::shards`] — the concurrent run is equivalent to
    /// some sequential execution (per shard, its own apply order).
    pub fn replay(&self) -> Vec<Shard> {
        self.node_logs
            .iter()
            .enumerate()
            .map(|(p, log)| {
                let mut shard = Shard::new(p);
                for rec in log.iter().filter(|r| r.decision == COMMIT) {
                    // Writes only: read validation was the live run's job;
                    // replay re-applies the committed effects in order.
                    let mut w = Transaction::new(rec.txn.id);
                    w.writes = rec.txn.writes.clone();
                    let vote = shard.prepare(&w);
                    debug_assert!(vote, "sequential write-only replay cannot conflict");
                    shard.finish(&w, true);
                }
                shard
            })
            .collect()
    }
}

/// Everything a node can receive: client control traffic and protocol
/// envelopes `(TxnId, from, msg)`.
enum ToNode<M> {
    Begin {
        txn: Arc<Transaction>,
        client: usize,
    },
    Net {
        txn: TxnId,
        from: ProcessId,
        msg: M,
    },
    End {
        txn: TxnId,
    },
    Shutdown,
}

/// A node's decision report to the submitting client.
struct Done {
    txn: TxnId,
    node: ProcessId,
    decision: u64,
}

struct NodeReturn {
    shard: Shard,
    log: Vec<NodeRecord>,
    /// Wakeups that found neither a message nor a due timer.
    spurious_wakeups: usize,
}

struct ClientReturn {
    records: Vec<ClientRecord>,
    latency: LatencyHistogram,
    stalled: usize,
}

/// Run the configured service end-to-end and audit it. Dispatches on
/// `cfg.kind` to the generic engine — any protocol of the suite can serve.
pub fn run_service(cfg: &ServiceConfig) -> ServiceOutcome {
    use ac_commit::protocols::*;
    match cfg.kind {
        ProtocolKind::Inbac => serve::<Inbac>(cfg),
        ProtocolKind::InbacFastAbort => serve::<InbacFastAbort>(cfg),
        ProtocolKind::Nbac1 => serve::<Nbac1>(cfg),
        ProtocolKind::Nbac0 => serve::<Nbac0>(cfg),
        ProtocolKind::ANbac => serve::<ANbac>(cfg),
        ProtocolKind::AvNbacDelayOpt => serve::<AvNbacDelayOpt>(cfg),
        ProtocolKind::AvNbacMsgOpt => serve::<AvNbacMsgOpt>(cfg),
        ProtocolKind::ChainNbac => serve::<ChainNbac>(cfg),
        ProtocolKind::Nbac2n2 => serve::<Nbac2n2>(cfg),
        ProtocolKind::Nbac2n2f => serve::<Nbac2n2f>(cfg),
        ProtocolKind::TwoPc => serve::<TwoPc>(cfg),
        ProtocolKind::ThreePc => serve::<ThreePc>(cfg),
        ProtocolKind::PaxosCommit => serve::<PaxosCommit>(cfg),
        ProtocolKind::FasterPaxosCommit => serve::<FasterPaxosCommit>(cfg),
    }
}

fn serve<P>(cfg: &ServiceConfig) -> ServiceOutcome
where
    P: CommitProtocol + Send + 'static,
    P::Msg: Send + 'static,
{
    assert!(cfg.n >= 2 && cfg.f >= 1 && cfg.f < cfg.n, "invalid (n, f)");
    assert!(cfg.clients >= 1);
    let n = cfg.n;

    // Node inboxes (nodes and clients all hold senders) and per-client
    // reply channels.
    let node_ch: Vec<_> = (0..n).map(|_| unbounded::<ToNode<P::Msg>>()).collect();
    let (node_txs, node_rxs): (Vec<_>, Vec<_>) = node_ch.into_iter().unzip();
    let client_ch: Vec<_> = (0..cfg.clients).map(|_| unbounded::<Done>()).collect();
    let (done_txs, done_rxs): (Vec<_>, Vec<_>) = client_ch.into_iter().unzip();
    let wire = Arc::new(AtomicUsize::new(0));

    let node_handles: Vec<_> = node_rxs
        .into_iter()
        .enumerate()
        .map(|(me, rx)| {
            let txs = node_txs.clone();
            let done_txs = done_txs.clone();
            let wire = Arc::clone(&wire);
            let unit = cfg.unit;
            let f = cfg.f;
            std::thread::spawn(move || node_main::<P>(me, n, f, unit, rx, txs, done_txs, wire))
        })
        .collect();

    let t0 = Instant::now();
    let client_handles: Vec<_> = done_rxs
        .into_iter()
        .enumerate()
        .map(|(client, rx)| {
            let txs = node_txs.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || client_main::<P>(client, &cfg, txs, rx))
        })
        .collect();

    let client_returns: Vec<ClientReturn> = client_handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    let elapsed = t0.elapsed();

    for tx in &node_txs {
        let _ = tx.send(ToNode::Shutdown);
    }
    drop(node_txs);
    let node_returns: Vec<NodeReturn> = node_handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();

    aggregate(cfg, client_returns, node_returns, elapsed, &wire)
}

/// The submitting client encoded in a [`TxnId`] (inverse of
/// [`ServiceConfig::txn_id`]).
fn txn_client(id: TxnId) -> usize {
    ((id >> 32) as usize).saturating_sub(1)
}

/// The per-client sequence number encoded in a [`TxnId`].
fn txn_seq(id: TxnId) -> u64 {
    id & 0xFFFF_FFFF
}

/// Apply every buffered decision to the shard, the node log and the
/// per-client reply batches. Called once per node-loop iteration, and
/// additionally before an `End` garbage-collects a transaction's metadata
/// (a decision and its `End` can land in the same drained batch).
fn apply_decisions(
    decided: &mut Vec<(TxnId, u64)>,
    meta: &Slab<(Arc<Transaction>, usize, bool)>,
    shard: &mut Shard,
    log: &mut Vec<NodeRecord>,
    done_out: &mut [Vec<Done>],
    me: ProcessId,
) {
    for (txn_id, value) in decided.drain(..) {
        if let Some((txn, client, vote)) = meta.get(txn_id) {
            shard.finish(txn, value == COMMIT);
            log.push(NodeRecord {
                txn: Arc::clone(txn),
                client: *client,
                vote: *vote,
                decision: value,
            });
            done_out[*client].push(Done {
                txn: txn_id,
                node: me,
                decision: value,
            });
        }
    }
}

/// One node thread: shard owner + instance demultiplexer, batched
/// drain-then-dispatch (see the module docs' "hot path" section).
#[allow(clippy::too_many_arguments)]
fn node_main<P>(
    me: ProcessId,
    n: usize,
    f: usize,
    unit: Duration,
    rx: Receiver<ToNode<P::Msg>>,
    txs: Vec<Sender<ToNode<P::Msg>>>,
    done_txs: Vec<Sender<Done>>,
    wire: Arc<AtomicUsize>,
) -> NodeReturn
where
    P: CommitProtocol,
    P::Msg: Send + 'static,
{
    let mut node: NodeLoop<P> = NodeLoop::new(me, n, UnitClock::new(unit));
    let mut shard = Shard::new(me);
    // txn -> (body, submitting client, our vote); live while the instance is.
    let mut meta: Slab<(Arc<Transaction>, usize, bool)> = Slab::new();
    // Envelopes that outran their Begin (first few inline, no allocation).
    let mut pending: Slab<InlineVec<(ProcessId, P::Msg)>> = Slab::new();
    // Per-client Begin watermark: the highest per-client sequence number
    // this node has opened. Each client's control stream is FIFO (one
    // channel sender per client), so an envelope whose seq is at or below
    // the watermark can never be "early" — if its instance is not open it
    // has *ended*, and the envelope is a late straggler to drop. This
    // replaces the ever-growing closed-TxnId set with `clients` words.
    let mut begun: Vec<u64> = vec![0; done_txs.len()];
    let mut log: Vec<NodeRecord> = Vec::new();
    let mut decided: Vec<(u64, u64)> = Vec::new();
    // Reused batch buffers: inbound drain, per-peer outbound envelopes,
    // per-client decision replies, and the self-delivery queue.
    let mut inbox: Vec<ToNode<P::Msg>> = Vec::with_capacity(NODE_BATCH);
    let mut outbox: Vec<Vec<ToNode<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut done_out: Vec<Vec<Done>> = (0..done_txs.len()).map(|_| Vec::new()).collect();
    let mut selfq: VecDeque<(TxnId, P::Msg)> = VecDeque::new();
    let mut spurious_wakeups = 0usize;
    let mut shutdown = false;

    // Route one NodeLoop effect: remote sends are *staged* into the
    // per-peer outbox (flushed once per iteration as a batch), self-sends
    // go through the in-memory queue without touching any channel, and
    // decisions are buffered and applied after the engine call returns.
    macro_rules! sink {
        () => {
            |ev: NodeEvent<P::Msg>| match ev {
                NodeEvent::Send { instance, to, msg } => {
                    if to == me {
                        selfq.push_back((instance, msg));
                    } else {
                        outbox[to].push(ToNode::Net {
                            txn: instance,
                            from: me,
                            msg,
                        });
                    }
                }
                NodeEvent::Decided { instance, value } => decided.push((instance, value)),
            }
        };
    }

    while !shutdown {
        // 1. Drain: park until the exact next timer deadline (or
        //    indefinitely when no timer is pending — an inbound envelope
        //    or Shutdown wakes us), then take the whole backlog in one
        //    lock acquisition.
        inbox.clear();
        let got = match node.next_due() {
            Some(due) => {
                let wait = due.saturating_duration_since(Instant::now());
                match rx.recv_batch_timeout(&mut inbox, NODE_BATCH, wait) {
                    Ok(k) => k,
                    Err(RecvTimeoutError::Timeout) => 0,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            None => match rx.recv_batch(&mut inbox, NODE_BATCH) {
                Ok(k) => k,
                Err(RecvError) => break,
            },
        };

        // 2. Dispatch every envelope through the demultiplexer. One clock
        //    read serves the whole batch: dispatch takes microseconds
        //    against multi-millisecond virtual-time units, and timers set
        //    "in the past" fire in step 3 anyway.
        let now = Instant::now();
        for env in inbox.drain(..) {
            match env {
                ToNode::Begin { txn, client } => {
                    let vote = if txn.touches(me) {
                        shard.prepare(&txn)
                    } else {
                        true
                    };
                    let id = txn.id;
                    debug_assert_eq!(txn_client(id), client, "TxnId encoding drifted");
                    if let Some(w) = begun.get_mut(client) {
                        *w = (*w).max(txn_seq(id));
                    }
                    meta.insert(id, (txn, client, vote));
                    node.open(id, P::new(me, n, f, vote), now, &mut sink!());
                    if let Some(early) = pending.remove(id) {
                        for (from, msg) in early {
                            node.deliver(id, from, msg, now, &mut sink!());
                        }
                    }
                }
                ToNode::Net { txn, from, msg } => {
                    // `offer` resolves the instance in one slab probe and
                    // hands the message back if it is not open — which
                    // means either "Begin not here yet" (seq above the
                    // client's watermark: buffer it) or "already ended"
                    // (at or below: a late straggler, dropped).
                    if let Err(msg) = node.offer(txn, from, msg, now, &mut sink!()) {
                        let early = begun.get(txn_client(txn)).is_none_or(|&w| txn_seq(txn) > w);
                        if early {
                            match pending.get_mut(txn) {
                                Some(buf) => buf.push((from, msg)),
                                None => {
                                    let mut buf = InlineVec::new();
                                    buf.push((from, msg));
                                    pending.insert(txn, buf);
                                }
                            }
                        }
                    }
                }
                ToNode::End { txn } => {
                    // A decision for `txn` computed earlier in this same
                    // drained batch is still buffered — apply it before
                    // dropping the metadata, or the shard would keep its
                    // write locks forever.
                    if !decided.is_empty() {
                        apply_decisions(
                            &mut decided,
                            &meta,
                            &mut shard,
                            &mut log,
                            &mut done_out,
                            me,
                        );
                    }
                    node.close(txn);
                    meta.remove(txn);
                    pending.remove(txn);
                }
                ToNode::Shutdown => shutdown = true,
            }
        }

        // 3. Self-deliveries and due timers, to quiescence: a delivery can
        //    set a timer already due, a fired timer can self-send.
        let mut fired_any = false;
        loop {
            let now = Instant::now();
            while let Some((txn, msg)) = selfq.pop_front() {
                // A miss means the instance ended mid-batch; the message
                // is then moot (the old dropped-late-envelope semantics).
                let _ = node.deliver(txn, me, msg, now, &mut sink!());
            }
            let fired = node.fire_due(now, &mut sink!());
            fired_any |= fired > 0;
            if fired == 0 && selfq.is_empty() {
                break;
            }
        }
        if got == 0 && !fired_any && !shutdown {
            spurious_wakeups += 1;
        }

        // 4. Apply buffered decisions outside the engine borrow and stage
        //    the per-client replies.
        apply_decisions(&mut decided, &meta, &mut shard, &mut log, &mut done_out, me);

        // 5. Flush: one send_batch (one lock, at most one wakeup) per
        //    destination that has traffic this iteration.
        for (to, batch) in outbox.iter_mut().enumerate() {
            if !batch.is_empty() {
                wire.fetch_add(batch.len(), Ordering::Relaxed);
                let _ = txs[to].send_batch(batch.drain(..));
            }
        }
        for (client, batch) in done_out.iter_mut().enumerate() {
            if !batch.is_empty() {
                let _ = done_txs[client].send_batch(batch.drain(..));
            }
        }
    }
    NodeReturn {
        shard,
        log,
        spurious_wakeups,
    }
}

/// One closed-loop client: submit, await all `n` decisions, record, repeat.
fn client_main<P>(
    client: usize,
    cfg: &ServiceConfig,
    txs: Vec<Sender<ToNode<P::Msg>>>,
    rx: Receiver<Done>,
) -> ClientReturn
where
    P: CommitProtocol,
    P::Msg: Send + 'static,
{
    let mut gen = WorkloadConfig {
        shards: cfg.n,
        keys_per_shard: cfg.keys_per_shard,
        workload: cfg.workload.clone(),
        seed: cfg.client_seed(client),
    }
    .generator();

    let mut records = Vec::with_capacity(cfg.txns_per_client);
    let mut latency = LatencyHistogram::new();
    let mut stalled = 0usize;
    let mut dbuf: Vec<Done> = Vec::with_capacity(CLIENT_BATCH);
    // The previous transaction's id: its End rides in the same batch as
    // the next Begin, halving the client's channel operations per txn.
    let mut end_prev: Option<TxnId> = None;

    for i in 0..cfg.txns_per_client {
        let mut txn = gen.next_txn();
        txn.id = ServiceConfig::txn_id(client, i);
        let txn = Arc::new(txn);

        let t0 = Instant::now();
        for tx in &txs {
            let begin = ToNode::Begin {
                txn: Arc::clone(&txn),
                client,
            };
            match end_prev {
                Some(prev) => {
                    let _ = tx.send_batch([ToNode::End { txn: prev }, begin]);
                }
                None => {
                    let _ = tx.send(begin);
                }
            }
        }
        end_prev = Some(txn.id);
        let deadline = t0 + cfg.txn_deadline;
        let mut decisions: Vec<Option<u64>> = vec![None; cfg.n];
        let mut got = 0usize;
        // Block on the exact remaining deadline and drain replies in
        // batches — no per-message re-poll, no spurious wakeups while the
        // service is idle.
        'collect: while got < cfg.n {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                break;
            }
            // (dbuf is empty here: the Ok arm below always drains it.)
            match rx.recv_batch_timeout(&mut dbuf, CLIENT_BATCH, left) {
                Ok(_) => {
                    for d in dbuf.drain(..) {
                        if d.txn == txn.id && decisions[d.node].is_none() {
                            decisions[d.node] = Some(d.decision);
                            got += 1;
                        }
                        // else: straggler reply of an already-stalled txn
                    }
                }
                Err(RecvTimeoutError::Timeout) => break 'collect,
                Err(RecvTimeoutError::Disconnected) => break 'collect,
            }
        }
        let lat = t0.elapsed();
        if got == cfg.n {
            latency.record_duration(lat);
        } else {
            stalled += 1;
        }
        records.push(ClientRecord { txn, decisions });
    }
    // Garbage-collect the last transaction's instances.
    if let Some(prev) = end_prev {
        for tx in &txs {
            let _ = tx.send(ToNode::End { txn: prev });
        }
    }
    ClientReturn {
        records,
        latency,
        stalled,
    }
}

/// Merge per-thread results and audit safety.
fn aggregate(
    cfg: &ServiceConfig,
    client_returns: Vec<ClientReturn>,
    node_returns: Vec<NodeReturn>,
    elapsed: Duration,
    wire: &AtomicUsize,
) -> ServiceOutcome {
    let mut latency = LatencyHistogram::new();
    let mut stalled = 0;
    let mut txns = 0;
    let mut committed = 0;
    let mut aborted = 0;
    let mut violations = Vec::new();
    let spurious_wakeups = node_returns.iter().map(|r| r.spurious_wakeups).sum();

    // Cross-node view: txn -> (votes, decisions) as logged by each node.
    let mut by_txn: HashMap<TxnId, (Vec<bool>, Vec<u64>)> = HashMap::new();
    for ret in &node_returns {
        for rec in &ret.log {
            let e = by_txn.entry(rec.txn.id).or_default();
            e.0.push(rec.vote);
            e.1.push(rec.decision);
        }
    }

    for cr in &client_returns {
        latency.merge(&cr.latency);
        stalled += cr.stalled;
        for rec in &cr.records {
            let full = rec.decisions.iter().all(|d| d.is_some());
            if !full {
                continue; // counted in `stalled`
            }
            txns += 1;
            let mut vals: Vec<u64> = rec.decisions.iter().flatten().copied().collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.len() != 1 {
                violations.push(format!("txn {}: split decision {vals:?}", rec.txn.id));
                continue;
            }
            let commit = vals[0] == COMMIT;
            if commit {
                committed += 1;
            } else {
                aborted += 1;
            }
            match by_txn.get(&rec.txn.id) {
                Some((votes, decisions)) => {
                    if votes.len() != cfg.n {
                        violations.push(format!(
                            "txn {}: {} of {} nodes logged a decision",
                            rec.txn.id,
                            votes.len(),
                            cfg.n
                        ));
                    }
                    if decisions.iter().any(|&d| d != vals[0]) {
                        violations.push(format!(
                            "txn {}: node logs disagree with client view",
                            rec.txn.id
                        ));
                    }
                    if commit && votes.iter().any(|&v| !v) {
                        violations.push(format!(
                            "txn {}: committed despite a missing yes-vote",
                            rec.txn.id
                        ));
                    }
                }
                None => violations.push(format!("txn {}: no node logged it", rec.txn.id)),
            }
        }
    }
    for (p, ret) in node_returns.iter().enumerate() {
        if ret.shard.locked() != 0 {
            violations.push(format!(
                "shard {p}: {} lock(s) still held after the run",
                ret.shard.locked()
            ));
        }
    }

    let (shards, node_logs): (Vec<Shard>, Vec<Vec<NodeRecord>>) =
        node_returns.into_iter().map(|r| (r.shard, r.log)).unzip();

    ServiceOutcome {
        kind: cfg.kind,
        clients: cfg.clients,
        txns,
        committed,
        aborted,
        stalled,
        elapsed,
        latency,
        wire_messages: wire.load(Ordering::Relaxed),
        spurious_wakeups,
        shards,
        node_logs,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ProtocolKind) -> ServiceConfig {
        ServiceConfig::new(4, 1, kind)
            .clients(2)
            .txns_per_client(5)
            .unit(Duration::from_millis(10))
    }

    #[test]
    fn inbac_serves_uniform_load_safely() {
        let out = run_service(&quick(ProtocolKind::Inbac));
        assert_eq!(out.stalled, 0);
        assert_eq!(out.txns, 10);
        assert!(out.is_safe(), "{:?}", out.violations);
        assert!(out.committed + out.aborted == 10);
        assert_eq!(out.latency.count(), 10);
        assert!(out.wire_messages > 0);
    }

    /// A decision and the `End` that garbage-collects its transaction can
    /// land in the **same drained batch** (the txn stalled at the client,
    /// whose End rides with the next Begin). The decision must still be
    /// applied — logged, reported, shard finished — before the metadata
    /// goes away.
    #[test]
    fn decision_and_end_in_one_drained_batch_still_applies_the_decision() {
        /// Minimal commit protocol deciding COMMIT on the first message.
        struct DecideOnMsg;
        impl ac_sim::Automaton for DecideOnMsg {
            type Msg = ();
            fn on_start(&mut self, _: &mut ac_sim::Ctx<()>) {}
            fn on_message(&mut self, _: ProcessId, _: (), ctx: &mut ac_sim::Ctx<()>) {
                ctx.decide(COMMIT);
            }
            fn on_timer(&mut self, _: u32, _: &mut ac_sim::Ctx<()>) {}
        }
        impl CommitProtocol for DecideOnMsg {
            const NAME: &'static str = "decide-on-msg";
            fn new(_: ProcessId, _: usize, _: usize, _: bool) -> Self {
                DecideOnMsg
            }
        }

        let (tx0, rx0) = unbounded::<ToNode<()>>();
        let (tx1, _rx1) = unbounded::<ToNode<()>>(); // peer inbox, kept alive
        let (done_tx, done_rx) = unbounded::<Done>();
        let wire = Arc::new(AtomicUsize::new(0));
        let handle = {
            let txs = vec![tx0.clone(), tx1];
            std::thread::spawn(move || {
                node_main::<DecideOnMsg>(
                    0,
                    2,
                    1,
                    Duration::from_millis(5),
                    rx0,
                    txs,
                    vec![done_tx],
                    wire,
                )
            })
        };

        let id = ServiceConfig::txn_id(0, 0);
        assert!(tx0
            .send(ToNode::Begin {
                txn: Arc::new(Transaction::new(id)),
                client: 0,
            })
            .is_ok());
        std::thread::sleep(Duration::from_millis(20)); // Begin processed alone
                                                       // The deciding message and the End arrive in one drained batch.
        assert!(tx0
            .send_batch([
                ToNode::Net {
                    txn: id,
                    from: 1,
                    msg: (),
                },
                ToNode::End { txn: id },
            ])
            .is_ok());
        let done = done_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("the batched decision must still reach the client");
        assert_eq!(done.txn, id);
        assert_eq!(done.decision, COMMIT);
        assert!(tx0.send(ToNode::Shutdown).is_ok());
        let ret = handle.join().expect("node thread panicked");
        assert_eq!(ret.log.len(), 1, "decision must be logged");
        assert_eq!(ret.log[0].decision, COMMIT);
        assert_eq!(ret.shard.locked(), 0, "no lock may leak");
    }

    /// ISSUE-4 satellite: an idle service must perform **zero** spurious
    /// wakeups — no housekeeping ticks, no idle polls. Four node threads
    /// are left with no clients and no traffic for 50 ms; every node must
    /// park the whole time.
    #[test]
    fn idle_nodes_perform_zero_spurious_wakeups_over_50ms() {
        use ac_commit::protocols::PaxosCommit;
        type P = PaxosCommit;
        let n = 4;
        let node_ch: Vec<_> = (0..n)
            .map(|_| unbounded::<ToNode<<P as ac_sim::Automaton>::Msg>>())
            .collect();
        let (node_txs, node_rxs): (Vec<_>, Vec<_>) = node_ch.into_iter().unzip();
        let wire = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = node_rxs
            .into_iter()
            .enumerate()
            .map(|(me, rx)| {
                let txs = node_txs.clone();
                let wire = Arc::clone(&wire);
                std::thread::spawn(move || {
                    node_main::<P>(
                        me,
                        n,
                        1,
                        Duration::from_millis(5),
                        rx,
                        txs,
                        Vec::new(), // no clients
                        wire,
                    )
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        for tx in &node_txs {
            let _ = tx.send(ToNode::Shutdown);
        }
        drop(node_txs);
        let total: usize = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked").spurious_wakeups)
            .sum();
        assert_eq!(total, 0, "idle nodes woke without work to do");
    }

    #[test]
    fn two_pc_transfer_load_conserves_value() {
        let cfg = quick(ProtocolKind::TwoPc).workload(Workload::Transfer { amount: 7 });
        let out = run_service(&cfg);
        assert_eq!(out.stalled, 0);
        assert!(out.is_safe(), "{:?}", out.violations);
        assert_eq!(out.total_value(), 0);
        assert!(out.committed > 0, "transfers should mostly commit");
    }

    #[test]
    fn replay_reproduces_shard_state() {
        let cfg = quick(ProtocolKind::PaxosCommit).clients(3);
        let out = run_service(&cfg);
        assert!(out.is_safe(), "{:?}", out.violations);
        let rebuilt = out.replay();
        for (live, replayed) in out.shards.iter().zip(&rebuilt) {
            assert_eq!(live.total(), replayed.total());
            for k in 0..cfg.keys_per_shard {
                assert_eq!(live.read(k), replayed.read(k), "shard {} key {k}", live.id);
            }
        }
    }
}
