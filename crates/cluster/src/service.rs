//! The live transaction service: `n` long-lived node threads, each owning a
//! [`Shard`] and a [`NodeLoop`] demultiplexer running many concurrent
//! commit-protocol instances, plus a closed-loop load generator of `c`
//! client threads.
//!
//! ## Lifecycle of one transaction
//!
//! 1. A client draws a transaction from its workload generator, stamps it
//!    with a globally unique id and sends `Begin` to **every participant**
//!    — the shards the transaction touches (all `n` nodes only when it
//!    touches fewer than two shards). The commit-protocol instance runs
//!    over exactly those `k` participants with resilience
//!    `min(f, k−1)`; envelopes carry global node ids, translated to
//!    instance-local ranks at the demux boundary.
//! 2. Each participant validates/prepares its shard (taking write locks),
//!    logs the prepare to its write-ahead log (when durability is on) and
//!    opens a protocol instance keyed by the transaction id on its
//!    [`NodeLoop`]. Protocol traffic travels node-to-node as
//!    `(TxnId, A::Msg)` envelopes.
//! 3. When a participant's instance decides, the node applies the decision
//!    to its shard (install writes + release locks on commit, release on
//!    abort), logs it, and reports `Done` to the submitting client.
//! 4. The client measures wall-clock latency submit → all `k` decisions,
//!    then broadcasts `End` so participants can garbage-collect the
//!    instance.
//!
//! Envelopes for instances a node has not opened yet are buffered (a peer's
//! vote can outrun the client's `Begin`); envelopes for ended instances are
//! dropped. Decisions, votes and apply order are logged per node so the
//! caller can audit safety after the run ([`ServiceOutcome::violations`]).
//!
//! ## Failure injection, crash/restart and recovery (since ISSUE-5)
//!
//! [`run_service_faulted`] augments the failure-free service with a
//! [`FaultSpec`]:
//!
//! * a [`NetPolicy`] is consulted for every node-to-node envelope at flush
//!   time and may **drop** or **delay** it (`ac-chaos` implements seeded
//!   plans: partitions, loss, extra latency);
//! * a per-node [`CrashWindow`] crashes the node at a wall-clock offset:
//!   the thread discards its entire volatile state (demux instances,
//!   timers, metadata, the in-memory shard) and ignores all traffic until
//!   the restart offset, when it **recovers from its write-ahead log**
//!   ([`ac_txn::Wal`]): committed state and the decision log are rebuilt,
//!   locks of in-flight prepared transactions are re-taken, their protocol
//!   instances are re-opened (fresh automata with the *logged* vote — no
//!   re-validation), decision reports are re-sent, and a `StatusQ` round
//!   asks peers for decisions reached while the node was down.
//!
//! Clients never block forever on a dead node: every reply wait is bounded
//! by [`ServiceConfig::reply_timeout`], after which the client re-sends
//! `Begin` (nodes deduplicate by transaction id; a duplicate `Begin` for an
//! undecided instance triggers a cooperative-termination `StatusQ`
//! broadcast, and for a decided one re-sends `Done`). After
//! [`ServiceConfig::park_retries`] retries the client *parks* the
//! transaction — it keeps retrying in the background while the closed loop
//! moves on — and abandons it only at [`ServiceConfig::txn_deadline`],
//! counting it stalled. This is the service-level termination path:
//! f-tolerant protocols (Paxos-Commit, INBAC) decide through crashes on
//! their own, while 2PC's blocked participants are released by the
//! coordinator's restart + the client's retry, or by a `StatusA` carrying a
//! decision the coordinator reached before a partition cut them off.
//!
//! ## The hot path (batched since ISSUE-4)
//!
//! Both loops are **drain-then-dispatch**: a node blocks on the *exact*
//! next deadline (timer, delayed-envelope release or scheduled crash; or
//! indefinitely when idle — an idle node performs zero wakeups, see
//! [`ServiceOutcome::spurious_wakeups`]), drains its whole inbound backlog
//! in one lock acquisition (`recv_batch_timeout`), dispatches every
//! envelope through the slab-indexed demultiplexer, and only then flushes
//! the outputs — one `send_batch` per peer node and per client. Self-sends
//! short-circuit through an in-memory queue and never touch a channel.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ac_commit::problem::COMMIT;
use ac_commit::protocols::ProtocolKind;
use ac_commit::CommitProtocol;
use ac_runtime::{NodeEvent, NodeLoop, Slab, UnitClock};
use ac_sim::ProcessId;
use ac_txn::workload::{ArrivalSchedule, Workload, WorkloadConfig};
use ac_txn::{Shard, Transaction, TxnId, Wal, WalRecord};
use crossbeam::channel::{unbounded, Receiver, RecvError, RecvTimeoutError, Sender};

use ac_obs::{
    lifecycles, Attribution, FlightEvent, FlightStage, LatencyHistogram, NodeObs, ObsExport,
    ObsMeters, Stage, StageHistograms,
};

use crate::inline::InlineVec;
use crate::transport::{ChannelTransport, TcpNode, TcpTransport, Transport};

/// Upper bound on envelopes drained per node-loop iteration. Bounds the
/// latency a long backlog can add to timer firing while still amortizing
/// the channel lock across many messages.
const NODE_BATCH: usize = 256;

/// Upper bound on decision replies a client drains per iteration.
const CLIENT_BATCH: usize = 64;

/// How many of the slowest reconstructed transaction timelines the run's
/// [`Attribution`] keeps (the p99.9-straggler material `repro trace`
/// renders).
const SLOWEST_KEPT: usize = 5;

/// Upper bound on protocol envelopes buffered per not-yet-opened
/// instance (envelopes that outran their `Begin`). Any protocol round
/// sends at most a handful of envelopes per peer, so a full buffer means
/// something pathological; overflow is dropped and counted in
/// [`ServiceOutcome::orphaned_envelopes`].
pub const ORPHAN_CAP: usize = 128;

/// The shards participating in `txn`'s commit — its protocol group. A
/// transaction touching fewer than two shards falls back to the whole
/// cluster (protocols need `n ≥ 2`). Sorted ascending; a participant's
/// instance-local rank is its index here.
pub fn participants_of(txn: &Transaction, n: usize) -> Vec<usize> {
    let parts: Vec<usize> = txn.shards().into_iter().filter(|&p| p < n).collect();
    if parts.len() >= 2 {
        parts
    } else {
        (0..n).collect()
    }
}

/// What the fault layer decides about one node-to-node envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fate {
    /// Put it on the wire now.
    Deliver,
    /// Lose it (partition, lossy link).
    Drop,
    /// Deliver it after an extra delay.
    Delay(Duration),
}

/// A fault-injection policy consulted for every node-to-node envelope.
///
/// `seq` is a per-`(from, to)` monotone counter, so a seeded policy can be
/// deterministic without interior mutability (`ac-chaos::FaultProxy` hashes
/// `(seed, from, to, seq)`); `elapsed` is wall time since the service
/// epoch. Client↔node control traffic is *not* subject to the policy (the
/// client is the measurement harness, not a distributed component).
pub trait NetPolicy: Send + Sync {
    /// Decide the fate of one envelope from `from` to `to`.
    fn fate(&self, from: ProcessId, to: ProcessId, elapsed: Duration, seq: u64) -> Fate;
}

/// A scheduled crash (and optional restart) of one node, as wall-clock
/// offsets from the service epoch.
#[derive(Clone, Copy, Debug)]
pub struct CrashWindow {
    /// When the node dies: volatile state dropped, all traffic ignored.
    pub down_after: Duration,
    /// When the node restarts and recovers from its write-ahead log
    /// (`None` = never; it stays dead for the rest of the run).
    pub up_after: Option<Duration>,
}

/// The complete fault configuration of one service run.
pub struct FaultSpec {
    /// Message-level fault policy (drop/delay), if any.
    pub policy: Option<Arc<dyn NetPolicy>>,
    /// Per-node crash schedule.
    pub crashes: Vec<Option<CrashWindow>>,
    /// Force write-ahead logging even without a crash schedule (crash
    /// schedules always enable it — recovery needs the log).
    pub durable: bool,
}

impl FaultSpec {
    /// No faults, no durability — the failure-free fast path.
    pub fn none(n: usize) -> FaultSpec {
        FaultSpec {
            policy: None,
            crashes: vec![None; n],
            durable: false,
        }
    }

    /// Whether any node has a crash scheduled.
    pub fn any_crash(&self) -> bool {
        self.crashes.iter().any(|c| c.is_some())
    }
}

/// Which transport carries node-to-node envelopes (see
/// [`crate::transport`]). Client↔node control traffic stays in-process
/// either way when the whole service runs in one process; the `ac-node`
/// / `ac-client` binaries put it on TCP too.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process crossbeam channels (the fast/test path).
    Channel,
    /// Real TCP sockets on loopback, framed by [`crate::codec`].
    Tcp,
}

impl TransportKind {
    /// Parse a CLI spelling (`channel` | `tcp`).
    pub fn parse(s: &str) -> Option<TransportKind> {
        match s {
            "channel" => Some(TransportKind::Channel),
            "tcp" => Some(TransportKind::Tcp),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Configuration of one live service run.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of nodes (= processes = shards).
    pub n: usize,
    /// Crash-resilience parameter handed to the protocol (capped at
    /// `k − 1` for a `k`-participant instance).
    pub f: usize,
    /// The commit protocol serving the cluster.
    pub kind: ProtocolKind,
    /// Wall-clock duration of one virtual delay unit `U` (protocol timers
    /// are scaled by this; it must comfortably exceed channel latency or
    /// timer-driven protocols degrade into their fallback paths).
    pub unit: Duration,
    /// Number of closed-loop client threads (the concurrency level).
    pub clients: usize,
    /// Transactions each client submits.
    pub txns_per_client: usize,
    /// Workload shape drawn by every client (distinct per-client seeds).
    pub workload: Workload,
    /// Keys per shard.
    pub keys_per_shard: u64,
    /// Base seed; each client derives its own stream from it.
    pub seed: u64,
    /// Total per-transaction patience: a transaction unresolved this long
    /// after submission is abandoned and counted stalled (a liveness
    /// alarm, not a latency figure).
    pub txn_deadline: Duration,
    /// Bounded reply wait: a client that has not collected all participant
    /// decisions within this window re-sends `Begin` (counted in
    /// [`ServiceOutcome::retries`], never a panic or an unbounded block —
    /// the ISSUE-5 fix for the silent client-stall hazard).
    pub reply_timeout: Duration,
    /// Retries after which the transaction is *parked*: the client keeps
    /// retrying it in the background but unblocks its closed loop and
    /// submits the next transaction (how availability stays measurable
    /// while 2PC blocks on a crashed coordinator).
    pub park_retries: u32,
    /// Upper bound on simultaneously outstanding (parked + active)
    /// transactions per client; reaching it blocks submission.
    pub max_outstanding: usize,
    /// Minimum gap between submissions (`None` = pure closed loop). Chaos
    /// runs pace the load so the stream is still flowing when the fault
    /// window opens.
    pub pacing: Option<Duration>,
    /// Open-loop load generation: mean Poisson arrival rate **per
    /// client** (transactions/second). `None` = closed loop. When set,
    /// each client dispatches transactions on an exponential
    /// inter-arrival schedule *regardless of completions*; an arrival
    /// finding [`ServiceConfig::max_outstanding`] transactions already
    /// in flight is **shed** (counted, never submitted) instead of
    /// back-pressuring the schedule, and latency is measured from the
    /// *scheduled* arrival instant — sojourn time (queue wait + commit),
    /// the quantity an offered-vs-goodput saturation curve needs.
    pub arrival_rate: Option<f64>,
    /// Time-based cap on WAL group commit: a node holds its staged
    /// record batch (and the envelopes/replies that depend on it) for at
    /// most this long before forcing, letting one force absorb appends
    /// across *several* drain batches. `None` = force once per drain
    /// batch that staged records (the default; no added latency).
    pub wal_flush_interval: Option<Duration>,
    /// Which transport carries node-to-node envelopes.
    pub transport: TransportKind,
}

impl ServiceConfig {
    /// A sensible default service: `unit` 5 ms, 4 clients × 25 uniform
    /// two-shard transactions, 64 keys per shard, 1 s bounded reply waits,
    /// 10 s stall alarm.
    pub fn new(n: usize, f: usize, kind: ProtocolKind) -> ServiceConfig {
        ServiceConfig {
            n,
            f,
            kind,
            unit: Duration::from_millis(5),
            clients: 4,
            txns_per_client: 25,
            workload: Workload::Uniform { span: 2 },
            keys_per_shard: 64,
            seed: 1,
            txn_deadline: Duration::from_secs(10),
            reply_timeout: Duration::from_secs(1),
            park_retries: 3,
            max_outstanding: 16,
            pacing: None,
            arrival_rate: None,
            wal_flush_interval: None,
            transport: TransportKind::Channel,
        }
    }

    /// Set the client count (builder style).
    pub fn clients(mut self, c: usize) -> ServiceConfig {
        self.clients = c;
        self
    }

    /// Set the per-client transaction count (builder style).
    pub fn txns_per_client(mut self, t: usize) -> ServiceConfig {
        self.txns_per_client = t;
        self
    }

    /// Set the workload shape (builder style).
    pub fn workload(mut self, w: Workload) -> ServiceConfig {
        self.workload = w;
        self
    }

    /// Set the wall-clock length of one delay unit (builder style).
    pub fn unit(mut self, unit: Duration) -> ServiceConfig {
        self.unit = unit;
        self
    }

    /// Set the base seed (builder style).
    pub fn seed(mut self, seed: u64) -> ServiceConfig {
        self.seed = seed;
        self
    }

    /// Set the keys-per-shard count (builder style).
    pub fn keys_per_shard(mut self, k: u64) -> ServiceConfig {
        self.keys_per_shard = k;
        self
    }

    /// Set the bounded reply wait (builder style).
    pub fn reply_timeout(mut self, t: Duration) -> ServiceConfig {
        self.reply_timeout = t;
        self
    }

    /// Set the park threshold (builder style).
    pub fn park_retries(mut self, r: u32) -> ServiceConfig {
        self.park_retries = r;
        self
    }

    /// Set the per-transaction abandonment deadline (builder style).
    pub fn txn_deadline(mut self, d: Duration) -> ServiceConfig {
        self.txn_deadline = d;
        self
    }

    /// Set the submission pacing gap (builder style).
    pub fn pacing(mut self, p: Duration) -> ServiceConfig {
        self.pacing = Some(p);
        self
    }

    /// Switch the clients to open-loop Poisson arrivals at `rate`
    /// transactions/second per client (builder style).
    pub fn arrival_rate(mut self, rate: f64) -> ServiceConfig {
        self.arrival_rate = Some(rate);
        self
    }

    /// Set the time-based group-commit cap (builder style).
    pub fn wal_flush_interval(mut self, iv: Duration) -> ServiceConfig {
        self.wal_flush_interval = Some(iv);
        self
    }

    /// Cap the per-client in-flight window (builder style).
    pub fn max_outstanding(mut self, m: usize) -> ServiceConfig {
        self.max_outstanding = m;
        self
    }

    /// Set the node-to-node transport (builder style).
    pub fn transport(mut self, t: TransportKind) -> ServiceConfig {
        self.transport = t;
        self
    }

    /// The workload seed client `client` draws from (exposed so tests can
    /// regenerate the exact transaction stream a client submitted).
    pub fn client_seed(&self, client: usize) -> u64 {
        self.seed
            .wrapping_add((client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The globally unique id of client `client`'s `i`-th transaction.
    pub fn txn_id(client: usize, i: usize) -> TxnId {
        ((client as u64 + 1) << 32) | (i as u64 + 1)
    }
}

/// One entry of a node's apply log: the transaction, this node's vote, and
/// the decided outcome, in the order decisions were applied to the shard.
/// A recovered node rebuilds this log from its write-ahead log.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The transaction.
    pub txn: Arc<Transaction>,
    /// The submitting client.
    pub client: usize,
    /// This node's vote (its shard's local validation verdict).
    pub vote: bool,
    /// The decided value (1 = commit).
    pub decision: u64,
}

/// Outcome of one client transaction as the client observed it.
#[derive(Clone, Debug)]
pub(crate) struct ClientRecord {
    pub(crate) txn: Arc<Transaction>,
    /// Decision reported by each participant, in participant-rank order
    /// (None = never arrived before abandonment).
    pub(crate) decisions: Vec<Option<u64>>,
}

/// One transaction's timeline as the client observed it, relative to the
/// service epoch — the raw material of availability-under-failure metrics
/// (`ac-chaos` buckets these against the fault window).
#[derive(Clone, Debug)]
pub struct TxnEvent {
    /// The transaction id.
    pub id: TxnId,
    /// The submitting client.
    pub client: usize,
    /// Number of participant shards.
    pub participants: usize,
    /// First submission, relative to the service epoch.
    pub submitted_at: Duration,
    /// When the client held all participant decisions (`None` =
    /// abandoned/stalled).
    pub decided_at: Option<Duration>,
    /// The agreed outcome (`None` = never fully decided at the client).
    pub committed: Option<bool>,
    /// `Begin` re-sends this transaction needed.
    pub retries: u32,
    /// Earliest `Begin` dispatch at any participant — the first protocol
    /// event (from the flight recorder; `None` when the transaction was
    /// unsampled or its events were lost to ring wrap-around).
    pub first_protocol_at: Option<Duration>,
    /// Latest participant lock acquisition: every vote cast, all write
    /// locks of yes-votes held.
    pub votes_held_at: Option<Duration>,
    /// Latest participant decision apply (the decision is journaled at
    /// every participant from this point).
    pub journaled_at: Option<Duration>,
}

/// Aggregated result of a [`run_service`] run.
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// The protocol that served the run.
    pub kind: ProtocolKind,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Transactions fully served (all participant decisions reached the
    /// client).
    pub txns: usize,
    /// Transactions that committed.
    pub committed: usize,
    /// Transactions that aborted.
    pub aborted: usize,
    /// Transactions abandoned at their deadline (unresolved at run end).
    pub stalled: usize,
    /// Transactions the load schedule *offered*: submissions plus sheds.
    /// Equals the submitted count in closed-loop mode; in open-loop mode
    /// it is the arrival schedule's length, the numerator of offered
    /// load.
    pub offered: usize,
    /// Open-loop arrivals shed because the client's bounded in-flight
    /// window ([`ServiceConfig::max_outstanding`]) was full — overload
    /// the service refused rather than queued unboundedly. Always 0 in
    /// closed-loop mode.
    pub shed: usize,
    /// Wall-clock of the whole load phase (first submit → last reply).
    pub elapsed: Duration,
    /// Per-transaction wall-clock latency (submit → all decisions).
    pub latency: LatencyHistogram,
    /// Protocol messages that crossed node boundaries (including recovery
    /// `StatusQ`/`StatusA` traffic).
    pub wire_messages: usize,
    /// Envelopes the fault policy dropped.
    pub dropped_messages: usize,
    /// Envelopes the fault policy held back before delivery.
    pub delayed_messages: usize,
    /// `Begin` re-sends across all clients (0 in a healthy run; bounded
    /// reply waits make a dead node cost retries, not a hang).
    pub retries: usize,
    /// Bounded reply waits that expired (retries + abandonments).
    pub reply_timeouts: usize,
    /// Node-loop wakeups that found neither a message nor a due timer
    /// (0 = every wakeup did useful work; idle nodes park indefinitely).
    pub spurious_wakeups: usize,
    /// Prepare records staged for the write-ahead log on the `Begin`
    /// critical path, across all nodes (the records a pre-group-commit
    /// node forced one by one; group commit folds them into the per-batch
    /// force counted in [`ServiceOutcome::wal_forces`]). Zero when the
    /// run has no WAL (healthy, non-durable) — and zero **even with a
    /// WAL** for a logless protocol ([`ProtocolKind::logless`]), which
    /// journals the prepare lazily alongside the decision because the
    /// outcome is reconstructible from the votes replicated to its
    /// peers.
    pub wal_prepare_forces: usize,
    /// WAL **force operations** (durability points) across all nodes.
    /// Group commit amortizes one force over every record staged during
    /// a drain batch, so under batched load this is far below the record
    /// count — `wal_forces / txns < 1` is the gated group-commit win
    /// (per-record forcing puts it at ≥ 2: one prepare + one decide per
    /// participant). Zero when the run has no WAL.
    pub wal_forces: usize,
    /// Early protocol envelopes (arrived before their `Begin`) dropped
    /// because an instance's bounded pre-open buffer was full. 0 in any
    /// healthy run — the buffer holds [`ORPHAN_CAP`] envelopes and no
    /// protocol in the suite sends nearly that many per instance, so a
    /// non-zero count means envelopes outran their `Begin` pathologically
    /// (a reordering transport or a flood from a confused peer).
    pub orphaned_envelopes: usize,
    /// Final shard states.
    pub shards: Vec<Shard>,
    /// Each node's apply log, in its local apply order.
    pub node_logs: Vec<Vec<NodeRecord>>,
    /// Per-transaction timelines, grouped by client, submission order.
    pub txn_events: Vec<TxnEvent>,
    /// Per-stage seam meters (count, total nanos), merged across every
    /// node and client thread.
    pub stage_meters: ObsMeters,
    /// Per-stage seam latency histograms, merged across every thread
    /// (merge ≡ recording the concatenation).
    pub stage_hists: StageHistograms,
    /// Per-transaction latency attribution: the five-stage telescoping
    /// decomposition of every covered commit (see [`ac_obs::Attribution`]).
    pub attribution: Attribution,
    /// Safety violations found by the post-run audit (empty = safe).
    pub violations: Vec<String>,
}

impl ServiceOutcome {
    /// Committed transactions per second of the load phase.
    ///
    /// Divides by the **full** wall time, ramp-up and drain included —
    /// fine for comparing closed-loop runs of identical shape, but it
    /// flatters nothing and understates steady-state rates. Saturation
    /// curves use [`ServiceOutcome::goodput_tps`] instead.
    pub fn throughput_tps(&self) -> f64 {
        self.committed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Committed transactions per second over the **trimmed
    /// steady-state window**: commits whose decision landed in the
    /// middle 80 % of the run (first and last 10 % of wall time
    /// excluded), divided by that window's length. This removes the
    /// measurement-window bias of [`ServiceOutcome::throughput_tps`] —
    /// ramp-up (clients starting) and drain (stragglers completing after
    /// the schedule ends) no longer dilute the rate — so open-loop
    /// offered-vs-goodput curves compare like for like across load
    /// steps.
    pub fn goodput_tps(&self) -> f64 {
        let total = self.elapsed;
        let lo = total.mul_f64(0.1);
        let hi = total.mul_f64(0.9);
        let window = (hi - lo).as_secs_f64();
        if window <= 0.0 {
            return self.throughput_tps();
        }
        let in_window = self
            .txn_events
            .iter()
            .filter(|e| e.committed == Some(true))
            .filter_map(|e| e.decided_at)
            .filter(|&d| d >= lo && d < hi)
            .count();
        in_window as f64 / window
    }

    /// Whether the post-run safety audit found nothing.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }

    /// Sum of all values across all shards (conservation checks: a
    /// Transfer workload must keep this at zero).
    pub fn total_value(&self) -> i64 {
        self.shards.iter().map(|s| s.total()).sum()
    }

    /// Replay each node's committed transactions **sequentially** against a
    /// fresh shard, in the node's apply order, and return the rebuilt
    /// shards. Serializability smoke test: the rebuilt shards must equal
    /// [`ServiceOutcome::shards`] — the concurrent run is equivalent to
    /// some sequential execution (per shard, its own apply order).
    pub fn replay(&self) -> Vec<Shard> {
        self.node_logs
            .iter()
            .enumerate()
            .map(|(p, log)| {
                let mut shard = Shard::new(p);
                for rec in log.iter().filter(|r| r.decision == COMMIT) {
                    // Writes only: read validation was the live run's job;
                    // replay re-applies the committed effects in order.
                    let mut w = Transaction::new(rec.txn.id);
                    w.writes = rec.txn.writes.clone();
                    let vote = shard.prepare(&w);
                    debug_assert!(vote, "sequential write-only replay cannot conflict");
                    shard.finish(&w, true);
                }
                shard
            })
            .collect()
    }
}

/// Everything a node can receive: client control traffic, protocol
/// envelopes `(TxnId, from, msg)`, and service-level recovery traffic.
/// Public because it is the [`crate::transport::Transport`] alphabet —
/// every variant is wire-encodable via [`crate::codec`].
#[derive(Debug)]
pub enum ToNode<M> {
    /// A client submits (or re-submits) a transaction to a participant.
    Begin {
        /// The transaction body.
        txn: Arc<Transaction>,
        /// The submitting client.
        client: usize,
        /// `true` on a re-send after an expired reply wait. A logless
        /// node that has **no record** of a retried transaction must not
        /// validate and vote afresh: its original vote may have died
        /// with a crash, and a contradictory re-vote could split the
        /// decision against peers that already assembled the original —
        /// it recovers the outcome from its peers instead
        /// (ask-before-revote, see the `Begin` handler).
        retry: bool,
    },
    /// A protocol envelope between two participants of an instance.
    Net {
        /// The instance (= transaction) id.
        txn: TxnId,
        /// The sending node (global id, translated to an instance rank
        /// at the demux boundary).
        from: ProcessId,
        /// The protocol message.
        msg: M,
    },
    /// Cooperative termination: "has `txn` decided at your node?" Sent by a
    /// recovered node for its in-flight transactions and by any node whose
    /// open instance is the target of a client retry.
    StatusQ {
        /// The queried transaction.
        txn: TxnId,
        /// The asking node.
        from: ProcessId,
    },
    /// The answer: a decision this node applied (protocol agreement makes
    /// adopting it safe).
    StatusA {
        /// The decided transaction.
        txn: TxnId,
        /// The decided value (1 = commit).
        value: u64,
    },
    /// The submitting client saw every participant decision; the
    /// instance can be garbage-collected.
    End {
        /// The finished transaction.
        txn: TxnId,
    },
    /// A collector asks for this node's observability export (flight
    /// recorder, stage histograms, meters, transport counters). The
    /// node answers through the `NodeEnv::obs_pull` channel; hosts
    /// without that channel (the in-process service, whose recorders
    /// are already local) ignore the request.
    ObsPull {
        /// The requesting collector's client id (routes the `ObsDump`
        /// back down that client's registered connection).
        client: usize,
    },
    /// Tear the node down (end of run).
    Shutdown,
}

/// A node's decision report to the submitting client.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Done {
    /// The decided transaction.
    pub txn: TxnId,
    /// The reporting participant.
    pub node: ProcessId,
    /// The decided value (1 = commit).
    pub decision: u64,
}

/// Per-open-transaction node state: body, routing and the local vote.
struct TxnMeta {
    txn: Arc<Transaction>,
    client: usize,
    vote: bool,
    /// Participant shards, ascending; protocol rank = index here.
    parts: Vec<usize>,
    /// This node's rank within `parts`.
    my_rank: usize,
}

/// An envelope held back by a [`Fate::Delay`] verdict, released at `due`.
struct DelayedEnv<M> {
    due: Instant,
    seq: u64,
    to: ProcessId,
    env: ToNode<M>,
}

impl<M> PartialEq for DelayedEnv<M> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<M> Eq for DelayedEnv<M> {}
impl<M> PartialOrd for DelayedEnv<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for DelayedEnv<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on `due`.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

pub(crate) struct NodeReturn {
    pub(crate) shard: Shard,
    pub(crate) log: Vec<NodeRecord>,
    /// Wakeups that found neither a message nor a due timer.
    pub(crate) spurious_wakeups: usize,
    pub(crate) dropped_messages: usize,
    pub(crate) delayed_messages: usize,
    pub(crate) orphaned_envelopes: usize,
    /// Prepare records staged on the Begin critical path (the records a
    /// pre-group-commit node forced one by one).
    pub(crate) wal_prepare_forces: usize,
    /// WAL force operations this node issued (one per non-empty staged
    /// batch).
    pub(crate) wal_forces: usize,
    /// The thread's observability bundle (meters, stage histograms,
    /// flight recorder), merged by [`aggregate`].
    pub(crate) obs: NodeObs,
}

pub(crate) struct ClientReturn {
    pub(crate) records: Vec<ClientRecord>,
    pub(crate) events: Vec<TxnEvent>,
    pub(crate) latency: LatencyHistogram,
    pub(crate) stalled: usize,
    pub(crate) retries: usize,
    pub(crate) reply_timeouts: usize,
    /// Arrivals the schedule offered (submissions + sheds).
    pub(crate) offered: usize,
    /// Open-loop arrivals shed at a full in-flight window.
    pub(crate) shed: usize,
    /// Client-side observability (the `ClientQueueWait` seam).
    pub(crate) obs: NodeObs,
}

/// Run the configured service end-to-end, failure-free, and audit it.
pub fn run_service(cfg: &ServiceConfig) -> ServiceOutcome {
    run_service_faulted(cfg, &FaultSpec::none(cfg.n))
}

/// Dispatch on a [`ProtocolKind`] to monomorphized code: `$p` is bound
/// to the protocol type inside `$body`. Shared by the in-process engine
/// and the `ac-node`/`ac-client` process drivers.
macro_rules! with_protocol {
    ($kind:expr, $p:ident => $body:expr) => {{
        use ac_commit::protocols::*;
        match $kind {
            ProtocolKind::Inbac => {
                type $p = Inbac;
                $body
            }
            ProtocolKind::InbacFastAbort => {
                type $p = InbacFastAbort;
                $body
            }
            ProtocolKind::Nbac1 => {
                type $p = Nbac1;
                $body
            }
            ProtocolKind::D1cc => {
                type $p = D1cc;
                $body
            }
            ProtocolKind::Nbac0 => {
                type $p = Nbac0;
                $body
            }
            ProtocolKind::ANbac => {
                type $p = ANbac;
                $body
            }
            ProtocolKind::AvNbacDelayOpt => {
                type $p = AvNbacDelayOpt;
                $body
            }
            ProtocolKind::AvNbacMsgOpt => {
                type $p = AvNbacMsgOpt;
                $body
            }
            ProtocolKind::ChainNbac => {
                type $p = ChainNbac;
                $body
            }
            ProtocolKind::Nbac2n2 => {
                type $p = Nbac2n2;
                $body
            }
            ProtocolKind::Nbac2n2f => {
                type $p = Nbac2n2f;
                $body
            }
            ProtocolKind::TwoPc => {
                type $p = TwoPc;
                $body
            }
            ProtocolKind::ThreePc => {
                type $p = ThreePc;
                $body
            }
            ProtocolKind::PaxosCommit => {
                type $p = PaxosCommit;
                $body
            }
            ProtocolKind::FasterPaxosCommit => {
                type $p = FasterPaxosCommit;
                $body
            }
        }
    }};
}
pub(crate) use with_protocol;

/// Run the configured service under a fault specification (see the module
/// docs' "Failure injection" section). Dispatches on `cfg.kind` to the
/// generic engine — any protocol of the suite can serve.
pub fn run_service_faulted(cfg: &ServiceConfig, spec: &FaultSpec) -> ServiceOutcome {
    with_protocol!(cfg.kind, P => serve::<P>(cfg, spec))
}

/// Everything one node thread needs (bundled so crash/restart state rides
/// along without a dozen loose parameters).
pub(crate) struct NodeEnv<P: CommitProtocol> {
    pub(crate) me: ProcessId,
    pub(crate) n: usize,
    pub(crate) f: usize,
    pub(crate) unit: Duration,
    pub(crate) epoch: Instant,
    pub(crate) rx: Receiver<ToNode<P::Msg>>,
    /// The node-to-node seam: everything the flush step emits goes
    /// through here ([`ChannelTransport`] or [`TcpTransport`]).
    pub(crate) transport: Box<dyn Transport<P::Msg>>,
    pub(crate) done_txs: Vec<Sender<Done>>,
    pub(crate) wire: Arc<AtomicUsize>,
    pub(crate) policy: Option<Arc<dyn NetPolicy>>,
    pub(crate) window: Option<CrashWindow>,
    pub(crate) wal: Option<Arc<Mutex<Wal>>>,
    /// Time-based group-commit cap (see
    /// [`ServiceConfig::wal_flush_interval`]).
    pub(crate) wal_flush_interval: Option<Duration>,
    /// Logless protocol ([`ProtocolKind::logless`]): skip the Begin-path
    /// Prepare force and journal the prepare alongside the decision
    /// instead — the decision is reconstructible from peer votes, so
    /// nothing needs to be durable before the vote leaves the node.
    pub(crate) logless: bool,
    /// The thread's observability bundle. Multi-process hosts pass
    /// [`NodeObs::with_meters`] so a live `--metrics` endpoint can read
    /// the shared registry; the in-process service uses a private one.
    pub(crate) obs: NodeObs,
    /// Where an [`ToNode::ObsPull`] answer goes: `(client, export)` —
    /// the multi-process host forwards it as an `ObsDump` frame down the
    /// requesting client's connection. `None` (the in-process service)
    /// makes `ObsPull` a no-op.
    pub(crate) obs_pull: Option<Sender<(usize, ObsExport)>>,
}

fn serve<P>(cfg: &ServiceConfig, spec: &FaultSpec) -> ServiceOutcome
where
    P: CommitProtocol + Send + 'static,
    P::Msg: ac_sim::Wire + Send + 'static,
{
    assert!(cfg.n >= 2 && cfg.f >= 1 && cfg.f < cfg.n, "invalid (n, f)");
    assert!(cfg.clients >= 1);
    assert_eq!(spec.crashes.len(), cfg.n, "one crash slot per node");
    let n = cfg.n;

    // Node inboxes (nodes and clients all hold senders) and per-client
    // reply channels.
    let node_ch: Vec<_> = (0..n).map(|_| unbounded::<ToNode<P::Msg>>()).collect();
    let (node_txs, node_rxs): (Vec<_>, Vec<_>) = node_ch.into_iter().unzip();
    let client_ch: Vec<_> = (0..cfg.clients).map(|_| unbounded::<Done>()).collect();
    let (done_txs, done_rxs): (Vec<_>, Vec<_>) = client_ch.into_iter().unzip();
    let wire = Arc::new(AtomicUsize::new(0));

    // In TCP mode each node gets a loopback listener whose reader
    // threads feed its ordinary inbox channel; senders dial the listener
    // addresses. Decision replies (node→client) and `Shutdown` stay on
    // in-process channels: the clients are the measurement harness, and
    // teardown must reach a node even if its sockets are wedged. The
    // `ac-node`/`ac-client` binaries put those on TCP too.
    let tcp_nodes: Vec<TcpNode> = match cfg.transport {
        TransportKind::Channel => Vec::new(),
        TransportKind::Tcp => (0..n)
            .map(|me| {
                TcpNode::bind("127.0.0.1:0", node_txs[me].clone(), None)
                    .expect("bind loopback listener")
            })
            .collect(),
    };
    let addrs: Vec<std::net::SocketAddr> = tcp_nodes.iter().map(|t| t.addr()).collect();
    let make_transport = |_who: &str| -> Box<dyn Transport<P::Msg>> {
        match cfg.transport {
            TransportKind::Channel => Box::new(ChannelTransport::new(node_txs.clone())),
            TransportKind::Tcp => Box::new(TcpTransport::new(addrs.clone())),
        }
    };

    // Write-ahead logs live *outside* the node threads — the in-process
    // stand-in for durable storage that survives a crash.
    let durable = spec.durable || spec.any_crash();
    let wals: Vec<Option<Arc<Mutex<Wal>>>> = (0..n)
        .map(|_| durable.then(|| Arc::new(Mutex::new(Wal::new()))))
        .collect();

    let epoch = Instant::now();
    let node_handles: Vec<_> = node_rxs
        .into_iter()
        .enumerate()
        .map(|(me, rx)| {
            let env = NodeEnv::<P> {
                me,
                n,
                f: cfg.f,
                unit: cfg.unit,
                epoch,
                rx,
                transport: make_transport("node"),
                done_txs: done_txs.clone(),
                wire: Arc::clone(&wire),
                policy: spec.policy.clone(),
                window: spec.crashes[me],
                wal: wals[me].clone(),
                wal_flush_interval: cfg.wal_flush_interval,
                logless: cfg.kind.logless(),
                obs: NodeObs::new(),
                obs_pull: None,
            };
            std::thread::spawn(move || node_main::<P>(env))
        })
        .collect();

    let client_handles: Vec<_> = done_rxs
        .into_iter()
        .enumerate()
        .map(|(client, rx)| {
            let transport = make_transport("client");
            let cfg = cfg.clone();
            std::thread::spawn(move || client_main::<P>(client, &cfg, epoch, transport, rx))
        })
        .collect();

    let client_returns: Vec<ClientReturn> = client_handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();
    let elapsed = epoch.elapsed();

    for tx in &node_txs {
        let _ = tx.send(ToNode::Shutdown);
    }
    drop(node_txs);
    let node_returns: Vec<NodeReturn> = node_handles
        .into_iter()
        .map(|h| h.join().expect("node thread panicked"))
        .collect();
    for t in tcp_nodes {
        t.shutdown();
    }

    aggregate(cfg, client_returns, node_returns, elapsed, &wire)
}

/// The submitting client encoded in a [`TxnId`] (inverse of
/// [`ServiceConfig::txn_id`]).
fn txn_client(id: TxnId) -> usize {
    ((id >> 32) as usize).saturating_sub(1)
}

/// The per-client sequence number encoded in a [`TxnId`].
fn txn_seq(id: TxnId) -> u64 {
    id & 0xFFFF_FFFF
}

/// Apply every buffered decision to the shard, the staged WAL batch, the
/// node log and the per-client reply batches. Called once per node-loop
/// iteration, and additionally before an `End` garbage-collects a
/// transaction's metadata (a decision and its `End` can land in the same
/// drained batch).
///
/// Durability rides on group commit: records are **staged** into
/// `wal_batch` here and forced once per drain batch in the flush step —
/// before any `Done` staged here can leave the node — so the
/// durability-before-reply invariant is unchanged while the force cost
/// is amortized.
///
/// A logless commit for a crash-recovered transaction (no local
/// yes-vote, so no locks held) must re-take its write locks before the
/// writes can apply — but only when they are **free**. A different live
/// transaction may have prepared (voted yes, taken a lock) at this node
/// since the restart; overwriting its lock would make its own later
/// `finish` silently skip its writes — a lost update diverging the live
/// shard from the sequential replay. Such commits wait in `deferred`
/// until the owner decides and releases the lock (every protocol in the
/// suite terminates by timeout, so it does) and are re-examined on every
/// call. Startup WAL replay is the only place an unconditional
/// [`Shard::relock`] is sound: it runs before any live traffic.
#[allow(clippy::too_many_arguments)]
fn apply_decisions(
    decided: &mut Vec<(TxnId, u64)>,
    deferred: &mut Vec<(TxnId, u64)>,
    meta: &Slab<TxnMeta>,
    shard: &mut Shard,
    log: &mut Vec<NodeRecord>,
    done_out: &mut [Vec<Done>],
    me: ProcessId,
    wal_batch: Option<&mut Vec<WalRecord>>,
    decided_map: &mut HashMap<TxnId, u64>,
    logless: bool,
    obs: &mut NodeObs,
    epoch: Instant,
) {
    let mut wal_batch = wal_batch;
    // Deferred decisions are re-examined ahead of the new batch: the
    // lock owner that blocked them may have finished since.
    if !deferred.is_empty() {
        deferred.extend(decided.drain(..));
        std::mem::swap(decided, deferred);
    }
    loop {
        let mut progress = false;
        let mut blocked: Vec<(TxnId, u64)> = Vec::new();
        for (txn_id, value) in decided.drain(..) {
            if decided_map.contains_key(&txn_id) {
                continue; // duplicate (e.g. StatusA raced the protocol decide)
            }
            let Some(m) = meta.get(txn_id) else {
                continue;
            };
            let commit = value == COMMIT;
            // Logless vote reconstruction: a commit proves every
            // participant voted yes (commit validity), so journal yes even
            // if this node re-joined the transaction voteless after a
            // crash — the protocol decided on the pre-crash yes its peers
            // hold.
            let vote = if logless { m.vote || commit } else { m.vote };
            if logless && commit && !m.vote {
                // The pre-crash yes-vote's locks died with the crash and
                // the re-joined transaction holds none. Re-take them only
                // if no live transaction owns one (see the fn docs).
                if shard.foreign_lock_owner(&m.txn).is_some() {
                    blocked.push((txn_id, value));
                    continue;
                }
                shard.relock(&m.txn);
            }
            shard.finish(&m.txn, commit);
            if let Some(batch) = wal_batch.as_deref_mut() {
                let t0 = Instant::now();
                if logless {
                    // The deferred prepare record: staged together with
                    // the decision, after the outcome is known — a journal
                    // entry, not a critical-path force.
                    batch.push(WalRecord::Prepare {
                        txn: Arc::clone(&m.txn),
                        client: m.client,
                        vote,
                    });
                }
                batch.push(WalRecord::Decide { txn: txn_id, value });
                obs.record(Stage::WalJournal, t0.elapsed());
            }
            obs.flight.record(
                txn_id,
                me as u32,
                FlightStage::Decided,
                Instant::now().saturating_duration_since(epoch),
            );
            decided_map.insert(txn_id, value);
            log.push(NodeRecord {
                txn: Arc::clone(&m.txn),
                client: m.client,
                vote,
                decision: value,
            });
            if let Some(buf) = done_out.get_mut(m.client) {
                buf.push(Done {
                    txn: txn_id,
                    node: me,
                    decision: value,
                });
            }
            progress = true;
        }
        // An apply in this pass may have released the very lock a
        // blocked decision waits on — retry until quiescent.
        if blocked.is_empty() || !progress {
            *deferred = blocked;
            break;
        }
        *decided = blocked;
    }
}

/// One node thread: shard owner + instance demultiplexer, batched
/// drain-then-dispatch, with fault-policy flush and crash/restart (see the
/// module docs).
pub(crate) fn node_main<P>(env: NodeEnv<P>) -> NodeReturn
where
    P: CommitProtocol,
    P::Msg: Send + 'static,
{
    let NodeEnv {
        me,
        n,
        f,
        unit,
        epoch,
        rx,
        mut transport,
        done_txs,
        wire,
        policy,
        window,
        wal,
        wal_flush_interval,
        logless,
        mut obs,
        obs_pull,
    } = env;
    let mut node: NodeLoop<P> = NodeLoop::new(me, n, UnitClock::new(unit));
    let mut shard = Shard::new(me);
    // txn -> (body, client, vote, participant routing); live while open.
    let mut meta: Slab<TxnMeta> = Slab::new();
    // Envelopes that outran their Begin (first few inline, no allocation);
    // senders recorded as global node ids, translated on drain.
    let mut pending: Slab<InlineVec<(ProcessId, P::Msg)>> = Slab::new();
    // Per-client Begin watermark: the highest per-client sequence number
    // this node has opened. Each client's control stream is FIFO (one
    // channel sender per client), so a protocol envelope whose seq is at
    // or below the watermark and whose instance is not open belongs to an
    // *ended* (or crash-lost) transaction — a late straggler to drop; the
    // recovery path resolves crash-lost ones via client retries.
    let mut begun: Vec<u64> = vec![0; done_txs.len()];
    let mut log: Vec<NodeRecord> = Vec::new();
    let mut decided: Vec<(TxnId, u64)> = Vec::new();
    // Logless recovered commits waiting for a live lock owner to finish
    // before they can relock and apply (see `apply_decisions`).
    let mut deferred: Vec<(TxnId, u64)> = Vec::new();
    // Decisions applied and not yet End-ed: answers StatusQ, deduplicates
    // retried Begins, survives into the recovery path via the WAL.
    let mut decided_map: HashMap<TxnId, u64> = HashMap::new();
    // Reused batch buffers: inbound drain, per-peer outbound envelopes,
    // per-client decision replies, and the self-delivery queue.
    let mut inbox: Vec<ToNode<P::Msg>> = Vec::with_capacity(NODE_BATCH);
    let mut outbox: Vec<Vec<ToNode<P::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut done_out: Vec<Vec<Done>> = (0..done_txs.len()).map(|_| Vec::new()).collect();
    let mut selfq: VecDeque<(TxnId, P::Msg)> = VecDeque::new();
    // Envelopes held back by Fate::Delay, released at their due instant.
    let mut delayed: BinaryHeap<DelayedEnv<P::Msg>> = BinaryHeap::new();
    // Per-destination envelope counters feeding the policy's seeded RNG.
    let mut net_seq: Vec<u64> = vec![0; n];
    let mut spurious_wakeups = 0usize;
    let mut dropped_messages = 0usize;
    let mut delayed_messages = 0usize;
    let mut orphaned_envelopes = 0usize;
    let mut wal_prepare_forces = 0usize;
    let mut wal_forces = 0usize;
    // Group-commit staging: records accumulated across this iteration's
    // dispatch (Begin prepares and applied decisions), forced into the
    // shared WAL **once** at the top of the flush step — before any
    // envelope or reply that depends on them can leave the node. The
    // buffer is node-thread state, i.e. *volatile*: a crash loses the
    // unforced tail, which by construction only ever covers transactions
    // whose votes/replies were never sent (= unacknowledged).
    let mut wal_batch: Vec<WalRecord> = Vec::new();
    // Prepare txn ids staged in `wal_batch`, stamped `WalForced` when the
    // batch actually forces.
    let mut wal_stamp: Vec<TxnId> = Vec::new();
    // Last durability point, for the optional time-based flush cap.
    let mut last_force = Instant::now();
    let mut crashed = false;
    let mut skip_wait = false;
    let mut shutdown = false;

    // Route one NodeLoop effect: remote sends are *staged* into the
    // per-peer outbox (flushed once per iteration as a batch, through the
    // fault policy), self-sends go through the in-memory queue without
    // touching any channel, and decisions are buffered and applied after
    // the engine call returns. `Send.to` is an instance-local *rank*,
    // translated to a global node id through the transaction's metadata.
    macro_rules! sink {
        () => {
            |ev: NodeEvent<P::Msg>| match ev {
                NodeEvent::Send { instance, to, msg } => {
                    let Some(m) = meta.get(instance) else { return };
                    let Some(&global) = m.parts.get(to) else {
                        return;
                    };
                    if global == me {
                        selfq.push_back((instance, msg));
                    } else {
                        outbox[global].push(ToNode::Net {
                            txn: instance,
                            from: me,
                            msg,
                        });
                    }
                }
                NodeEvent::Decided { instance, value } => decided.push((instance, value)),
            }
        };
    }

    while !shutdown {
        // 0. Scheduled crash: drop all volatile state, go dark until the
        //    restart offset, then recover from the write-ahead log.
        if let Some(w) = window {
            if !crashed && Instant::now() >= epoch + w.down_after {
                crashed = true;
                node.reset();
                meta = Slab::new();
                pending = Slab::new();
                decided.clear();
                deferred.clear();
                decided_map.clear();
                selfq.clear();
                delayed.clear();
                for b in outbox.iter_mut() {
                    b.clear();
                }
                for b in done_out.iter_mut() {
                    b.clear();
                }
                log.clear();
                shard = Shard::new(me);
                begun.iter_mut().for_each(|w| *w = 0);
                // The staged-but-unforced WAL tail is node-thread memory
                // and dies with the crash: exactly the records whose
                // dependent envelopes/replies never left the node, so
                // only unacknowledged transactions are lost.
                wal_batch.clear();
                wal_stamp.clear();

                // Dead window: every envelope sent to a dead node is lost.
                let up_at = w.up_after.map(|u| epoch + u);
                'dead: loop {
                    inbox.clear();
                    let got = match up_at {
                        Some(t) => {
                            let left = t.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                break 'dead;
                            }
                            match rx.recv_batch_timeout(&mut inbox, NODE_BATCH, left) {
                                Ok(k) => k,
                                Err(RecvTimeoutError::Timeout) => 0,
                                Err(RecvTimeoutError::Disconnected) => {
                                    shutdown = true;
                                    break 'dead;
                                }
                            }
                        }
                        None => match rx.recv_batch(&mut inbox, NODE_BATCH) {
                            Ok(k) => k,
                            Err(RecvError) => {
                                shutdown = true;
                                break 'dead;
                            }
                        },
                    };
                    if got > 0 && inbox.drain(..).any(|e| matches!(e, ToNode::Shutdown)) {
                        shutdown = true;
                        break 'dead;
                    }
                }
                if shutdown {
                    break;
                }
                // Discard whatever piled up while dead (it was addressed to
                // a dead node), then recover.
                inbox.clear();
                while rx.try_drain(&mut inbox, NODE_BATCH) > 0 {
                    if inbox.drain(..).any(|e| matches!(e, ToNode::Shutdown)) {
                        shutdown = true;
                    }
                }
                if shutdown {
                    break;
                }
                if let Some(wal) = &wal {
                    let rec = wal.lock().expect("wal poisoned").replay(me);
                    shard = rec.shard;
                    let now = Instant::now();
                    for d in &rec.decided {
                        decided_map.insert(d.txn.id, d.value);
                        if let Some(w) = begun.get_mut(d.client) {
                            *w = (*w).max(txn_seq(d.txn.id));
                        }
                        log.push(NodeRecord {
                            txn: Arc::clone(&d.txn),
                            client: d.client,
                            vote: d.vote,
                            decision: d.value,
                        });
                        // Re-report: the pre-crash Done may never have been
                        // flushed (clients deduplicate).
                        if let Some(buf) = done_out.get_mut(d.client) {
                            buf.push(Done {
                                txn: d.txn.id,
                                node: me,
                                decision: d.value,
                            });
                        }
                    }
                    for p in rec.in_flight {
                        let parts = participants_of(&p.txn, n);
                        let Some(my_rank) = parts.iter().position(|&q| q == me) else {
                            continue;
                        };
                        let k = parts.len();
                        let f_eff = f.min(k - 1);
                        if let Some(w) = begun.get_mut(p.client) {
                            *w = (*w).max(txn_seq(p.txn.id));
                        }
                        let id = p.txn.id;
                        // Ask peers whether the instance decided while we
                        // were down; re-join it either way with the
                        // *logged* vote (never re-validated — peers may
                        // have acted on it).
                        for &q in parts.iter().filter(|&&q| q != me) {
                            outbox[q].push(ToNode::StatusQ { txn: id, from: me });
                        }
                        meta.insert(
                            id,
                            TxnMeta {
                                txn: p.txn,
                                client: p.client,
                                vote: p.vote,
                                parts,
                                my_rank,
                            },
                        );
                        node.open_as(
                            id,
                            P::new(my_rank, k, f_eff, p.vote),
                            my_rank,
                            k,
                            now,
                            &mut sink!(),
                        );
                    }
                }
                skip_wait = true; // flush recovery traffic immediately
            }
        }

        // 1. Drain: park until the exact next deadline — earliest pending
        //    timer, delayed-envelope release or scheduled crash; or
        //    indefinitely when none is pending (an inbound envelope or
        //    Shutdown wakes us) — then take the whole backlog in one lock
        //    acquisition.
        inbox.clear();
        let mut wake_at: Option<Instant> = node.next_due();
        if let Some(d) = delayed.peek() {
            wake_at = Some(wake_at.map_or(d.due, |w| w.min(d.due)));
        }
        // A held-back staged WAL batch must force (and release the flush
        // it gates) no later than the time cap.
        if let Some(iv) = wal_flush_interval {
            if !wal_batch.is_empty() {
                let at = last_force + iv;
                wake_at = Some(wake_at.map_or(at, |x| x.min(at)));
            }
        }
        if let Some(w) = window {
            if !crashed {
                let at = epoch + w.down_after;
                wake_at = Some(wake_at.map_or(at, |x| x.min(at)));
            }
        }
        let got = if skip_wait {
            skip_wait = false;
            rx.try_drain(&mut inbox, NODE_BATCH)
        } else {
            match wake_at {
                Some(due) => {
                    let wait = due.saturating_duration_since(Instant::now());
                    match rx.recv_batch_timeout(&mut inbox, NODE_BATCH, wait) {
                        Ok(k) => k,
                        Err(RecvTimeoutError::Timeout) => 0,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match rx.recv_batch(&mut inbox, NODE_BATCH) {
                    Ok(k) => k,
                    Err(RecvError) => break,
                },
            }
        };

        // 2. Dispatch every envelope through the demultiplexer. One clock
        //    read serves the whole batch: dispatch takes microseconds
        //    against multi-millisecond virtual-time units, and timers set
        //    "in the past" fire in step 3 anyway.
        let now = Instant::now();
        for env in inbox.drain(..) {
            match env {
                ToNode::Begin { txn, client, retry } => {
                    let id = txn.id;
                    debug_assert_eq!(txn_client(id), client, "TxnId encoding drifted");
                    if let Some(m) = meta.get(id) {
                        // A client retry of a live instance. Decided: just
                        // re-report. Undecided: cooperative termination —
                        // ask the other participants whether they decided
                        // (a partition may have eaten the outcome; for 2PC
                        // this is the only way a blocked participant ever
                        // learns a decision the coordinator reached).
                        match decided_map.get(&id) {
                            Some(&v) => {
                                if let Some(buf) = done_out.get_mut(client) {
                                    buf.push(Done {
                                        txn: id,
                                        node: me,
                                        decision: v,
                                    });
                                }
                            }
                            None => {
                                for &q in m.parts.iter().filter(|&&q| q != me) {
                                    outbox[q].push(ToNode::StatusQ { txn: id, from: me });
                                }
                            }
                        }
                    } else if let Some(&v) = decided_map.get(&id) {
                        // Decided before a crash, recovered from the WAL.
                        if let Some(buf) = done_out.get_mut(client) {
                            buf.push(Done {
                                txn: id,
                                node: me,
                                decision: v,
                            });
                        }
                    } else {
                        let parts = participants_of(&txn, n);
                        let Some(my_rank) = parts.iter().position(|&q| q == me) else {
                            continue; // not a participant: not ours to vote on
                        };
                        if logless && retry {
                            // Ask-before-revote (the Cornus recovery
                            // rule). A *retried* Begin with no local
                            // record means this node either crashed
                            // after voting — the logless vote was
                            // volatile and is gone — or was down when
                            // the original Begin arrived. Either way,
                            // validating afresh could broadcast a vote
                            // contradicting a pre-crash yes that peers
                            // already assembled into a commit: a split
                            // decision. So the node never re-votes. It
                            // re-joins the transaction voteless and
                            // with no protocol instance, asks the
                            // peers, and adopts whatever decision the
                            // surviving vote vectors produced
                            // (`StatusA`). Peers missing this node's
                            // vote timeout-abort on their own, so some
                            // peer always has an answer for a later
                            // retry round.
                            if let Some(w) = begun.get_mut(client) {
                                *w = (*w).max(txn_seq(id));
                            }
                            for &q in parts.iter().filter(|&&q| q != me) {
                                outbox[q].push(ToNode::StatusQ { txn: id, from: me });
                            }
                            meta.insert(
                                id,
                                TxnMeta {
                                    txn,
                                    client,
                                    vote: false,
                                    parts,
                                    my_rank,
                                },
                            );
                            continue;
                        }
                        obs.flight.record(
                            id,
                            me as u32,
                            FlightStage::Dispatch,
                            now.saturating_duration_since(epoch),
                        );
                        let vote = if txn.touches(me) {
                            let t0 = Instant::now();
                            let v = shard.prepare(&txn);
                            obs.record(Stage::LockAcquire, t0.elapsed());
                            v
                        } else {
                            true
                        };
                        obs.flight.record(
                            id,
                            me as u32,
                            FlightStage::LockAcquired,
                            Instant::now().saturating_duration_since(epoch),
                        );
                        // The classic commit-latency tax: the vote must be
                        // durable before it can influence a decision.
                        // Group commit keeps the invariant but moves the
                        // cost: the prepare is *staged* here and forced —
                        // together with everything else this drain batch
                        // staged — at the top of the flush step, strictly
                        // before the vote envelope leaves the node. A
                        // logless protocol replicates the vote to its
                        // peers instead and skips even the staging — the
                        // prepare is journaled later, alongside the
                        // decision, off the critical path.
                        if !logless && wal.is_some() {
                            wal_batch.push(WalRecord::Prepare {
                                txn: Arc::clone(&txn),
                                client,
                                vote,
                            });
                            wal_stamp.push(id);
                            wal_prepare_forces += 1;
                        }
                        if let Some(w) = begun.get_mut(client) {
                            *w = (*w).max(txn_seq(id));
                        }
                        let k = parts.len();
                        let f_eff = f.min(k - 1);
                        let parts_c = parts.clone();
                        meta.insert(
                            id,
                            TxnMeta {
                                txn,
                                client,
                                vote,
                                parts,
                                my_rank,
                            },
                        );
                        node.open_as(
                            id,
                            P::new(my_rank, k, f_eff, vote),
                            my_rank,
                            k,
                            now,
                            &mut sink!(),
                        );
                        if let Some(early) = pending.remove(id) {
                            for (from_global, msg) in early {
                                if let Some(rk) = parts_c.iter().position(|&q| q == from_global) {
                                    let _ = node.deliver(id, rk, msg, now, &mut sink!());
                                }
                            }
                        }
                    }
                }
                ToNode::Net { txn, from, msg } => {
                    // Translate the sender's global id to its instance
                    // rank; `offer` then resolves the instance in one slab
                    // probe. A miss with metadata present means the
                    // instance already concluded locally (e.g. a StatusA
                    // adoption closed it) — the straggler is moot. Without
                    // metadata it is either early (seq above the client's
                    // watermark: buffer it) or ended (drop it).
                    let rank = meta
                        .get(txn)
                        .and_then(|m| m.parts.iter().position(|&q| q == from));
                    match rank {
                        Some(rk) => {
                            let _ = node.offer(txn, rk, msg, now, &mut sink!());
                        }
                        None if !meta.contains(txn) => {
                            let early =
                                begun.get(txn_client(txn)).is_none_or(|&w| txn_seq(txn) > w);
                            if early {
                                match pending.get_mut(txn) {
                                    Some(buf) if buf.len() >= ORPHAN_CAP => {
                                        // Bounded pre-open buffering: a
                                        // flood of envelopes outrunning
                                        // their Begin must not grow
                                        // memory without limit.
                                        orphaned_envelopes += 1;
                                    }
                                    Some(buf) => buf.push((from, msg)),
                                    None => {
                                        let mut buf = InlineVec::new();
                                        buf.push((from, msg));
                                        pending.insert(txn, buf);
                                    }
                                }
                            }
                        }
                        None => {} // sender is not a participant: drop
                    }
                }
                ToNode::StatusQ { txn, from } => {
                    if let Some(&v) = decided_map.get(&txn) {
                        if from < n && from != me {
                            outbox[from].push(ToNode::StatusA { txn, value: v });
                        }
                    }
                    // Undecided or unknown: stay silent; the querier keeps
                    // its own protocol instance (or its client's retries)
                    // as the fallback.
                }
                ToNode::StatusA { txn, value } => {
                    // Adopt a peer's decision for an open, undecided
                    // instance — or for a voteless recovered transaction
                    // that deliberately has no instance at all (the
                    // logless ask-before-revote path). Agreement makes
                    // adoption safe; closing the automaton (when one
                    // exists) keeps it from deciding a second time later.
                    if meta.contains(txn)
                        && !decided_map.contains_key(&txn)
                        && !decided.iter().any(|&(t, _)| t == txn)
                        && !deferred.iter().any(|&(t, _)| t == txn)
                    {
                        node.close(txn);
                        decided.push((txn, value));
                    }
                }
                ToNode::End { txn } => {
                    // A decision for `txn` computed earlier in this same
                    // drained batch is still buffered — apply it before
                    // dropping the metadata, or the shard would keep its
                    // write locks forever.
                    if !decided.is_empty() {
                        apply_decisions(
                            &mut decided,
                            &mut deferred,
                            &meta,
                            &mut shard,
                            &mut log,
                            &mut done_out,
                            me,
                            wal.is_some().then_some(&mut wal_batch),
                            &mut decided_map,
                            logless,
                            &mut obs,
                            epoch,
                        );
                    }
                    node.close(txn);
                    meta.remove(txn);
                    pending.remove(txn);
                    decided_map.remove(&txn);
                }
                ToNode::ObsPull { client } => {
                    // Snapshot what the thread has recorded so far. The
                    // bulk fold-ins below (lock residency, timer lag,
                    // socket-write time) land at node exit, so a mid-run
                    // pull sees the flight recorder and histograms — all
                    // attribution needs — with meters still accruing.
                    if let Some(tx) = &obs_pull {
                        let export = ObsExport::snapshot(me as u32, &obs, None);
                        let _ = tx.send((client, export));
                    }
                }
                ToNode::Shutdown => shutdown = true,
            }
        }
        if got > 0 {
            // Backlog residency: how long the drained batch sat between
            // leaving the inbox and finishing protocol dispatch.
            obs.record(Stage::DrainGap, now.elapsed());
        }

        // 3. Self-deliveries and due timers, to quiescence: a delivery can
        //    set a timer already due, a fired timer can self-send. Timers
        //    fire **one at a time** with the self-queue drained between
        //    fires: a starved thread can owe a protocol both its 1U and 2U
        //    timers at once, and the 2U handler must see the self-sends
        //    the 1U handler produced (per-process causality — the split
        //    INBAC decisions of ISSUE-5's chaos bring-up came from firing
        //    them back to back).
        let mut fired_any = false;
        loop {
            let now = Instant::now();
            while let Some((txn, msg)) = selfq.pop_front() {
                // A miss means the instance ended mid-batch; the message
                // is then moot (the old dropped-late-envelope semantics).
                let rank = meta.get(txn).map(|m| m.my_rank);
                if let Some(rk) = rank {
                    let _ = node.deliver(txn, rk, msg, now, &mut sink!());
                }
            }
            if node.fire_next(now, &mut sink!()) {
                fired_any = true;
            } else if selfq.is_empty() {
                break;
            }
        }

        // 4. Apply buffered decisions outside the engine borrow and stage
        //    the per-client replies.
        apply_decisions(
            &mut decided,
            &mut deferred,
            &meta,
            &mut shard,
            &mut log,
            &mut done_out,
            me,
            wal.is_some().then_some(&mut wal_batch),
            &mut decided_map,
            logless,
            &mut obs,
            epoch,
        );

        // 5. Flush. Delay-released envelopes first (already judged by the
        //    policy — they bypass it; their dependent records were forced
        //    the iteration that staged them), then the group-commit WAL
        //    force, then one send_batch (one lock, at most one wakeup)
        //    per destination with traffic this iteration, each envelope
        //    passing through the fault policy.
        let flush_now = Instant::now();
        let mut released = 0usize;
        let mut flushed = 0usize;
        let mut forced = 0usize;
        while delayed.peek().is_some_and(|d| d.due <= flush_now) {
            let d = delayed.pop().expect("peeked");
            wire.fetch_add(1, Ordering::Relaxed);
            transport.send(d.to, d.env);
            released += 1;
        }

        // 5a. Group commit: everything this iteration staged — Begin-path
        //     prepares and applied decisions — becomes durable in **one**
        //     force, strictly before any envelope or client reply that
        //     depends on it leaves the node. The optional time cap holds
        //     the force (and the flush it gates) back so a single force
        //     can absorb several drain batches; a held batch is volatile,
        //     so nothing staged may escape until it forces. Shutdown
        //     always forces: the post-run audit reads the WAL.
        let hold = wal_flush_interval
            .is_some_and(|iv| !wal_batch.is_empty() && !shutdown && last_force.elapsed() < iv);
        if !wal_batch.is_empty() && !hold {
            if let Some(wal) = &wal {
                let t0 = Instant::now();
                wal.lock()
                    .expect("wal poisoned")
                    .force_batch(&mut wal_batch);
                obs.record(Stage::WalForce, t0.elapsed());
                let at = Instant::now().saturating_duration_since(epoch);
                for id in wal_stamp.drain(..) {
                    obs.flight.record(id, me as u32, FlightStage::WalForced, at);
                }
                wal_forces += 1;
                forced = 1;
                last_force = Instant::now();
            } else {
                // No WAL to force into (cleared on a crash-less path
                // only when durability is off, where nothing stages).
                wal_batch.clear();
                wal_stamp.clear();
            }
        }
        if hold {
            // Everything staged this iteration waits on the capped force;
            // only the already-durable delayed releases went out.
            if released > 0 {
                obs.record(Stage::Flush, flush_now.elapsed());
            }
            let crash_pending =
                window.is_some_and(|w| !crashed && Instant::now() >= epoch + w.down_after);
            if got == 0 && !fired_any && released == 0 && !shutdown && !crash_pending {
                spurious_wakeups += 1;
            }
            continue;
        }
        let elapsed = flush_now.saturating_duration_since(epoch);
        for (to, batch) in outbox.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            match &policy {
                None => {
                    wire.fetch_add(batch.len(), Ordering::Relaxed);
                    flushed += batch.len();
                    transport.send_batch(to, batch);
                }
                Some(pol) => {
                    let mut staged: Vec<ToNode<P::Msg>> = Vec::with_capacity(batch.len());
                    for env in batch.drain(..) {
                        let seq = net_seq[to];
                        net_seq[to] += 1;
                        match pol.fate(me, to, elapsed, seq) {
                            Fate::Deliver => staged.push(env),
                            Fate::Drop => dropped_messages += 1,
                            Fate::Delay(d) => {
                                delayed_messages += 1;
                                delayed.push(DelayedEnv {
                                    due: flush_now + d,
                                    seq,
                                    to,
                                    env,
                                });
                            }
                        }
                    }
                    if !staged.is_empty() {
                        wire.fetch_add(staged.len(), Ordering::Relaxed);
                        flushed += staged.len();
                        transport.send_batch(to, &mut staged);
                    }
                }
            }
        }
        for (client, batch) in done_out.iter_mut().enumerate() {
            if !batch.is_empty() {
                flushed += batch.len();
                let _ = done_txs[client].send_batch(batch.drain(..));
            }
        }
        if released + flushed > 0 {
            obs.record(Stage::Flush, flush_now.elapsed());
        }

        // 6. Accounting: a wakeup that moved nothing — no inbound batch,
        //    no fired timer, no WAL force, no outbound flush (the
        //    recovery iteration flushes StatusQ/Done batches with
        //    got == 0, which is real work) — was spurious, unless it woke
        //    us for a scheduled crash the next loop top handles.
        let crash_pending =
            window.is_some_and(|w| !crashed && Instant::now() >= epoch + w.down_after);
        if got == 0
            && !fired_any
            && released == 0
            && flushed == 0
            && forced == 0
            && !shutdown
            && !crash_pending
        {
            spurious_wakeups += 1;
        }
    }
    // A node that dies without restarting still answers the audit with its
    // durable state: what the WAL can rebuild *is* its state. In-flight
    // yes-vote locks are durably recorded (a future restart would re-hold
    // them) but are *released* in this final report: those transactions
    // are already counted as stalled at the client, and the audit's
    // lock-leak check is about resolved transactions, not ones a
    // never-recovering node took to its grave.
    if crashed && log.is_empty() && meta.is_empty() {
        if let Some(wal) = &wal {
            let rec = wal.lock().expect("wal poisoned").replay(me);
            if shard.locked() == 0 && shard.total() == 0 && log.is_empty() {
                shard = rec.shard;
                for p in &rec.in_flight {
                    shard.finish(&p.txn, false);
                }
                log = rec
                    .decided
                    .iter()
                    .map(|d| NodeRecord {
                        txn: Arc::clone(&d.txn),
                        client: d.client,
                        vote: d.vote,
                        decision: d.value,
                    })
                    .collect();
            }
        }
    }
    // Fold in the self-metered layers: lock residency from the shard,
    // timer lag from the demux loop, socket-write time from the
    // transport. These are bulk counters (no per-op histogram).
    let (holds, hold_nanos) = shard.lock_hold_stats();
    obs.meters.add_many(Stage::LockHold, holds, hold_nanos);
    let (fires, lag_nanos) = node.timer_stats();
    obs.meters.add_many(Stage::TimerFire, fires, lag_nanos);
    let (writes, write_nanos) = transport.io_stats();
    obs.meters.add_many(Stage::TcpWrite, writes, write_nanos);
    NodeReturn {
        shard,
        log,
        spurious_wakeups,
        dropped_messages,
        delayed_messages,
        orphaned_envelopes,
        wal_prepare_forces,
        wal_forces,
        obs,
    }
}

/// One outstanding transaction at a client.
struct PendingTxn {
    txn: Arc<Transaction>,
    parts: Vec<usize>,
    decisions: Vec<Option<u64>>,
    got: usize,
    t0: Instant,
    retries: u32,
    next_retry: Instant,
    deadline: Instant,
}

/// One closed-loop client: submit, await all participant decisions with
/// bounded, retrying waits, record, repeat. Unresolved transactions are
/// parked (background retries) so a dead node blocks one transaction, not
/// the whole load stream; abandonment at `txn_deadline` is the last resort
/// and counts as a stall.
pub(crate) fn client_main<P>(
    client: usize,
    cfg: &ServiceConfig,
    epoch: Instant,
    mut transport: Box<dyn Transport<P::Msg>>,
    rx: Receiver<Done>,
) -> ClientReturn
where
    P: CommitProtocol,
    P::Msg: Send + 'static,
{
    let mut gen = WorkloadConfig {
        shards: cfg.n,
        keys_per_shard: cfg.keys_per_shard,
        workload: cfg.workload.clone(),
        seed: cfg.client_seed(client),
    }
    .generator();

    let total = cfg.txns_per_client;
    let mut submitted = 0usize;
    let mut outstanding: Vec<PendingTxn> = Vec::new();
    let mut records = Vec::with_capacity(total);
    let mut events: Vec<TxnEvent> = Vec::with_capacity(total);
    let mut latency = LatencyHistogram::new();
    let mut stalled = 0usize;
    let mut retries = 0usize;
    let mut reply_timeouts = 0usize;
    let mut dbuf: Vec<Done> = Vec::with_capacity(CLIENT_BATCH);
    let mut next_allowed = Instant::now();
    let mut obs = NodeObs::new();

    // Open loop: arrivals fire on a Poisson schedule regardless of
    // completions; a full in-flight window sheds the arrival instead of
    // back-pressuring the schedule. The arrival stream gets its own seed
    // stream so it never aliases the workload draw.
    let mut arrivals = cfg
        .arrival_rate
        .map(|rate| ArrivalSchedule::new(rate, cfg.client_seed(client) ^ 0x5eed_a221));
    let mut offered = 0usize;
    let mut shed = 0usize;
    let mut next_arrival = Instant::now()
        + arrivals
            .as_mut()
            .map_or(Duration::ZERO, ArrivalSchedule::next_gap);

    loop {
        if let Some(sched) = arrivals.as_mut() {
            // Dispatch every arrival whose scheduled instant has passed.
            // Sojourn time is measured from the *scheduled* arrival, so
            // dispatch lag and queueing count against the system.
            while offered < total && Instant::now() >= next_arrival {
                let scheduled = next_arrival;
                next_arrival += sched.next_gap();
                let mut t = gen.next_txn();
                t.id = ServiceConfig::txn_id(client, offered);
                offered += 1;
                if outstanding.len() >= cfg.max_outstanding {
                    shed += 1;
                    continue;
                }
                let txn = Arc::new(t);
                let parts = participants_of(&txn, cfg.n);
                for &p in &parts {
                    transport.send(
                        p,
                        ToNode::Begin {
                            txn: Arc::clone(&txn),
                            client,
                            retry: false,
                        },
                    );
                }
                let k = parts.len();
                let now = Instant::now();
                outstanding.push(PendingTxn {
                    txn,
                    parts,
                    decisions: vec![None; k],
                    got: 0,
                    t0: scheduled,
                    retries: 0,
                    next_retry: now + cfg.reply_timeout,
                    deadline: now + cfg.txn_deadline,
                });
                submitted += 1;
            }
            if offered == total && outstanding.is_empty() {
                break;
            }
        } else {
            // Submit while the closed loop is open: every outstanding
            // transaction is parked, there is room, and pacing allows it.
            loop {
                let now = Instant::now();
                let gate_open = submitted < total
                    && outstanding.len() < cfg.max_outstanding
                    && outstanding.iter().all(|p| p.retries >= cfg.park_retries);
                if !gate_open || now < next_allowed {
                    break;
                }
                let mut t = gen.next_txn();
                t.id = ServiceConfig::txn_id(client, submitted);
                let txn = Arc::new(t);
                let parts = participants_of(&txn, cfg.n);
                for &p in &parts {
                    transport.send(
                        p,
                        ToNode::Begin {
                            txn: Arc::clone(&txn),
                            client,
                            retry: false,
                        },
                    );
                }
                let k = parts.len();
                outstanding.push(PendingTxn {
                    txn,
                    parts,
                    decisions: vec![None; k],
                    got: 0,
                    t0: now,
                    retries: 0,
                    next_retry: now + cfg.reply_timeout,
                    deadline: now + cfg.txn_deadline,
                });
                submitted += 1;
                if let Some(p) = cfg.pacing {
                    next_allowed = now + p;
                }
            }
            if submitted == total && outstanding.is_empty() {
                break;
            }
        }

        // Park on the earliest deadline among: any outstanding retry or
        // abandonment, and whatever gates the next submission — the
        // arrival schedule (open loop) or the pacing gate (closed loop,
        // only when it is what blocks submission).
        let mut due: Option<Instant> = outstanding
            .iter()
            .map(|p| p.next_retry.min(p.deadline))
            .min();
        if arrivals.is_some() {
            if offered < total {
                due = Some(due.map_or(next_arrival, |d| d.min(next_arrival)));
            }
        } else {
            let submit_blocked_on_time = submitted < total
                && outstanding.len() < cfg.max_outstanding
                && outstanding.iter().all(|p| p.retries >= cfg.park_retries);
            if submit_blocked_on_time {
                due = Some(due.map_or(next_allowed, |d| d.min(next_allowed)));
            }
        }
        let wait = due
            .expect("the loop only continues with work pending")
            .saturating_duration_since(Instant::now());
        let t0 = Instant::now();
        match rx.recv_batch_timeout(&mut dbuf, CLIENT_BATCH, wait) {
            Ok(_) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {}
        }
        obs.record(Stage::ClientQueueWait, t0.elapsed());

        // Fold in replies (duplicates from retries/recovery are ignored).
        for d in dbuf.drain(..) {
            let Some(i) = outstanding.iter().position(|p| p.txn.id == d.txn) else {
                continue; // straggler of a completed or abandoned txn
            };
            let p = &mut outstanding[i];
            if let Some(slot) = p.parts.iter().position(|&q| q == d.node) {
                if p.decisions[slot].is_none() {
                    p.decisions[slot] = Some(d.decision);
                    p.got += 1;
                }
            }
            if p.got == p.parts.len() {
                let p = outstanding.swap_remove(i);
                let lat = p.t0.elapsed();
                latency.record_duration(lat);
                let committed = p.decisions[0] == Some(COMMIT);
                events.push(TxnEvent {
                    id: p.txn.id,
                    client,
                    participants: p.parts.len(),
                    submitted_at: p.t0.saturating_duration_since(epoch),
                    decided_at: Some(p.t0.saturating_duration_since(epoch) + lat),
                    committed: Some(committed),
                    retries: p.retries,
                    // Filled by `aggregate` from the merged flight events.
                    first_protocol_at: None,
                    votes_held_at: None,
                    journaled_at: None,
                });
                for &q in &p.parts {
                    transport.send(q, ToNode::End { txn: p.txn.id });
                }
                records.push(ClientRecord {
                    txn: p.txn,
                    decisions: p.decisions,
                });
            }
        }

        // Expired waits: re-send Begin (bounded, counted) or abandon at
        // the hard deadline.
        let now = Instant::now();
        let mut i = 0;
        while i < outstanding.len() {
            if now >= outstanding[i].deadline {
                let p = outstanding.swap_remove(i);
                stalled += 1;
                reply_timeouts += 1;
                events.push(TxnEvent {
                    id: p.txn.id,
                    client,
                    participants: p.parts.len(),
                    submitted_at: p.t0.saturating_duration_since(epoch),
                    decided_at: None,
                    committed: None,
                    retries: p.retries,
                    first_protocol_at: None,
                    votes_held_at: None,
                    journaled_at: None,
                });
                records.push(ClientRecord {
                    txn: p.txn,
                    decisions: p.decisions,
                });
                continue;
            }
            if now >= outstanding[i].next_retry {
                let p = &mut outstanding[i];
                reply_timeouts += 1;
                retries += 1;
                p.retries += 1;
                p.next_retry = now + cfg.reply_timeout;
                for &q in &p.parts {
                    transport.send(
                        q,
                        ToNode::Begin {
                            txn: Arc::clone(&p.txn),
                            client,
                            retry: true,
                        },
                    );
                }
            }
            i += 1;
        }
    }
    ClientReturn {
        records,
        events,
        latency,
        stalled,
        retries,
        reply_timeouts,
        offered: if arrivals.is_some() {
            offered
        } else {
            submitted
        },
        shed,
        obs,
    }
}

/// Merge per-thread results and audit safety.
fn aggregate(
    cfg: &ServiceConfig,
    client_returns: Vec<ClientReturn>,
    node_returns: Vec<NodeReturn>,
    elapsed: Duration,
    wire: &AtomicUsize,
) -> ServiceOutcome {
    let mut latency = LatencyHistogram::new();
    let mut stalled = 0;
    let mut retries = 0;
    let mut reply_timeouts = 0;
    let mut txns = 0;
    let mut committed = 0;
    let mut aborted = 0;
    let mut violations = Vec::new();
    let mut txn_events = Vec::new();
    let spurious_wakeups = node_returns.iter().map(|r| r.spurious_wakeups).sum();
    let dropped_messages = node_returns.iter().map(|r| r.dropped_messages).sum();
    let delayed_messages = node_returns.iter().map(|r| r.delayed_messages).sum();
    let orphaned_envelopes = node_returns.iter().map(|r| r.orphaned_envelopes).sum();
    let wal_prepare_forces = node_returns.iter().map(|r| r.wal_prepare_forces).sum();
    let wal_forces = node_returns.iter().map(|r| r.wal_forces).sum();
    let mut offered = 0;
    let mut shed = 0;

    // Merge the observability bundles: meters and histograms fold exactly
    // (merge ≡ recording the concatenation); flight events concatenate
    // into one cross-node record.
    let stage_meters = ObsMeters::new();
    let mut stage_hists = StageHistograms::new();
    let mut flight: Vec<FlightEvent> = Vec::new();
    let mut dropped_events = 0u64;
    for r in &node_returns {
        stage_meters.merge(&r.obs.meters);
        stage_hists.merge(&r.obs.hists);
        dropped_events += r.obs.flight.dropped();
        flight.extend_from_slice(r.obs.flight.events());
    }

    // Cross-node view: txn -> (votes, decisions) as logged by each node.
    let mut by_txn: HashMap<TxnId, (Vec<bool>, Vec<u64>)> = HashMap::new();
    for ret in &node_returns {
        for rec in &ret.log {
            let e = by_txn.entry(rec.txn.id).or_default();
            e.0.push(rec.vote);
            e.1.push(rec.decision);
        }
    }

    for cr in client_returns {
        latency.merge(&cr.latency);
        stage_meters.merge(&cr.obs.meters);
        stage_hists.merge(&cr.obs.hists);
        stalled += cr.stalled;
        retries += cr.retries;
        reply_timeouts += cr.reply_timeouts;
        offered += cr.offered;
        shed += cr.shed;
        txn_events.extend(cr.events);
        for rec in &cr.records {
            let full = rec.decisions.iter().all(|d| d.is_some());
            if !full {
                continue; // counted in `stalled`
            }
            // One decision slot per participant, sized by the client.
            let k = rec.decisions.len();
            txns += 1;
            let mut vals: Vec<u64> = rec.decisions.iter().flatten().copied().collect();
            vals.sort_unstable();
            vals.dedup();
            if vals.len() != 1 {
                violations.push(format!("txn {}: split decision {vals:?}", rec.txn.id));
                continue;
            }
            let commit = vals[0] == COMMIT;
            if commit {
                committed += 1;
            } else {
                aborted += 1;
            }
            match by_txn.get(&rec.txn.id) {
                Some((votes, decisions)) => {
                    if votes.len() != k {
                        violations.push(format!(
                            "txn {}: {} of {} participants logged a decision",
                            rec.txn.id,
                            votes.len(),
                            k
                        ));
                    }
                    if decisions.iter().any(|&d| d != vals[0]) {
                        violations.push(format!(
                            "txn {}: node logs disagree with client view",
                            rec.txn.id
                        ));
                    }
                    if commit && votes.iter().any(|&v| !v) {
                        violations.push(format!(
                            "txn {}: committed despite a missing yes-vote",
                            rec.txn.id
                        ));
                    }
                }
                None => violations.push(format!("txn {}: no node logged it", rec.txn.id)),
            }
        }
    }
    for (p, ret) in node_returns.iter().enumerate() {
        if ret.shard.locked() != 0 {
            violations.push(format!(
                "shard {p}: {} lock(s) still held after the run",
                ret.shard.locked()
            ));
        }
    }

    let (shards, node_logs): (Vec<Shard>, Vec<Vec<NodeRecord>>) =
        node_returns.into_iter().map(|r| (r.shard, r.log)).unzip();

    // Per-txn lifecycle stamps and the five-stage attribution, from the
    // merged flight record plus the clients' submit/reply endpoints.
    let nanos = |d: Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    let lcs = lifecycles(&flight);
    for ev in &mut txn_events {
        if let Some(l) = lcs.get(&ev.id) {
            ev.first_protocol_at = l.first_protocol_nanos.map(Duration::from_nanos);
            ev.votes_held_at = l.votes_held_nanos.map(Duration::from_nanos);
            ev.journaled_at = l.journaled_nanos.map(Duration::from_nanos);
        }
    }
    let decided_list: Vec<(u64, u64, u64)> = txn_events
        .iter()
        .filter_map(|e| {
            e.decided_at
                .map(|d| (e.id, nanos(e.submitted_at), nanos(d)))
        })
        .collect();
    let attribution = Attribution::compute(&decided_list, &flight, SLOWEST_KEPT, dropped_events);

    ServiceOutcome {
        kind: cfg.kind,
        clients: cfg.clients,
        txns,
        committed,
        aborted,
        stalled,
        offered,
        shed,
        elapsed,
        latency,
        wire_messages: wire.load(Ordering::Relaxed),
        dropped_messages,
        delayed_messages,
        retries,
        reply_timeouts,
        spurious_wakeups,
        orphaned_envelopes,
        wal_prepare_forces,
        wal_forces,
        shards,
        node_logs,
        txn_events,
        stage_meters,
        stage_hists,
        attribution,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(kind: ProtocolKind) -> ServiceConfig {
        ServiceConfig::new(4, 1, kind)
            .clients(2)
            .txns_per_client(5)
            .unit(Duration::from_millis(10))
    }

    fn bare_env<P: CommitProtocol>(
        me: ProcessId,
        n: usize,
        rx: Receiver<ToNode<P::Msg>>,
        txs: Vec<Sender<ToNode<P::Msg>>>,
        done_txs: Vec<Sender<Done>>,
        wire: Arc<AtomicUsize>,
    ) -> NodeEnv<P>
    where
        P::Msg: Send + 'static,
    {
        NodeEnv {
            me,
            n,
            f: 1,
            unit: Duration::from_millis(5),
            epoch: Instant::now(),
            rx,
            transport: Box::new(ChannelTransport::new(txs)),
            done_txs,
            wire,
            policy: None,
            window: None,
            wal: None,
            wal_flush_interval: None,
            logless: false,
            obs: NodeObs::new(),
            obs_pull: None,
        }
    }

    #[test]
    fn inbac_serves_uniform_load_safely() {
        let out = run_service(&quick(ProtocolKind::Inbac));
        assert_eq!(out.stalled, 0);
        assert_eq!(out.txns, 10);
        assert!(out.is_safe(), "{:?}", out.violations);
        assert!(out.committed + out.aborted == 10);
        assert_eq!(out.latency.count(), 10);
        assert!(out.wire_messages > 0);
        assert_eq!(out.retries, 0, "healthy runs never need Begin retries");
        assert_eq!(out.reply_timeouts, 0);
    }

    /// A decision and the `End` that garbage-collects its transaction can
    /// land in the **same drained batch**. The decision must still be
    /// applied — logged, reported, shard finished — before the metadata
    /// goes away.
    #[test]
    fn decision_and_end_in_one_drained_batch_still_applies_the_decision() {
        /// Minimal commit protocol deciding COMMIT on the first message.
        struct DecideOnMsg;
        impl ac_sim::Automaton for DecideOnMsg {
            type Msg = ();
            fn on_start(&mut self, _: &mut ac_sim::Ctx<()>) {}
            fn on_message(&mut self, _: ProcessId, _: (), ctx: &mut ac_sim::Ctx<()>) {
                ctx.decide(COMMIT);
            }
            fn on_timer(&mut self, _: u32, _: &mut ac_sim::Ctx<()>) {}
        }
        impl CommitProtocol for DecideOnMsg {
            const NAME: &'static str = "decide-on-msg";
            fn new(_: ProcessId, _: usize, _: usize, _: bool) -> Self {
                DecideOnMsg
            }
        }

        let (tx0, rx0) = unbounded::<ToNode<()>>();
        let (tx1, _rx1) = unbounded::<ToNode<()>>(); // peer inbox, kept alive
        let (done_tx, done_rx) = unbounded::<Done>();
        let wire = Arc::new(AtomicUsize::new(0));
        let handle = {
            let txs = vec![tx0.clone(), tx1];
            let env = bare_env::<DecideOnMsg>(0, 2, rx0, txs, vec![done_tx], wire);
            std::thread::spawn(move || node_main::<DecideOnMsg>(env))
        };

        let id = ServiceConfig::txn_id(0, 0);
        assert!(tx0
            .send(ToNode::Begin {
                txn: Arc::new(Transaction::new(id)),
                client: 0,
                retry: false,
            })
            .is_ok());
        std::thread::sleep(Duration::from_millis(20)); // Begin processed alone
                                                       // The deciding message and the End arrive in one drained batch.
        assert!(tx0
            .send_batch([
                ToNode::Net {
                    txn: id,
                    from: 1,
                    msg: (),
                },
                ToNode::End { txn: id },
            ])
            .is_ok());
        let done = done_rx
            .recv_timeout(Duration::from_secs(2))
            .expect("the batched decision must still reach the client");
        assert_eq!(done.txn, id);
        assert_eq!(done.decision, COMMIT);
        assert!(tx0.send(ToNode::Shutdown).is_ok());
        let ret = handle.join().expect("node thread panicked");
        assert_eq!(ret.log.len(), 1, "decision must be logged");
        assert_eq!(ret.log[0].decision, COMMIT);
        assert_eq!(ret.shard.locked(), 0, "no lock may leak");
    }

    /// A crash-recovered logless commit re-joined voteless holds no write
    /// locks; if a **live** transaction prepared on one of its keys since
    /// the restart, re-taking the lock unconditionally would let the live
    /// owner's later `finish` silently skip its writes — a lost update.
    /// The commit must instead wait in `deferred` until the lock is free,
    /// then apply.
    #[test]
    fn recovered_logless_commit_defers_instead_of_stealing_live_locks() {
        use ac_txn::{Key, Version};

        let mut shard = Shard::new(0);
        let mut meta: Slab<TxnMeta> = Slab::new();

        // Live txn B prepared here: voted yes, holds the lock on key 7.
        let b_id = ServiceConfig::txn_id(0, 2);
        let txn_b = Arc::new(Transaction::new(b_id).with_write(Key::new(0, 7), 5));
        assert!(shard.prepare(&txn_b));
        meta.insert(
            b_id,
            TxnMeta {
                txn: Arc::clone(&txn_b),
                client: 0,
                vote: true,
                parts: vec![0],
                my_rank: 0,
            },
        );

        // Txn A re-joined voteless after a crash (pre-crash yes-vote's
        // locks died with the process); the protocol decided Commit on
        // the yes its peers still hold.
        let a_id = ServiceConfig::txn_id(0, 1);
        let txn_a = Arc::new(Transaction::new(a_id).with_write(Key::new(0, 7), 9));
        meta.insert(
            a_id,
            TxnMeta {
                txn: Arc::clone(&txn_a),
                client: 0,
                vote: false,
                parts: vec![0],
                my_rank: 0,
            },
        );

        let mut decided = vec![(a_id, COMMIT)];
        let mut deferred = Vec::new();
        let mut log = Vec::new();
        let mut done_out: Vec<Vec<Done>> = vec![Vec::new()];
        let mut decided_map = HashMap::new();
        let mut obs = NodeObs::new();
        let epoch = Instant::now();
        apply_decisions(
            &mut decided,
            &mut deferred,
            &meta,
            &mut shard,
            &mut log,
            &mut done_out,
            0,
            None,
            &mut decided_map,
            true,
            &mut obs,
            epoch,
        );
        assert_eq!(deferred, vec![(a_id, COMMIT)], "A must wait on B's lock");
        assert!(log.is_empty(), "a deferred commit is not logged yet");
        assert_eq!(shard.read(7), Version::default(), "no write applied yet");

        // B's own decision lands: it applies and releases the lock, and
        // the same call drains the deferred A behind it.
        decided.push((b_id, COMMIT));
        apply_decisions(
            &mut decided,
            &mut deferred,
            &meta,
            &mut shard,
            &mut log,
            &mut done_out,
            0,
            None,
            &mut decided_map,
            true,
            &mut obs,
            epoch,
        );
        assert!(deferred.is_empty(), "the freed lock unblocks A");
        assert_eq!(
            log.iter().map(|r| r.txn.id).collect::<Vec<_>>(),
            vec![b_id, a_id],
            "apply order: the live owner first, the recovered commit after"
        );
        assert_eq!(
            shard.read(7),
            Version {
                value: 9,
                version: 2
            },
            "both writes applied — neither update lost"
        );
        assert_eq!(shard.locked(), 0, "no lock may leak");
    }

    /// ISSUE-4 satellite: an idle service must perform **zero** spurious
    /// wakeups — no housekeeping ticks, no idle polls. Four node threads
    /// are left with no clients and no traffic for 50 ms; every node must
    /// park the whole time.
    #[test]
    fn idle_nodes_perform_zero_spurious_wakeups_over_50ms() {
        use ac_commit::protocols::PaxosCommit;
        type P = PaxosCommit;
        let n = 4;
        let node_ch: Vec<_> = (0..n)
            .map(|_| unbounded::<ToNode<<P as ac_sim::Automaton>::Msg>>())
            .collect();
        let (node_txs, node_rxs): (Vec<_>, Vec<_>) = node_ch.into_iter().unzip();
        let wire = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = node_rxs
            .into_iter()
            .enumerate()
            .map(|(me, rx)| {
                let txs = node_txs.clone();
                let wire = Arc::clone(&wire);
                let env = bare_env::<P>(me, n, rx, txs, Vec::new(), wire);
                std::thread::spawn(move || node_main::<P>(env))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        for tx in &node_txs {
            let _ = tx.send(ToNode::Shutdown);
        }
        drop(node_txs);
        let total: usize = handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked").spurious_wakeups)
            .sum();
        assert_eq!(total, 0, "idle nodes woke without work to do");
    }

    #[test]
    fn two_pc_transfer_load_conserves_value() {
        let cfg = quick(ProtocolKind::TwoPc).workload(Workload::Transfer { amount: 7 });
        let out = run_service(&cfg);
        assert_eq!(out.stalled, 0);
        assert!(out.is_safe(), "{:?}", out.violations);
        assert_eq!(out.total_value(), 0);
        assert!(out.committed > 0, "transfers should mostly commit");
    }

    #[test]
    fn replay_reproduces_shard_state() {
        let cfg = quick(ProtocolKind::PaxosCommit).clients(3);
        let out = run_service(&cfg);
        assert!(out.is_safe(), "{:?}", out.violations);
        let rebuilt = out.replay();
        for (live, replayed) in out.shards.iter().zip(&rebuilt) {
            assert_eq!(live.total(), replayed.total());
            for k in 0..cfg.keys_per_shard {
                assert_eq!(live.read(k), replayed.read(k), "shard {} key {k}", live.id);
            }
        }
    }

    #[test]
    fn participants_scope_to_touched_shards_with_whole_cluster_fallback() {
        use ac_txn::Key;
        let t = Transaction::new(1)
            .with_write(Key::new(2, 0), 5)
            .with_write(Key::new(0, 1), 6);
        assert_eq!(participants_of(&t, 4), vec![0, 2]);
        let single = Transaction::new(2).with_write(Key::new(1, 0), 5);
        assert_eq!(participants_of(&single, 4), vec![0, 1, 2, 3]);
        let empty = Transaction::new(3);
        assert_eq!(participants_of(&empty, 3), vec![0, 1, 2]);
    }

    #[test]
    fn txn_events_cover_every_transaction_with_timestamps() {
        let out = run_service(&quick(ProtocolKind::TwoPc));
        assert_eq!(out.txn_events.len(), 10);
        for ev in &out.txn_events {
            assert!(ev.decided_at.is_some(), "txn {} unresolved", ev.id);
            assert!(ev.decided_at.unwrap() >= ev.submitted_at);
            assert_eq!(ev.retries, 0);
            assert!(ev.participants >= 2);
        }
    }

    /// The tentpole's end-to-end check at unit scale: a healthy run must
    /// attribute (nearly) every transaction, the five stage shares must
    /// telescope to ~100 % of end-to-end p50, the lifecycle stamps must
    /// be filled and ordered, and the seam meters must have seen the
    /// load.
    #[test]
    fn attribution_telescopes_and_lifecycle_stamps_fill_on_a_live_run() {
        let out = run_service(&quick(ProtocolKind::PaxosCommit));
        assert!(out.is_safe(), "{:?}", out.violations);
        let a = &out.attribution;
        assert_eq!(a.total, 10);
        assert_eq!(a.covered, 10, "every decided txn must reconstruct");
        assert_eq!(a.dropped_events, 0);
        assert!(
            (a.share_sum_pct() - 100.0).abs() < 1e-6,
            "stage shares must telescope to 100%, got {}",
            a.share_sum_pct()
        );
        assert_eq!(a.e2e.count(), 10);
        assert!(!a.slowest.is_empty() && a.slowest.len() <= SLOWEST_KEPT);
        assert!(a.slowest[0].e2e_nanos() >= a.slowest[a.slowest.len() - 1].e2e_nanos());
        // No WAL in a healthy run: the wal stage carries zero time.
        assert_eq!(a.stages[2].sum(), 0);
        for ev in &out.txn_events {
            let first = ev.first_protocol_at.expect("dispatch stamp");
            let held = ev.votes_held_at.expect("votes-held stamp");
            let journaled = ev.journaled_at.expect("journal stamp");
            assert!(ev.submitted_at <= first, "txn {}", ev.id);
            assert!(first <= held && held <= journaled, "txn {}", ev.id);
        }
        // The seam meters saw the run: every Begin timed a lock acquire,
        // every client wait was metered, decisions flushed.
        assert!(out.stage_meters.get(Stage::LockAcquire).0 > 0);
        assert!(out.stage_meters.get(Stage::ClientQueueWait).0 > 0);
        assert!(out.stage_meters.get(Stage::Flush).0 > 0);
        assert_eq!(out.stage_meters.get(Stage::WalForce).0, 0, "no WAL here");
        assert!(out.stage_hists.get(Stage::DrainGap).count() > 0);
    }
}
