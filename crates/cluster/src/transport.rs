//! The node-to-node transport seam and its two implementations.
//!
//! [`node_main`](crate::service)'s flush step stages outbound envelopes
//! per destination and hands each destination's batch to a [`Transport`].
//! Everything above the seam — fault policy, delay heap, wire counters,
//! batching — is transport-agnostic; everything below is how bytes (or
//! in-process values) actually move:
//!
//! * [`ChannelTransport`] — the original fast path: one unbounded
//!   crossbeam channel per node, `send_batch` is one lock acquisition.
//! * [`TcpTransport`] — a per-peer TCP connection manager: envelopes are
//!   framed by [`crate::codec`] and written to a lazily-established
//!   socket, with reconnect-on-failure. Its receiving counterpart is
//!   [`TcpNode`]: a listener whose per-connection reader threads decode
//!   frames and forward them into the node's ordinary inbox channel, so
//!   the node loop itself never knows which transport fed it.
//!
//! ## Reconnect state machine (per peer)
//!
//! ```text
//!            connect ok                   write error
//! Unconnected ────────────► Connected ─────────────────┐
//!     ▲  │ connect fails        ▲                      │
//!     │  ▼                      │ reconnect ok         ▼
//!   Backoff (500 ms) ◄────────── ─────────────── Reconnecting
//!                                 reconnect fails: envelope dropped,
//!                                 peer enters Backoff
//! ```
//!
//! The *first* connection attempt to a peer retries for several seconds
//! (multi-process clusters start their nodes concurrently); once a peer
//! has been reached, a failed send performs exactly one reconnect
//! attempt and otherwise **drops the envelope** — a down peer behaves
//! like a crashed process, which is precisely the fault domain the
//! protocols are built for.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ac_obs::NetMeters;
use ac_sim::{ProcessId, Wire};
use crossbeam::channel::Sender;

use crate::codec::{write_frame, AnyFrame, FrameDecoder};
use crate::service::ToNode;

/// How long a peer stays in backoff after a failed (re)connect before
/// the next send attempts again.
const RECONNECT_BACKOFF: Duration = Duration::from_millis(500);
/// First-contact patience: attempts × gap ≈ 3 s, covering the startup
/// skew of a multi-process cluster.
const INITIAL_ATTEMPTS: u32 = 30;
const INITIAL_GAP: Duration = Duration::from_millis(100);
/// Reader-thread receive buffer.
const READ_CHUNK: usize = 64 * 1024;

/// Where a node's outbound envelopes go. Implementations must preserve
/// per-sender FIFO order on a healthy link and must never block
/// indefinitely; delivery is at-most-once (loss on a broken link is the
/// crash fault domain, duplication is never allowed).
pub trait Transport<M>: Send {
    /// Send one envelope to node `to`.
    fn send(&mut self, to: ProcessId, env: ToNode<M>);

    /// Send a batch to node `to`, equivalent to sending each envelope in
    /// order (implementations may amortize: one lock, one syscall).
    fn send_batch(&mut self, to: ProcessId, batch: &mut Vec<ToNode<M>>) {
        for env in batch.drain(..) {
            self.send(to, env);
        }
    }

    /// `(writes, total nanoseconds)` this transport spent handing bytes
    /// to the OS. The TCP transport times every socket `write_all`; the
    /// channel transport is a lock handoff and reports zero (observability
    /// — the `tcp_write` seam meter).
    fn io_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// The in-process transport: envelopes move over unbounded crossbeam
/// channels, exactly as the service always worked.
pub struct ChannelTransport<M> {
    txs: Vec<Sender<ToNode<M>>>,
}

impl<M> ChannelTransport<M> {
    /// A transport over the given per-node inbox senders.
    pub fn new(txs: Vec<Sender<ToNode<M>>>) -> ChannelTransport<M> {
        ChannelTransport { txs }
    }
}

impl<M: Send> Transport<M> for ChannelTransport<M> {
    fn send(&mut self, to: ProcessId, env: ToNode<M>) {
        let _ = self.txs[to].send(env);
    }

    fn send_batch(&mut self, to: ProcessId, batch: &mut Vec<ToNode<M>>) {
        let _ = self.txs[to].send_batch(batch.drain(..));
    }
}

/// Called with `(peer, stream)` after every successful (re)connect,
/// before any envelope is written. Multi-process clients use it to send
/// their `Hello` handshake and spawn the `Done`-frame reader.
pub type OnConnect = Arc<dyn Fn(ProcessId, &TcpStream) + Send + Sync>;

enum PeerState {
    /// Never reached yet: first contact gets the long retry loop.
    Fresh,
    Connected(TcpStream),
    /// Unreachable; do not retry before the stored instant.
    Backoff(Instant),
    /// Was reachable before; next send makes one reconnect attempt.
    Lost,
}

/// The socket transport: one lazily-connected TCP stream per peer,
/// frames encoded by [`crate::codec`], reconnect-on-failure (see the
/// module docs for the state machine).
pub struct TcpTransport {
    peers: Vec<SocketAddr>,
    state: Vec<PeerState>,
    scratch: Vec<u8>,
    /// Frames currently encoded into `scratch` (egress frame metering).
    scratch_frames: u64,
    on_connect: Option<OnConnect>,
    /// Per-peer socket counters (bytes/frames out, reconnects, dial
    /// failures, outbox high-water), shared with the process's metrics
    /// endpoint and its observability export. `None` meters nothing.
    net: Option<Arc<NetMeters>>,
    /// Socket-write self-metering: `write_all` calls and their summed
    /// duration (connection establishment is deliberately excluded — a
    /// first-contact dial retries for seconds and is not write time).
    io_writes: u64,
    io_nanos: u64,
}

impl TcpTransport {
    /// A transport that will dial `peers[to]` for destination `to`.
    pub fn new(peers: Vec<SocketAddr>) -> TcpTransport {
        let state = peers.iter().map(|_| PeerState::Fresh).collect();
        TcpTransport {
            peers,
            state,
            scratch: Vec::new(),
            scratch_frames: 0,
            on_connect: None,
            net: None,
            io_writes: 0,
            io_nanos: 0,
        }
    }

    /// Install a post-connect hook (builder style).
    pub fn on_connect(mut self, hook: OnConnect) -> TcpTransport {
        self.on_connect = Some(hook);
        self
    }

    /// Record egress into `meters` (builder style). The meters' peer
    /// table should match this transport's peer count.
    pub fn with_net(mut self, meters: Arc<NetMeters>) -> TcpTransport {
        self.net = Some(meters);
        self
    }

    fn dial(&self, to: ProcessId, attempts: u32) -> Option<TcpStream> {
        for i in 0..attempts {
            if let Ok(s) = TcpStream::connect(self.peers[to]) {
                let _ = s.set_nodelay(true);
                if let Some(hook) = &self.on_connect {
                    hook(to, &s);
                }
                return Some(s);
            }
            if i + 1 < attempts {
                std::thread::sleep(INITIAL_GAP);
            }
        }
        None
    }

    /// The connected stream for `to`, establishing it if the state
    /// machine allows an attempt now.
    fn conn(&mut self, to: ProcessId) -> Option<&mut TcpStream> {
        let (attempts, was_reached) = match &self.state[to] {
            PeerState::Connected(_) => {
                // Reborrow dance: checked above, return below.
                match &mut self.state[to] {
                    PeerState::Connected(s) => return Some(s),
                    _ => unreachable!(),
                }
            }
            PeerState::Fresh => (INITIAL_ATTEMPTS, false),
            // Lost/Backoff both mean the peer was reached before: a
            // successful dial from here is a *reconnect* (first contact
            // from Fresh is not).
            PeerState::Lost => (1, true),
            PeerState::Backoff(until) => {
                if Instant::now() < *until {
                    return None;
                }
                (1, true)
            }
        };
        match self.dial(to, attempts) {
            Some(s) => {
                if was_reached {
                    if let Some(net) = &self.net {
                        net.reconnected(to);
                    }
                }
                self.state[to] = PeerState::Connected(s);
                match &mut self.state[to] {
                    PeerState::Connected(s) => Some(s),
                    _ => unreachable!(),
                }
            }
            None => {
                if let Some(net) = &self.net {
                    net.dial_failed(to);
                }
                self.state[to] = PeerState::Backoff(Instant::now() + RECONNECT_BACKOFF);
                None
            }
        }
    }

    /// Write the scratch buffer to `to`, with one reconnect-and-retry on
    /// a write error. Returns whether the bytes were handed to the OS.
    fn flush_scratch(&mut self, to: ProcessId) -> bool {
        let scratch = std::mem::take(&mut self.scratch);
        let frames = std::mem::take(&mut self.scratch_frames);
        let mut sent = false;
        for _ in 0..2 {
            let Some(s) = self.conn(to) else { break };
            let t0 = Instant::now();
            let ok = s.write_all(&scratch).is_ok();
            self.io_writes += 1;
            self.io_nanos = self
                .io_nanos
                .saturating_add(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if ok {
                sent = true;
                break;
            }
            // Broken pipe: drop the stream, allow one immediate retry.
            self.state[to] = PeerState::Lost;
        }
        if sent {
            if let Some(net) = &self.net {
                net.sent(to, frames, scratch.len() as u64);
            }
        }
        self.scratch = scratch;
        sent
    }
}

impl<M: Wire + Send> Transport<M> for TcpTransport {
    fn send(&mut self, to: ProcessId, env: ToNode<M>) {
        self.scratch.clear();
        write_frame(&AnyFrame::Node(env), &mut self.scratch);
        self.scratch_frames = 1;
        if let Some(net) = &self.net {
            net.outbox_depth(to, 1);
        }
        self.flush_scratch(to);
    }

    fn send_batch(&mut self, to: ProcessId, batch: &mut Vec<ToNode<M>>) {
        self.scratch.clear();
        self.scratch_frames = batch.len() as u64;
        if let Some(net) = &self.net {
            net.outbox_depth(to, self.scratch_frames);
        }
        for env in batch.drain(..) {
            write_frame(&AnyFrame::Node(env), &mut self.scratch);
        }
        self.flush_scratch(to);
    }

    fn io_stats(&self) -> (u64, u64) {
        (self.io_writes, self.io_nanos)
    }
}

/// Write halves of client connections, keyed by client id — populated by
/// [`TcpNode`] when a `Hello` frame arrives, read by the `Done`
/// forwarders of a multi-process node.
pub type ClientRegistry = Arc<Mutex<HashMap<usize, TcpStream>>>;

/// Identity and epoch a node's reader threads use to answer clock-echo
/// probes inline: the response is written straight back from the reader
/// thread, off the node loop, so an echo round trip measures the
/// network path and not the inbox backlog.
#[derive(Clone)]
pub struct EchoResponder {
    /// The answering node's id.
    pub node: u32,
    /// The process's run epoch: echo stamps are `epoch.elapsed()`.
    pub epoch: Instant,
}

/// Optional per-connection behaviors of a [`TcpNode`]'s reader threads:
/// the client registry (multi-process `Done` routing), ingress meters,
/// and the clock-echo responder.
#[derive(Clone, Default)]
pub struct NodeHooks {
    /// Populated with the write half of every connection that `Hello`s.
    pub clients: Option<ClientRegistry>,
    /// Ingress counters (bytes/frames in, decode errors, resyncs).
    pub net: Option<Arc<NetMeters>>,
    /// When set, `EchoReq` frames are answered inline.
    pub echo: Option<EchoResponder>,
}

/// The receiving side of the TCP transport: a listener plus per-connection
/// reader threads that decode frames and forward node-inbox envelopes
/// into an ordinary crossbeam channel. The node loop stays byte-blind.
pub struct TcpNode {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl TcpNode {
    /// Bind `addr` and start forwarding decoded envelopes into `inbox`.
    /// `clients`, when given, is populated with the write half of every
    /// connection that announces itself with a `Hello` frame.
    pub fn bind<M, A>(
        addr: A,
        inbox: Sender<ToNode<M>>,
        clients: Option<ClientRegistry>,
    ) -> std::io::Result<TcpNode>
    where
        M: Wire + Send + 'static,
        A: ToSocketAddrs,
    {
        TcpNode::bind_with(
            addr,
            inbox,
            NodeHooks {
                clients,
                ..NodeHooks::default()
            },
        )
    }

    /// [`TcpNode::bind`] with the full hook set: client registry,
    /// ingress meters, and the clock-echo responder.
    pub fn bind_with<M, A>(
        addr: A,
        inbox: Sender<ToNode<M>>,
        hooks: NodeHooks,
    ) -> std::io::Result<TcpNode>
    where
        M: Wire + Send + 'static,
        A: ToSocketAddrs,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    conns
                        .lock()
                        .expect("conn list poisoned")
                        .push(stream.try_clone().expect("stream clone"));
                    let inbox = inbox.clone();
                    let hooks = hooks.clone();
                    let reader = std::thread::spawn(move || {
                        read_loop::<M>(stream, inbox, hooks);
                    });
                    readers.lock().expect("reader list poisoned").push(reader);
                }
            })
        };

        Ok(TcpNode {
            addr,
            stop,
            accept_handle: Some(accept_handle),
            conns,
            readers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Forcibly close every accepted connection while keeping the
    /// listener alive — the "link bounce" the conformance suite uses to
    /// exercise sender reconnects.
    pub fn drop_connections(&self) {
        let mut conns = self.conns.lock().expect("conn list poisoned");
        for c in conns.drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
    }

    /// Stop accepting, close every connection, join all threads.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.drop_connections();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let readers = std::mem::take(&mut *self.readers.lock().expect("reader list poisoned"));
        for h in readers {
            let _ = h.join();
        }
    }
}

impl Drop for TcpNode {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.teardown();
        }
    }
}

/// One connection's read loop: accumulate chunks, decode frames, route.
/// Exits on EOF, read error, or a poisoned frame stream.
fn read_loop<M: Wire + Send + 'static>(
    mut stream: TcpStream,
    inbox: Sender<ToNode<M>>,
    hooks: NodeHooks,
) {
    let mut dec = FrameDecoder::new();
    let mut chunk = vec![0u8; READ_CHUNK];
    let mut echo_buf = Vec::new();
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        if let Some(net) = &hooks.net {
            net.received(n as u64);
        }
        dec.feed(&chunk[..n]);
        loop {
            let frame = dec.next_frame::<M>();
            if let Ok(Some(_)) = &frame {
                if let Some(net) = &hooks.net {
                    net.frame_in();
                }
            }
            match frame {
                Ok(Some(AnyFrame::Node(env))) => {
                    if inbox.send(env).is_err() {
                        return; // node gone: drop the connection
                    }
                }
                Ok(Some(AnyFrame::Hello { client })) => {
                    if let (Some(reg), Ok(half)) = (&hooks.clients, stream.try_clone()) {
                        reg.lock().expect("registry poisoned").insert(client, half);
                    }
                }
                Ok(Some(AnyFrame::EchoReq { seq, t0_nanos })) => {
                    // Answer inline from the reader thread: the round
                    // trip then measures the network path, not the node
                    // loop's inbox backlog.
                    if let Some(echo) = &hooks.echo {
                        let node_nanos =
                            u64::try_from(echo.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        echo_buf.clear();
                        write_frame::<M>(
                            &AnyFrame::EchoResp {
                                seq,
                                t0_nanos,
                                node: echo.node,
                                node_nanos,
                            },
                            &mut echo_buf,
                        );
                        if stream.write_all(&echo_buf).is_err() {
                            return;
                        }
                    }
                }
                // Not node-bound frames: a node never receives these.
                Ok(Some(
                    AnyFrame::Done(_) | AnyFrame::EchoResp { .. } | AnyFrame::ObsDump { .. },
                )) => {}
                Ok(None) => break,
                // Malformed body: that frame is skipped, keep decoding.
                // Poisoned stream: frame boundary lost — drop the
                // connection (the peer will reconnect with a fresh one).
                Err(_) => {
                    if dec.is_poisoned() {
                        if let Some(net) = &hooks.net {
                            net.resync();
                        }
                        return;
                    }
                    if let Some(net) = &hooks.net {
                        net.decode_error();
                    }
                }
            }
        }
    }
}
